"""Setup shim: lets `pip install -e .` work on environments without the
`wheel` package (pip falls back to the legacy setup.py develop path).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
