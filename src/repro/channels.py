"""Communication channels: the arcs of the Bandwidth Requirement Graph.

Shared by the memory-architecture description (which derives channels
from its structure mapping), the connectivity architecture (which
implements them), and the simulator (which routes traffic over them).
Lives at the package root to keep those subsystems import-cycle free.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Pseudo-module name for the CPU endpoint of a channel.
CPU = "cpu"

#: Module name of the off-chip DRAM endpoint.
DRAM = "dram"


@dataclass(frozen=True, slots=True)
class Channel:
    """One communication channel between two architecture endpoints.

    ``source``/``destination`` are module names, with ``cpu`` and
    ``dram`` as the two special endpoints. ``crosses_chip`` marks
    channels that must be implemented by an off-chip-capable
    connectivity component.
    """

    source: str
    destination: str

    @property
    def crosses_chip(self) -> bool:
        return self.destination == DRAM or self.source == DRAM

    @property
    def name(self) -> str:
        return f"{self.source}->{self.destination}"

    def endpoints(self) -> tuple[str, str]:
        return (self.source, self.destination)
