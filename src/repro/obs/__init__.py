"""``repro.obs`` — lightweight, dependency-free observability.

The exploration stack's self-measurement layer: hierarchical spans
with wall/CPU time (``with obs.span("conex.phase1"): ...``), counters
and gauges (cache hits, pool rebuilds, simulated accesses, pareto
survivors), and JSON/text exporters the CLI wires to
``--metrics-json`` / ``--metrics``.

Design constraints (see ``docs/observability.md``):

* **Disabled by default, near-zero when disabled.** ``span()`` hands
  out a no-op singleton and ``incr()``/``gauge()`` return after one
  module-global boolean check; hot paths additionally guard with
  ``if obs.enabled():`` so the disabled cost on the simulation kernel
  stays within noise (the ``bench_obs_overhead`` benchmark asserts
  ≤1%).
* **Thread-safe in-process registry**, with picklable
  :class:`ObsSnapshot` deltas merged back from pool workers through
  the existing job-result channel (see
  :meth:`repro.exec.ExecutionRuntime`).
* **Enabled** via ``REPRO_OBS=1`` (read at import, like every other
  knob through :mod:`repro.config`) or programmatically with
  :func:`enable` — the CLI does the latter for ``--metrics-json``.
"""

import os as _os

from repro.config import OBS_ENV, parse_bool as _parse_bool
from repro.obs.export import as_dict, export_json, render_text
from repro.obs.registry import (
    ObsSnapshot,
    Registry,
    SpanStat,
    disable,
    enable,
    enabled,
    gauge,
    incr,
    merge_snapshot,
    registry,
    reset,
    reset_span_stack,
    snapshot,
    span,
)

# Honour REPRO_OBS at import time. Read leniently (just this one
# variable, not a full Settings.from_env) so a malformed unrelated
# REPRO_* value cannot turn importing the library into a crash.
if _parse_bool(_os.environ.get(OBS_ENV)):
    enable()

__all__ = [
    "ObsSnapshot",
    "Registry",
    "SpanStat",
    "as_dict",
    "disable",
    "enable",
    "enabled",
    "export_json",
    "gauge",
    "incr",
    "merge_snapshot",
    "registry",
    "render_text",
    "reset",
    "reset_span_stack",
    "snapshot",
    "span",
]
