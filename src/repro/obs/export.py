"""Exporters: the registry's contents as JSON or aligned text.

The JSON document is the machine-readable form the CLI writes for
``--metrics-json PATH``::

    {
      "settings": {...},          # the Settings snapshot of the run
      "spans":    {"conex.phase1": {"count": 1, "wall_seconds": ...,
                                    "cpu_seconds": ...}, ...},
      "counters": {"exec.cache_hits": 12, ...},
      "gauges":   {"conex.pareto_survivors": 7, ...},
      ...                          # caller extras (e.g. "runtime")
    }

The text rendering is the human form printed to stderr for
``--metrics``: spans sorted by wall time, counters and gauges sorted
by name.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

from repro.config import current_settings
from repro.obs.registry import ObsSnapshot, snapshot


def as_dict(
    snap: ObsSnapshot | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The export document for ``snap`` (default: the live registry)."""
    snap = snap if snap is not None else snapshot()
    document: dict[str, Any] = {
        "settings": current_settings().as_dict(),
        "spans": {
            name: {
                "count": count,
                "wall_seconds": wall,
                "cpu_seconds": cpu,
            }
            for name, (count, wall, cpu) in sorted(snap.spans.items())
        },
        "counters": dict(sorted(snap.counters.items())),
        "gauges": dict(sorted(snap.gauges.items())),
    }
    if extra:
        document.update(extra)
    return document


def export_json(
    path: str | pathlib.Path,
    snap: ObsSnapshot | None = None,
    extra: Mapping[str, Any] | None = None,
) -> pathlib.Path:
    """Write the export document to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(as_dict(snap, extra), indent=2) + "\n")
    return path


def render_text(snap: ObsSnapshot | None = None) -> str:
    """Human-readable summary (spans by wall time, counters by name)."""
    snap = snap if snap is not None else snapshot()
    lines = ["== observability =="]
    if snap.spans:
        lines.append("spans (by wall time):")
        ordered = sorted(
            snap.spans.items(), key=lambda item: item[1][1], reverse=True
        )
        width = max(len(name) for name, _ in ordered)
        for name, (count, wall, cpu) in ordered:
            lines.append(
                f"  {name:<{width}}  x{count:<6d} "
                f"wall {wall:9.4f}s  cpu {cpu:9.4f}s"
            )
    if snap.counters:
        lines.append("counters:")
        width = max(len(name) for name in snap.counters)
        for name, value in sorted(snap.counters.items()):
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<{width}}  {rendered}")
    if snap.gauges:
        lines.append("gauges:")
        width = max(len(name) for name in snap.gauges)
        for name, value in sorted(snap.gauges.items()):
            lines.append(f"  {name:<{width}}  {value:g}")
    if len(lines) == 1:
        lines.append("  (nothing recorded)")
    return "\n".join(lines)
