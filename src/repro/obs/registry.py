"""The in-process observability registry: spans, counters, gauges.

Everything here is dependency-free and cheap by construction:

* **Disabled is the default** and costs one module-global boolean
  check per call site. :func:`span` returns a shared no-op context
  manager (a singleton — the zero-allocation guarantee the kernel fast
  path relies on), and :func:`incr` / :func:`gauge` return before
  touching the registry.
* **Enabled** recording goes through one process-wide
  :class:`Registry` guarded by a lock (explorer code is
  single-threaded today, but pool callbacks and user threads must not
  corrupt the dicts). Spans are hierarchical: a thread-local stack
  joins active span names with ``/``, so a ``sim.run`` opened inside
  ``conex.phase2`` records as ``conex.phase2/sim.run``.
* **Worker merge** uses :class:`ObsSnapshot` — a picklable value
  object of the registry's current totals. Pool workers snapshot
  before and after a chunk and ship the difference back through the
  existing job-result channel; the parent merges deltas with
  :meth:`Registry.merge`, so worker-side counters land in the same
  registry the exporters read.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass
class SpanStat:
    """Aggregate timing of one span path."""

    count: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0

    def add(self, wall: float, cpu: float) -> None:
        self.count += 1
        self.wall_seconds += wall
        self.cpu_seconds += cpu


@dataclass(frozen=True)
class ObsSnapshot:
    """A picklable copy of a registry's totals at one instant.

    Span values are ``(count, wall_seconds, cpu_seconds)`` triples.
    ``subtract`` turns two snapshots into a delta (what happened in
    between — the unit pool workers ship back), and ``Registry.merge``
    folds a snapshot into the live registry.
    """

    spans: dict[str, tuple[int, float, float]] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)

    def subtract(self, baseline: "ObsSnapshot") -> "ObsSnapshot":
        """The delta from ``baseline`` to this snapshot."""
        spans: dict[str, tuple[int, float, float]] = {}
        for name, (count, wall, cpu) in self.spans.items():
            base = baseline.spans.get(name, (0, 0.0, 0.0))
            delta = (count - base[0], wall - base[1], cpu - base[2])
            if delta[0] or delta[1] or delta[2]:
                spans[name] = delta
        counters = {}
        for name, value in self.counters.items():
            delta = value - baseline.counters.get(name, 0)
            if delta or name not in baseline.counters:
                counters[name] = delta
        # Gauges are last-write-wins: the newer snapshot's values stand.
        return ObsSnapshot(
            spans=spans, counters=counters, gauges=dict(self.gauges)
        )

    @property
    def empty(self) -> bool:
        return not (self.spans or self.counters or self.gauges)


class Registry:
    """Thread-safe store of span stats, counters, and gauges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: dict[str, SpanStat] = {}
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    def record_span(self, path: str, wall: float, cpu: float) -> None:
        with self._lock:
            stat = self._spans.get(path)
            if stat is None:
                stat = self._spans[path] = SpanStat()
            stat.add(wall, cpu)

    def incr(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def snapshot(self) -> ObsSnapshot:
        with self._lock:
            return ObsSnapshot(
                spans={
                    name: (stat.count, stat.wall_seconds, stat.cpu_seconds)
                    for name, stat in self._spans.items()
                },
                counters=dict(self._counters),
                gauges=dict(self._gauges),
            )

    def merge(self, delta: ObsSnapshot) -> None:
        """Fold a (worker) snapshot delta into this registry."""
        with self._lock:
            for name, (count, wall, cpu) in delta.spans.items():
                stat = self._spans.get(name)
                if stat is None:
                    stat = self._spans[name] = SpanStat()
                stat.count += count
                stat.wall_seconds += wall
                stat.cpu_seconds += cpu
            for name, value in delta.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(delta.gauges)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self._counters.clear()
            self._gauges.clear()


#: The process-wide registry every recording call lands in.
_REGISTRY = Registry()

#: Recording switch. Module-global so call sites pay one dict-free
#: boolean check when observability is off.
_ENABLED = False

_LOCAL = threading.local()


def _span_stack() -> list[str]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def reset_span_stack() -> None:
    """Drop this thread's active-span stack.

    Pool workers call this at chunk start: a fork-spawned worker
    inherits whatever spans the parent thread had open at fork time,
    and without the reset its recordings would nest under a prefix
    that depends on fork timing.
    """
    _LOCAL.stack = []


class _NullSpan:
    """Shared no-op span handed out while recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times the block, records under its nested path."""

    __slots__ = ("name", "_path", "_wall0", "_cpu0")

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "_Span":
        stack = _span_stack()
        parent = stack[-1] if stack else ""
        self._path = f"{parent}/{self.name}" if parent else self.name
        stack.append(self._path)
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        stack = _span_stack()
        if stack and stack[-1] == self._path:
            stack.pop()
        _REGISTRY.record_span(self._path, wall, cpu)
        return False


# -- public API -------------------------------------------------------------


def enabled() -> bool:
    """Is observability recording on in this process?"""
    return _ENABLED


def enable() -> None:
    """Turn recording on (process-wide)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn recording off. Recorded data stays until :func:`reset`."""
    global _ENABLED
    _ENABLED = False


def span(name: str):
    """A context manager timing ``name`` (no-op singleton when disabled).

    Nested spans record under ``/``-joined paths::

        with obs.span("conex.phase2"):
            with obs.span("sim.run"):   # records "conex.phase2/sim.run"
                ...
    """
    if not _ENABLED:
        return _NULL_SPAN
    return _Span(name)


def incr(name: str, amount: float = 1) -> None:
    """Add ``amount`` to counter ``name`` (registers the key at 0+amount)."""
    if not _ENABLED:
        return
    _REGISTRY.incr(name, amount)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (last write wins)."""
    if not _ENABLED:
        return
    _REGISTRY.gauge(name, value)


def registry() -> Registry:
    """The process-wide registry (exporters and mergers read this)."""
    return _REGISTRY


def snapshot() -> ObsSnapshot:
    """A picklable copy of the registry's current totals."""
    return _REGISTRY.snapshot()


def merge_snapshot(delta: ObsSnapshot | None) -> None:
    """Fold a worker-side delta into the process registry (None: no-op)."""
    if delta is not None and not delta.empty:
        _REGISTRY.merge(delta)


def reset() -> None:
    """Drop all recorded spans, counters, and gauges."""
    _REGISTRY.reset()
