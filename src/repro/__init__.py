"""ConEx — Memory System Connectivity Exploration.

A reproduction of Grun, Dutt, Nicolau, *"Memory System Connectivity
Exploration"* (DATE 2002): design-space exploration of embedded memory
and connectivity architectures trading off cost, performance, and
energy.

Quickstart::

    from repro import run_memorex
    from repro.workloads import get_workload

    result = run_memorex(get_workload("compress", scale=0.25))
    for point in result.selected_points:
        print(point.simulation.summary())

Package layout:

* :mod:`repro.trace` — tagged memory traces, pattern classification,
  bandwidth profiling (the SHADE stand-in).
* :mod:`repro.workloads` — instrumented compress / li / vocoder /
  synthetic applications.
* :mod:`repro.memory` — memory-module IP library (caches, SRAMs,
  stream buffers, self-indirect DMAs, DRAM) with area/energy models.
* :mod:`repro.connectivity` — connectivity IP library (AMBA AHB / ASB
  / APB, MUX-based, dedicated, off-chip buses) with wire models.
* :mod:`repro.timing` — RTGEN-style reservation tables.
* :mod:`repro.sim` — cycle-approximate trace-driven simulator (the
  SIMPRESS stand-in), full and time-sampled.
* :mod:`repro.apex` — APEX memory-modules exploration.
* :mod:`repro.conex` — ConEx connectivity exploration (the paper's
  contribution).
* :mod:`repro.core` — the MemorEx pipeline, exploration strategies,
  and report rendering.
* :mod:`repro.exec` — parallel batch evaluation (``simulate_many``)
  and the content-addressed simulation result cache.
* :mod:`repro.config` — the typed :class:`Settings` snapshot of every
  ``REPRO_*`` environment variable.
* :mod:`repro.obs` — spans, counters, gauges, and profiling hooks
  (``--metrics-json`` / ``REPRO_OBS=1``).
"""

from repro import obs, registry
from repro.channels import CPU, DRAM, Channel
from repro.config import (
    Settings,
    current_settings,
    set_settings,
    use_settings,
)
from repro.core.memorex import MemorExConfig, MemorExResult, run_memorex
from repro.errors import (
    ConfigurationError,
    ExplorationError,
    LibraryError,
    ReproError,
    SimulationError,
    TraceError,
    UnknownPresetError,
)
from repro.stats import BatchStats, StatsReport

__version__ = "1.1.0"

__all__ = [
    "CPU",
    "BatchStats",
    "Channel",
    "ConfigurationError",
    "DRAM",
    "ExplorationError",
    "LibraryError",
    "MemorExConfig",
    "MemorExResult",
    "ReproError",
    "Settings",
    "SimulationError",
    "StatsReport",
    "TraceError",
    "UnknownPresetError",
    "__version__",
    "current_settings",
    "obs",
    "registry",
    "run_memorex",
    "set_settings",
    "use_settings",
]
