"""Unified stats reporting for engine, runtime, and explorer results.

Three PRs of engine work grew three divergent report shapes:
``EngineReport`` (per-batch cache/fault accounting), ``RuntimeStats``
(cumulative fault accounting), and ad-hoc stats fields flattened onto
``ApexResult`` / ``ConExResult``. This module is the common ground:

* :class:`StatsReport` — a mixin giving every dataclass report the
  same ``as_dict()`` export (nested reports recurse), which is what
  the observability exporters and the CLI consume.
* :class:`BatchStats` — the shared shape for "what one evaluation
  batch cost": cache hits/misses/dedup, wall seconds, and the fault
  accounting (retries, pool rebuilds, degraded). ``ApexResult.stats``
  and ``ConExResult.phase2`` carry one of these instead of loose
  fields.
* :func:`deprecated_stat` — property factory keeping the old loose
  attribute names readable (with a :class:`DeprecationWarning`) during
  the migration; see ``docs/api.md`` for the rename table.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Any


class StatsReport:
    """Mixin for dataclass reports: a common ``as_dict()`` export.

    ``as_dict()`` walks the dataclass fields, recursing into nested
    :class:`StatsReport` values, and skips field names listed in the
    subclass's ``_STATS_EXCLUDE`` (bulky payloads like result tuples,
    which belong to the report but not to a metrics export).
    """

    _STATS_EXCLUDE: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for spec in fields(self):
            if spec.name in self._STATS_EXCLUDE:
                continue
            value = getattr(self, spec.name)
            if isinstance(value, StatsReport):
                value = value.as_dict()
            out[spec.name] = value
        return out


@dataclass(frozen=True)
class BatchStats(StatsReport):
    """What one evaluation batch (or batch sequence) cost.

    The cache accounting satisfies ``cache_hits + cache_misses +
    deduplicated + uncached == jobs``; the fault accounting mirrors
    :class:`repro.exec.DispatchStats` (all zero / ``False`` on an
    undisturbed batch).
    """

    workers: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    deduplicated: int = 0
    uncached: int = 0
    seconds: float = 0.0
    retries: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False


def deprecated_stat(owner: str, old: str, new: str) -> property:
    """A read-only property aliasing ``old`` to the dotted path ``new``.

    Reading it emits a :class:`DeprecationWarning` naming the
    replacement, then resolves ``new`` attribute by attribute on the
    instance — e.g. ``deprecated_stat("ConExResult",
    "phase2_cache_hits", "phase2.cache_hits")``.
    """
    path = new.split(".")

    def getter(self: Any) -> Any:
        warnings.warn(
            f"{owner}.{old} is deprecated; read {owner}.{new} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        value = self
        for part in path:
            value = getattr(value, part)
        return value

    getter.__doc__ = f"Deprecated alias for ``{new}``."
    return property(getter)
