"""The MemorEx pipeline: APEX then ConEx (Figure 1 of the paper)."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro import obs, registry
from repro.apex.explorer import ApexConfig, ApexResult, explore_memory_architectures
from repro.conex.explorer import ConExConfig, ConExResult, explore_connectivity
from repro.connectivity.library import ConnectivityLibrary
from repro.errors import ConfigurationError
from repro.exec.cache import SimulationCache
from repro.exec.runtime import ExecutionRuntime
from repro.memory.library import MemoryLibrary
from repro.trace.events import Trace
from repro.workloads.base import Workload


@dataclass(frozen=True)
class MemorExConfig:
    """Configuration of the two exploration stages."""

    apex: ApexConfig = field(default_factory=ApexConfig)
    conex: ConExConfig = field(default_factory=ConExConfig)


@dataclass(frozen=True)
class MemorExResult:
    """Everything the pipeline produced for one workload."""

    workload_name: str
    trace: Trace = field(repr=False)
    apex: ApexResult
    conex: ConExResult

    @property
    def selected_points(self):
        """The final combined memory+connectivity pareto designs."""
        return self.conex.selected


def run_memorex(
    workload: Workload,
    memory_library: MemoryLibrary | str | None = None,
    connectivity_library: ConnectivityLibrary | str | None = None,
    config: MemorExConfig | None = None,
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
    library: str | None = None,
) -> MemorExResult:
    """Run the full exploration on one workload.

    Generates the trace, runs APEX over the memory library, then ConEx
    over the connectivity library starting from APEX's selections, and
    returns all intermediate and final results. ``workers`` and
    ``cache`` feed the :mod:`repro.exec` engine in both stages (serial
    and uncached-by-request are the ``1`` / ``NULL_CACHE`` values).

    Libraries resolve through :mod:`repro.registry`: ``library`` names
    a registered pair, or ``memory_library`` / ``connectivity_library``
    name each side individually (strings). Passing library *objects*
    still works but is deprecated — register the pair under a name
    instead (see ``docs/api.md``).
    """
    config = config or MemorExConfig()
    if library is not None and (
        memory_library is not None or connectivity_library is not None
    ):
        raise ConfigurationError(
            "pass either a registered library name or per-side "
            "libraries, not both"
        )
    if isinstance(memory_library, str):
        memory_library = registry.memory_library(memory_library)
    elif memory_library is not None:
        warnings.warn(
            "passing a MemoryLibrary object to run_memorex is deprecated; "
            "register it with repro.registry.register_memory_library() and "
            "pass its name (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
    if isinstance(connectivity_library, str):
        connectivity_library = registry.connectivity_library(
            connectivity_library
        )
    elif connectivity_library is not None:
        warnings.warn(
            "passing a ConnectivityLibrary object to run_memorex is "
            "deprecated; register it with "
            "repro.registry.register_connectivity_library() and pass its "
            "name (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
    memory_library = memory_library or registry.memory_library(library)
    connectivity_library = connectivity_library or registry.connectivity_library(
        library
    )

    with obs.span("memorex.run"):
        trace = workload.trace()
        apex = explore_memory_architectures(
            trace, memory_library, config.apex, hints=workload.pattern_hints,
            workers=workers, cache=cache, runtime=runtime, backend=backend,
        )
        conex = explore_connectivity(
            trace, apex.selected, connectivity_library, config.conex,
            workers=workers, cache=cache, runtime=runtime, backend=backend,
        )
    return MemorExResult(
        workload_name=workload.name,
        trace=trace,
        apex=apex,
        conex=conex,
    )
