"""The MemorEx pipeline: APEX then ConEx (Figure 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.apex.explorer import ApexConfig, ApexResult, explore_memory_architectures
from repro.conex.explorer import ConExConfig, ConExResult, explore_connectivity
from repro.connectivity.library import (
    ConnectivityLibrary,
    default_connectivity_library,
)
from repro.exec.cache import SimulationCache
from repro.exec.runtime import ExecutionRuntime
from repro.memory.library import MemoryLibrary, default_memory_library
from repro.trace.events import Trace
from repro.workloads.base import Workload


@dataclass(frozen=True)
class MemorExConfig:
    """Configuration of the two exploration stages."""

    apex: ApexConfig = field(default_factory=ApexConfig)
    conex: ConExConfig = field(default_factory=ConExConfig)


@dataclass(frozen=True)
class MemorExResult:
    """Everything the pipeline produced for one workload."""

    workload_name: str
    trace: Trace = field(repr=False)
    apex: ApexResult
    conex: ConExResult

    @property
    def selected_points(self):
        """The final combined memory+connectivity pareto designs."""
        return self.conex.selected


def run_memorex(
    workload: Workload,
    memory_library: MemoryLibrary | None = None,
    connectivity_library: ConnectivityLibrary | None = None,
    config: MemorExConfig | None = None,
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> MemorExResult:
    """Run the full exploration on one workload.

    Generates the trace, runs APEX over the memory library, then ConEx
    over the connectivity library starting from APEX's selections, and
    returns all intermediate and final results. ``workers`` and
    ``cache`` feed the :mod:`repro.exec` engine in both stages (serial
    and uncached-by-request are the ``1`` / ``NULL_CACHE`` values).
    """
    config = config or MemorExConfig()
    memory_library = memory_library or default_memory_library()
    connectivity_library = connectivity_library or default_connectivity_library()

    with obs.span("memorex.run"):
        trace = workload.trace()
        apex = explore_memory_architectures(
            trace, memory_library, config.apex, hints=workload.pattern_hints,
            workers=workers, cache=cache, runtime=runtime, backend=backend,
        )
        conex = explore_connectivity(
            trace, apex.selected, connectivity_library, config.conex,
            workers=workers, cache=cache, runtime=runtime, backend=backend,
        )
    return MemorExResult(
        workload_name=workload.name,
        trace=trace,
        apex=apex,
        conex=conex,
    )
