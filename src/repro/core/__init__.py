"""MemorEx: the combined memory + connectivity exploration pipeline.

The paper's Figure 1 flow: application → APEX memory-modules
exploration → selected memory configurations → ConEx connectivity
exploration → selected combined configurations. This package wires the
two explorers together, provides the Pruned / Neighborhood / Full
exploration strategies compared in Table 2, and renders the paper's
tables and figures as text reports.
"""

from repro.core.design_point import DesignPointSummary, summarize
from repro.core.memorex import MemorExConfig, MemorExResult, run_memorex
from repro.core.multi import (
    WorkloadComparison,
    compare_workloads,
    format_comparison,
)
from repro.core.report import render_full_report
from repro.core.reporting import (
    ascii_scatter,
    format_design_points,
    format_pareto_table,
)
from repro.core.strategies import (
    CoverageRow,
    StrategyOutcome,
    coverage_rows,
    run_full,
    run_neighborhood,
    run_pruned,
)
from repro.core.sweep import (
    SweepPoint,
    series,
    sweep_cache_size,
    sweep_cpu_bus,
    sweep_offchip_bus,
)

__all__ = [
    "CoverageRow",
    "DesignPointSummary",
    "MemorExConfig",
    "MemorExResult",
    "StrategyOutcome",
    "SweepPoint",
    "WorkloadComparison",
    "ascii_scatter",
    "compare_workloads",
    "coverage_rows",
    "format_comparison",
    "format_design_points",
    "format_pareto_table",
    "render_full_report",
    "run_full",
    "run_memorex",
    "run_neighborhood",
    "run_pruned",
    "series",
    "summarize",
    "sweep_cache_size",
    "sweep_cpu_bus",
    "sweep_offchip_bus",
]
