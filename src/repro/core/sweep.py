"""Parameter sweeps: one-factor series over architectures.

The figure benchmarks regenerate the paper's specific plots; designers
also want ad-hoc one-dimensional sweeps ("latency vs cache size at
fixed connectivity", "cost vs CPU-bus choice"). This module runs such
sweeps with everything else held constant and returns plain (x, result)
series ready for tabulation or plotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.apex.architectures import MemoryArchitecture
from repro.channels import Channel
from repro.connectivity.architecture import (
    ConnectivityArchitecture,
    build_cluster,
)
from repro.connectivity.library import ConnectivityLibrary
from repro.errors import ExplorationError
from repro.exec.cache import SimulationCache
from repro.exec.engine import SimulationJob, simulate_many
from repro.exec.runtime import ExecutionRuntime
from repro.memory.library import MemoryLibrary
from repro.sim.metrics import SimulationResult
from repro.trace.events import Trace


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the varied setting and its simulation."""

    setting: str
    result: SimulationResult


def _default_connectivity(
    memory: MemoryArchitecture,
    trace: Trace,
    library: ConnectivityLibrary,
    cpu_preset: str,
    offchip_preset: str,
) -> ConnectivityArchitecture:
    channels = memory.channels(trace)
    on_chip = [c for c in channels if not c.crosses_chip]
    crossing = [c for c in channels if c.crosses_chip]
    clusters = []
    if on_chip:
        preset = library.get(cpu_preset)
        clusters.append(
            build_cluster(on_chip, cpu_preset, preset.instantiate())
        )
    if crossing:
        preset = library.get(offchip_preset)
        clusters.append(
            build_cluster(crossing, offchip_preset, preset.instantiate())
        )
    return ConnectivityArchitecture(
        f"{cpu_preset}+{offchip_preset}", clusters
    )


def _run_sweep(
    trace: Trace,
    settings: Sequence[str],
    jobs: Sequence[SimulationJob],
    workers: int | None,
    cache: SimulationCache | None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> list[SweepPoint]:
    """Dispatch one sweep's job list and pair results with settings."""
    with obs.span("sweep.run"):
        report = simulate_many(
            trace, jobs, workers=workers, cache=cache, runtime=runtime,
            backend=backend,
        )
    if obs.enabled():
        obs.incr("sweep.points", len(jobs))
    return [
        SweepPoint(setting=setting, result=result)
        for setting, result in zip(settings, report.results)
    ]


def sweep_cache_size(
    trace: Trace,
    memory_library: MemoryLibrary,
    connectivity_library: ConnectivityLibrary,
    cache_presets: Sequence[str],
    cpu_preset: str = "ahb",
    offchip_preset: str = "offchip_16",
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> list[SweepPoint]:
    """Simulate cache-only architectures across ``cache_presets``.

    Everything else — structure mapping (all to the cache), CPU-side
    bus, off-chip bus — is held constant, so the series isolates the
    capacity effect.
    """
    if not cache_presets:
        raise ExplorationError("no cache presets to sweep")
    jobs: list[SimulationJob] = []
    for preset_name in cache_presets:
        module = memory_library.get(preset_name).instantiate("cache")
        dram = memory_library.get("dram").instantiate()
        memory = MemoryArchitecture(
            f"sweep_{preset_name}", [module], dram, {}, "cache"
        )
        connectivity = _default_connectivity(
            memory, trace, connectivity_library, cpu_preset, offchip_preset
        )
        jobs.append(SimulationJob(memory=memory, connectivity=connectivity))
    return _run_sweep(
        trace, list(cache_presets), jobs, workers, cache, runtime=runtime, backend=backend
    )


def sweep_cpu_bus(
    trace: Trace,
    memory: MemoryArchitecture,
    connectivity_library: ConnectivityLibrary,
    cpu_presets: Sequence[str],
    offchip_preset: str = "offchip_16",
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> list[SweepPoint]:
    """Simulate ``memory`` under each CPU-side connection preset.

    The memory architecture and the off-chip bus stay fixed; the series
    isolates the CPU-side connectivity effect — the heart of the
    paper's argument that connectivity choice rivals module choice.
    """
    if not cpu_presets:
        raise ExplorationError("no connection presets to sweep")
    jobs = [
        SimulationJob(
            memory=memory,
            connectivity=_default_connectivity(
                memory, trace, connectivity_library, preset_name,
                offchip_preset,
            ),
        )
        for preset_name in cpu_presets
    ]
    return _run_sweep(
        trace, list(cpu_presets), jobs, workers, cache, runtime=runtime, backend=backend
    )


def sweep_offchip_bus(
    trace: Trace,
    memory: MemoryArchitecture,
    connectivity_library: ConnectivityLibrary,
    offchip_presets: Sequence[str],
    cpu_preset: str = "ahb",
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> list[SweepPoint]:
    """Simulate ``memory`` under each off-chip bus preset."""
    if not offchip_presets:
        raise ExplorationError("no off-chip presets to sweep")
    jobs = [
        SimulationJob(
            memory=memory,
            connectivity=_default_connectivity(
                memory, trace, connectivity_library, cpu_preset, preset_name
            ),
        )
        for preset_name in offchip_presets
    ]
    return _run_sweep(
        trace, list(offchip_presets), jobs, workers, cache, runtime=runtime, backend=backend
    )


def series(
    points: Sequence[SweepPoint], metric: str
) -> list[tuple[str, float]]:
    """Extract (setting, metric) pairs from sweep points.

    ``metric`` is any numeric attribute of :class:`SimulationResult`
    (``avg_latency``, ``avg_energy_nj``, ``cost_gates``,
    ``miss_ratio``, ``total_cycles``).
    """
    if not points:
        raise ExplorationError("empty sweep")
    values = []
    for point in points:
        value = getattr(point.result, metric, None)
        if not isinstance(value, (int, float)):
            raise ExplorationError(
                f"'{metric}' is not a numeric SimulationResult attribute"
            )
        values.append((point.setting, float(value)))
    return values
