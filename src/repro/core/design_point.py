"""Slim design-point summaries for reports and tables."""

from __future__ import annotations

from dataclasses import dataclass

from repro.conex.explorer import ConnectivityDesignPoint
from repro.errors import ExplorationError


@dataclass(frozen=True)
class DesignPointSummary:
    """One row of a results table (Table 1's columns).

    ``memory_modules`` and ``connections`` are human-readable
    inventories used in the Figure-6-style per-design analysis.
    """

    label: str
    cost_gates: float
    avg_latency: float
    avg_energy_nj: float
    miss_ratio: float
    memory_modules: tuple[str, ...]
    connections: tuple[str, ...]

    @property
    def objectives(self) -> tuple[float, float, float]:
        return (self.cost_gates, self.avg_latency, self.avg_energy_nj)


def summarize(point: ConnectivityDesignPoint) -> DesignPointSummary:
    """Summarize a simulated design point for reporting."""
    if point.simulation is None:
        raise ExplorationError(
            f"design {point.label()} lacks a Phase-II simulation"
        )
    memory = point.memory_eval.architecture
    modules = tuple(m.describe() for m in memory.modules.values())
    connections = tuple(
        f"{cluster.component.describe()} "
        f"[{', '.join(c.name for c in cluster.channels)}]"
        for cluster in point.connectivity.clusters
    )
    return DesignPointSummary(
        label=point.label(),
        cost_gates=point.simulation.cost_gates,
        avg_latency=point.simulation.avg_latency,
        avg_energy_nj=point.simulation.avg_energy_nj,
        miss_ratio=point.simulation.miss_ratio,
        memory_modules=modules,
        connections=connections,
    )
