"""Exploration strategies compared in the paper's Table 2.

* **Pruned** — "during each Design Space Exploration phase we select
  for further exploration only the most promising architectures":
  APEX's pareto memory architectures, ConEx Phase-I estimation pruning,
  Phase-II simulation only of the carried designs.
* **Neighborhood** — "expands the design space explored, by including
  also the points in the neighborhood of the points selected by the
  Pruned approach": neighbouring memory architectures (in cost order)
  join the selection, more Phase-I candidates are carried, and each
  simulated design's one-component-swap connectivity neighbors are
  simulated as well.
* **Full** — "all the design points in the exploration space are fully
  simulated, and the pareto curve is fully determined": the reference.

All three walk the *same* enumerated space (identical clustering and
allocation parameters), so coverage can be measured by exact objective
match, as the paper does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Sequence

from repro import obs
from repro.apex.explorer import (
    ApexConfig,
    EvaluatedMemoryArchitecture,
    explore_memory_architectures,
)
from repro.conex.allocation import assignment_neighbors
from repro.conex.explorer import (
    ConExConfig,
    ConnectivityDesignPoint,
    connectivity_exploration,
    explore_connectivity,
)
from repro.conex.estimator import estimate_design
from repro.connectivity.library import ConnectivityLibrary
from repro.errors import ExplorationError
from repro.exec.cache import SimulationCache
from repro.exec.engine import SimulationJob, simulate_batch
from repro.exec.runtime import ExecutionRuntime
from repro.memory.library import MemoryLibrary
from repro.trace.events import Trace
from repro.trace.patterns import AccessPattern
from repro.util.pareto import ParetoCoverage, pareto_coverage, pareto_front


@dataclass(frozen=True)
class StrategyOutcome:
    """What one strategy produced, and how long it took.

    ``cache_hits``/``cache_misses`` count full-simulation lookups in
    the :mod:`repro.exec` result cache over the whole run (APEX
    profiling plus every ConEx phase); they make the Table 2 timings
    honest — a strategy that rode an earlier strategy's simulations
    shows the reuse explicitly instead of reporting a misleadingly
    small wall time.
    """

    name: str
    seconds: float
    simulated: tuple[ConnectivityDesignPoint, ...]
    pareto: tuple[ConnectivityDesignPoint, ...]
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1

    def pareto_vectors(self) -> list[tuple[float, float, float]]:
        """(cost, latency, energy) of the strategy's pareto points."""
        return [p.simulated_objectives for p in self.pareto]


@dataclass(frozen=True)
class CoverageRow:
    """One benchmark's Table 2 entry for one strategy."""

    strategy: str
    seconds: float
    coverage: ParetoCoverage

    @property
    def coverage_percent(self) -> float:
        return self.coverage.coverage_percent

    @property
    def distances(self) -> tuple[float, ...]:
        """(cost, performance, energy) average percent distances."""
        if self.coverage.axis_distances:
            return self.coverage.axis_distances
        return (0.0, 0.0, 0.0)


def _pareto(points: Sequence[ConnectivityDesignPoint]):
    return tuple(pareto_front(points, key=lambda p: p.simulated_objectives))


def _resolve_cache(cache: SimulationCache | None) -> SimulationCache:
    from repro.exec.cache import default_cache

    return cache if cache is not None else default_cache()


def run_pruned(
    trace: Trace,
    memory_library: MemoryLibrary,
    connectivity_library: ConnectivityLibrary,
    apex_config: ApexConfig,
    conex_config: ConExConfig,
    hints: dict[str, AccessPattern] | None = None,
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> StrategyOutcome:
    """The paper's pruned exploration (the MemorEx default)."""
    cache = _resolve_cache(cache)
    hits0, misses0 = cache.hits, cache.misses
    start = time.perf_counter()
    with obs.span("strategy.pruned"):
        apex = explore_memory_architectures(
            trace, memory_library, apex_config, hints=hints,
            workers=workers, cache=cache, runtime=runtime, backend=backend,
        )
        conex = explore_connectivity(
            trace, apex.selected, connectivity_library, conex_config,
            workers=workers, cache=cache, runtime=runtime, backend=backend,
        )
    seconds = time.perf_counter() - start
    return StrategyOutcome(
        name="Pruned",
        seconds=seconds,
        simulated=conex.simulated,
        pareto=_pareto(conex.simulated),
        cache_hits=cache.hits - hits0,
        cache_misses=cache.misses - misses0,
        workers=conex.workers,
    )


def _expand_neighborhood(
    apex_selected: Sequence[EvaluatedMemoryArchitecture],
    apex_all: Sequence[EvaluatedMemoryArchitecture],
) -> list[EvaluatedMemoryArchitecture]:
    """Selected architectures plus their cost-order neighbours."""
    ordered = sorted(apex_all, key=lambda e: (e.cost_gates, e.miss_ratio))
    positions = {id(e): i for i, e in enumerate(ordered)}
    keep: dict[int, EvaluatedMemoryArchitecture] = {}
    for evaluated in apex_selected:
        index = positions[id(evaluated)]
        for neighbour in (index - 1, index, index + 1):
            if 0 <= neighbour < len(ordered):
                keep[neighbour] = ordered[neighbour]
    return [keep[i] for i in sorted(keep)]


def run_neighborhood(
    trace: Trace,
    memory_library: MemoryLibrary,
    connectivity_library: ConnectivityLibrary,
    apex_config: ApexConfig,
    conex_config: ConExConfig,
    hints: dict[str, AccessPattern] | None = None,
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> StrategyOutcome:
    """Pruned plus the neighbourhood of every selected design."""
    with obs.span("strategy.neighborhood"):
        return _run_neighborhood(
            trace, memory_library, connectivity_library, apex_config,
            conex_config, hints=hints, workers=workers, cache=cache,
            runtime=runtime, backend=backend,
        )


def _run_neighborhood(
    trace: Trace,
    memory_library: MemoryLibrary,
    connectivity_library: ConnectivityLibrary,
    apex_config: ApexConfig,
    conex_config: ConExConfig,
    hints: dict[str, AccessPattern] | None = None,
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> StrategyOutcome:
    cache = _resolve_cache(cache)
    hits0, misses0 = cache.hits, cache.misses
    start = time.perf_counter()
    apex = explore_memory_architectures(
        trace, memory_library, apex_config, hints=hints,
        workers=workers, cache=cache, runtime=runtime, backend=backend,
    )
    expanded = _expand_neighborhood(apex.selected, apex.evaluated)
    widened = replace(conex_config, phase1_keep=2 * conex_config.phase1_keep)
    conex = explore_connectivity(
        trace, expanded, connectivity_library, widened,
        workers=workers, cache=cache, runtime=runtime, backend=backend,
    )
    # One-swap connectivity neighbors of every simulated design,
    # estimated inline and simulated as one batch.
    simulated = list(conex.simulated)
    seen = {
        (p.memory_name, p.connectivity.preset_signature()) for p in simulated
    }
    neighbor_points: list[ConnectivityDesignPoint] = []
    for point in conex.simulated:
        memory = point.memory_eval.architecture
        for neighbor in assignment_neighbors(
            point.connectivity, connectivity_library, memory
        ):
            key = (memory.name, neighbor.preset_signature())
            if key in seen:
                continue
            seen.add(key)
            neighbor_points.append(
                ConnectivityDesignPoint(
                    memory_eval=point.memory_eval,
                    connectivity=neighbor,
                    estimate=estimate_design(
                        memory, neighbor, point.memory_eval.result
                    ),
                )
            )
    report = simulate_batch(
        trace,
        [
            SimulationJob(
                memory=point.memory_eval.architecture,
                connectivity=point.connectivity,
            )
            for point in neighbor_points
        ],
        workers=workers,
        cache=cache,
        runtime=runtime, backend=backend,
    )
    simulated.extend(
        ConnectivityDesignPoint(
            memory_eval=point.memory_eval,
            connectivity=point.connectivity,
            estimate=point.estimate,
            simulation=result,
        )
        for point, result in zip(neighbor_points, report.results)
    )
    seconds = time.perf_counter() - start
    return StrategyOutcome(
        name="Neighborhood",
        seconds=seconds,
        simulated=tuple(simulated),
        pareto=_pareto(simulated),
        cache_hits=cache.hits - hits0,
        cache_misses=cache.misses - misses0,
        workers=report.workers,
    )


def run_full(
    trace: Trace,
    memory_library: MemoryLibrary,
    connectivity_library: ConnectivityLibrary,
    apex_config: ApexConfig,
    conex_config: ConExConfig,
    hints: dict[str, AccessPattern] | None = None,
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> StrategyOutcome:
    """Brute force: fully simulate every design point in the space.

    The whole enumerated space is collected first and dispatched as a
    single :func:`repro.exec.simulate_batch` batch — the largest job
    list in the library and the engine's biggest win: the space is
    dense in connectivity-only variants, which share trace plans and
    module columns per memory architecture.
    """
    with obs.span("strategy.full"):
        return _run_full(
            trace, memory_library, connectivity_library, apex_config,
            conex_config, hints=hints, workers=workers, cache=cache,
            runtime=runtime, backend=backend,
        )


def _run_full(
    trace: Trace,
    memory_library: MemoryLibrary,
    connectivity_library: ConnectivityLibrary,
    apex_config: ApexConfig,
    conex_config: ConExConfig,
    hints: dict[str, AccessPattern] | None = None,
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> StrategyOutcome:
    cache = _resolve_cache(cache)
    hits0, misses0 = cache.hits, cache.misses
    start = time.perf_counter()
    apex = explore_memory_architectures(
        trace, memory_library, apex_config, hints=hints,
        workers=workers, cache=cache, runtime=runtime, backend=backend,
    )
    candidates: list[ConnectivityDesignPoint] = []
    for memory_eval in apex.evaluated:
        _, points = connectivity_exploration(
            trace, memory_eval, connectivity_library, conex_config,
            workers=workers, runtime=runtime, backend=backend,
        )
        candidates.extend(points)
    report = simulate_batch(
        trace,
        [
            SimulationJob(
                memory=point.memory_eval.architecture,
                connectivity=point.connectivity,
            )
            for point in candidates
        ],
        workers=workers,
        cache=cache,
        runtime=runtime, backend=backend,
    )
    simulated = [
        ConnectivityDesignPoint(
            memory_eval=point.memory_eval,
            connectivity=point.connectivity,
            estimate=point.estimate,
            simulation=result,
        )
        for point, result in zip(candidates, report.results)
    ]
    seconds = time.perf_counter() - start
    return StrategyOutcome(
        name="Full",
        seconds=seconds,
        simulated=tuple(simulated),
        pareto=_pareto(simulated),
        cache_hits=cache.hits - hits0,
        cache_misses=cache.misses - misses0,
        workers=report.workers,
    )


def coverage_rows(
    reference: StrategyOutcome,
    candidates: Sequence[StrategyOutcome],
    rel_tol: float = 1e-9,
) -> list[CoverageRow]:
    """Table 2 rows: each candidate measured against the Full pareto.

    A candidate's *simulated* points (not only its pareto picks) count
    toward coverage, matching the paper: a pareto design found but
    locally dominated still covers the curve.
    """
    if not reference.pareto:
        raise ExplorationError("reference strategy produced no pareto points")
    reference_vectors = reference.pareto_vectors()
    rows = []
    for outcome in candidates:
        explored = [p.simulated_objectives for p in outcome.simulated]
        coverage = pareto_coverage(reference_vectors, explored, rel_tol=rel_tol)
        rows.append(
            CoverageRow(
                strategy=outcome.name,
                seconds=outcome.seconds,
                coverage=coverage,
            )
        )
    rows.append(
        CoverageRow(
            strategy=reference.name,
            seconds=reference.seconds,
            coverage=pareto_coverage(
                reference_vectors,
                [p.simulated_objectives for p in reference.simulated],
                rel_tol=rel_tol,
            ),
        )
    )
    return rows
