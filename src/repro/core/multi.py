"""Cross-workload comparison of exploration results.

An SoC usually runs more than one application. This module compares
MemorEx results across workloads: per-workload fronts and knee picks
side by side, plus a tally of which connectivity presets keep earning
places on pareto fronts — the "house style" of the library for a given
workload portfolio.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import obs
from repro.core.design_point import DesignPointSummary, summarize
from repro.core.memorex import MemorExConfig, MemorExResult, run_memorex
from repro.errors import ExplorationError
from repro.exec.cache import SimulationCache
from repro.exec.runtime import ExecutionRuntime
from repro.util.selection import knee_point
from repro.util.tables import format_table
from repro.workloads.base import Workload


@dataclass(frozen=True)
class WorkloadComparison:
    """Comparison across several workloads' exploration results."""

    knees: Mapping[str, DesignPointSummary]
    fronts: Mapping[str, tuple[DesignPointSummary, ...]]
    preset_tally: Mapping[str, int]

    def favoured_presets(self, top: int = 3) -> list[tuple[str, int]]:
        """The connectivity presets most often on pareto fronts."""
        return Counter(self.preset_tally).most_common(top)


def explore_portfolio(
    workloads: Sequence[Workload],
    config: MemorExConfig | None = None,
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> list[MemorExResult]:
    """Run MemorEx over a workload portfolio with a shared engine setup.

    Each workload's exploration goes through :mod:`repro.exec` with the
    same ``workers`` / ``cache`` / ``runtime`` triple, so designs shared
    between workload variants (same trace fingerprint) simulate only
    once, and a persistent runtime's worker pool serves every workload.
    """
    if not workloads:
        raise ExplorationError("no workloads in portfolio")
    results = []
    for workload in workloads:
        with obs.span("portfolio.workload"):
            results.append(
                run_memorex(
                    workload, config=config, workers=workers, cache=cache,
                    runtime=runtime,
                    backend=backend,
                )
            )
    return results


def compare_workloads(
    results: Sequence[MemorExResult],
) -> WorkloadComparison:
    """Build the cross-workload comparison."""
    if not results:
        raise ExplorationError("no exploration results to compare")
    names = [r.workload_name for r in results]
    if len(set(names)) != len(names):
        raise ExplorationError(f"duplicate workloads in comparison: {names}")
    knees: dict[str, DesignPointSummary] = {}
    fronts: dict[str, tuple[DesignPointSummary, ...]] = {}
    tally: Counter[str] = Counter()
    for result in results:
        summaries = tuple(
            summarize(point) for point in result.selected_points
        )
        if not summaries:
            raise ExplorationError(
                f"workload '{result.workload_name}' selected no designs"
            )
        fronts[result.workload_name] = summaries
        knees[result.workload_name] = knee_point(
            summaries, key=lambda s: (s.cost_gates, s.avg_latency)
        )
        for point in result.selected_points:
            for cluster in point.connectivity.clusters:
                tally[cluster.preset_name] += 1
    return WorkloadComparison(
        knees=knees, fronts=fronts, preset_tally=dict(tally)
    )


def format_comparison(comparison: WorkloadComparison) -> str:
    """Render the comparison as a text report."""
    rows = []
    for workload, knee in comparison.knees.items():
        front = comparison.fronts[workload]
        costs = [s.cost_gates for s in front]
        latencies = [s.avg_latency for s in front]
        rows.append(
            (
                workload,
                len(front),
                f"{min(costs):,.0f}..{max(costs):,.0f}",
                f"{min(latencies):.2f}..{max(latencies):.2f}",
                f"{knee.label} ({knee.cost_gates:,.0f} g, "
                f"{knee.avg_latency:.2f} cyc)",
            )
        )
    table = format_table(
        ["workload", "front", "cost range [gates]", "lat range [cyc]", "knee pick"],
        rows,
        title="Cross-workload exploration comparison",
    )
    favoured = comparison.favoured_presets()
    footer = "most-used connectivity presets on the fronts: " + ", ".join(
        f"{name} x{count}" for name, count in favoured
    )
    return table + "\n\n" + footer
