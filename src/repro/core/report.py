"""Full exploration report rendering.

Turns a :class:`~repro.core.memorex.MemorExResult` into one complete
text report — the artifact a designer reads after an exploration run:
workload summary, pattern classification, APEX selection, per-channel
bandwidth, the final pareto table with architecture contents, and the
knee-point recommendation. Used by the CLI's ``explore`` command.
"""

from __future__ import annotations

from repro.core.design_point import summarize
from repro.core.memorex import MemorExResult
from repro.core.reporting import ascii_scatter, format_design_points
from repro.trace.profiler import profile_trace
from repro.util.selection import knee_point


def render_full_report(result: MemorExResult) -> str:
    """Render the complete exploration report as plain text."""
    sections: list[str] = []
    trace = result.trace

    sections.append(
        f"ConEx exploration report — workload '{result.workload_name}'\n"
        f"{'=' * 60}"
    )

    profile = profile_trace(trace)
    lines = [
        f"trace: {len(trace)} accesses over {trace.duration} cycles, "
        f"{trace.total_bytes} bytes"
    ]
    for stats in sorted(
        profile.by_struct.values(), key=lambda s: s.bandwidth, reverse=True
    ):
        lines.append(
            f"  {stats.struct:16s} {stats.bandwidth:8.4f} B/cyc  "
            f"{stats.accesses:7d} accesses  "
            f"{100 * stats.write_fraction:3.0f}% writes"
        )
    sections.append("\n".join(lines))

    lines = [
        f"APEX: {len(result.apex.evaluated)} memory architectures evaluated, "
        f"{len(result.apex.selected)} selected:"
    ]
    for i, evaluated in enumerate(result.apex.selected, 1):
        modules = ", ".join(evaluated.architecture.modules) or "(uncached)"
        lines.append(
            f"  [{i}] {evaluated.cost_gates:>10,.0f} gates  "
            f"miss {evaluated.miss_ratio:6.3f}  {modules}"
        )
    sections.append("\n".join(lines))

    conex = result.conex
    sections.append(
        f"ConEx: {len(conex.estimated)} connectivity configurations "
        f"estimated ({conex.phase1_seconds:.1f}s), "
        f"{len(conex.simulated)} simulated ({conex.phase2_seconds:.1f}s), "
        f"{len(conex.selected)} on the final pareto"
    )

    points = [
        (p.simulation.cost_gates, p.simulation.avg_latency)
        for p in conex.simulated
    ]
    if len(points) >= 2:
        sections.append(
            ascii_scatter(
                points,
                width=64,
                height=14,
                x_label="cost [gates]",
                y_label="avg memory latency [cycles]",
            )
        )

    summaries = [summarize(p) for p in conex.selected]
    sections.append(
        format_design_points(summaries, title="Final pareto designs")
    )

    knee = knee_point(
        summaries, key=lambda s: (s.cost_gates, s.avg_latency)
    )
    lines = [
        f"knee-point recommendation: {knee.label} "
        f"({knee.cost_gates:,.0f} gates, {knee.avg_latency:.2f} cyc, "
        f"{knee.avg_energy_nj:.2f} nJ)"
    ]
    for module in knee.memory_modules:
        lines.append(f"  memory: {module}")
    for connection in knee.connections:
        lines.append(f"  connectivity: {connection}")
    sections.append("\n".join(lines))

    knee_point_obj = next(
        p for p in conex.selected if p.label() == knee.label
    )
    simulation = knee_point_obj.simulation
    lines = ["knee design channel traffic and contention:"]
    for traffic in sorted(
        simulation.channels.values(),
        key=lambda t: t.bytes_moved,
        reverse=True,
    ):
        lines.append(
            f"  {traffic.channel_name:20s} {traffic.bytes_moved:>9d} B  "
            f"{traffic.all_transactions:>7d} xfers  "
            f"mean wait {traffic.mean_wait:5.2f} cyc"
        )
    breakdown = simulation.energy_breakdown
    if breakdown:
        lines.append(
            "energy split: "
            + ", ".join(
                f"{category} {value:.2f} nJ"
                for category, value in breakdown.items()
            )
            + f" (connectivity share "
            f"{100 * simulation.connectivity_energy_fraction:.1f}%)"
        )
    sections.append("\n".join(lines))

    return "\n\n".join(sections)
