"""Text rendering of the paper's tables and figures.

The benchmark harness prints every reproduced artifact as aligned text
tables plus ASCII scatter plots (for the figure-shaped results), so
``pytest benchmarks/ --benchmark-only`` output can be compared directly
against the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.design_point import DesignPointSummary
from repro.errors import ExplorationError
from repro.util.tables import format_table


def format_design_points(
    points: Sequence[DesignPointSummary],
    title: str | None = None,
) -> str:
    """A Table-1-style listing: cost, latency, energy per design."""
    rows = [
        (
            p.label,
            f"{p.cost_gates:,.0f}",
            f"{p.avg_latency:.2f}",
            f"{p.avg_energy_nj:.2f}",
            f"{100 * p.miss_ratio:.1f}%",
        )
        for p in sorted(points, key=lambda p: p.cost_gates)
    ]
    return format_table(
        ["design", "cost [gates]", "avg lat [cyc]", "energy [nJ]", "miss"],
        rows,
        title=title,
    )


def format_pareto_table(
    rows: Sequence[tuple[str, float, float, float]],
    title: str | None = None,
) -> str:
    """Format (label, cost, latency, energy) tuples as a table."""
    formatted = [
        (label, f"{cost:,.0f}", f"{latency:.2f}", f"{energy:.2f}")
        for label, cost, latency, energy in rows
    ]
    return format_table(
        ["design", "cost [gates]", "avg lat [cyc]", "energy [nJ]"],
        formatted,
        title=title,
    )


def ascii_scatter(
    points: Sequence[tuple[float, float]],
    width: int = 68,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    marks: Sequence[str] | None = None,
) -> str:
    """Render (x, y) points as an ASCII scatter plot.

    Used by the figure benchmarks (Figures 3, 4, 6) to show the pareto
    shapes the paper plots. ``marks`` optionally labels each point with
    its own character (defaults to ``*``).
    """
    if not points:
        raise ExplorationError("cannot plot an empty point set")
    if width < 8 or height < 4:
        raise ExplorationError(f"plot too small: {width}x{height}")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (x, y) in enumerate(points):
        col = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        mark = marks[index] if marks else "*"
        grid[height - 1 - row][col] = mark
    lines = [
        f"{y_label}: {y_min:.2f} .. {y_max:.2f} (bottom to top)",
        "+" + "-" * width + "+",
    ]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * width + "+")
    lines.append(f"{x_label}: {x_min:,.0f} .. {x_max:,.0f} (left to right)")
    return "\n".join(lines)
