"""Memory-module IP library: behavioural, area, and energy models.

The modules mirror the paper's memory IP library: caches, on-chip
SRAMs, stream buffers, DMA-like custom modules for linked-list /
self-indirect structures, and off-chip DRAM. Each module exposes

* a *behavioural* model (`access`) consumed by the trace-driven
  simulator — hit/miss outcome, internal latency, and the traffic it
  induces on its backing channel, and
* *analytic* area (basic gates) and energy (nJ/access) models used by
  the exploration's fast estimator.
"""

from repro.memory.area import (
    cache_area_gates,
    controller_area_gates,
    sram_area_gates,
)
from repro.memory.cache import Cache, WritePolicy
from repro.memory.dma import SelfIndirectDma
from repro.memory.linked_list_dma import LinkedListDma
from repro.memory.dram import Dram
from repro.memory.energy import (
    dram_access_energy_nj,
    sram_access_energy_nj,
)
from repro.memory.library import (
    MemoryLibrary,
    ModuleType,
    default_memory_library,
    module_type,
    module_types,
    register_module_type,
)
from repro.memory.module import MemoryModule, ModuleResponse
from repro.memory.multichannel import MultiChannelDram
from repro.memory.multiport import MultiPortSram
from repro.memory.sram import Sram
from repro.memory.stream_buffer import StreamBuffer

__all__ = [
    "Cache",
    "Dram",
    "LinkedListDma",
    "MemoryLibrary",
    "MemoryModule",
    "ModuleResponse",
    "ModuleType",
    "MultiChannelDram",
    "MultiPortSram",
    "SelfIndirectDma",
    "Sram",
    "StreamBuffer",
    "WritePolicy",
    "cache_area_gates",
    "controller_area_gates",
    "default_memory_library",
    "dram_access_energy_nj",
    "module_type",
    "module_types",
    "register_module_type",
    "sram_access_energy_nj",
]
