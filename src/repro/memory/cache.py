"""Set-associative cache model with LRU replacement."""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.area import cache_area_gates
from repro.memory.energy import cache_access_energy_nj
from repro.memory.module import BatchResponse, MemoryModule, ModuleResponse
from repro.trace.events import AccessKind


class WritePolicy(Enum):
    """Cache write handling."""

    WRITE_BACK = "write_back"
    WRITE_THROUGH = "write_through"


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


class Cache(MemoryModule):
    """A set-associative, LRU, allocate-on-miss cache.

    Args:
        name: instance name.
        capacity: total data capacity in bytes (power of two).
        line_size: line size in bytes (power of two).
        associativity: ways per set (power of two, ≤ lines).
        write_policy: write-back (dirty evictions produce writebacks)
            or write-through (every write also crosses to the backing
            store, off the critical path — posted).
        hit_latency: cycles for a hit, grows with capacity in the
            library presets.
    """

    kind = "cache"
    supports_batch = True

    def __init__(
        self,
        name: str,
        capacity: int,
        line_size: int = 32,
        associativity: int = 2,
        write_policy: WritePolicy = WritePolicy.WRITE_BACK,
        hit_latency: int = 1,
    ) -> None:
        super().__init__(name)
        if not _is_power_of_two(capacity):
            raise ConfigurationError(f"cache capacity not a power of two: {capacity}")
        if not _is_power_of_two(line_size):
            raise ConfigurationError(f"line size not a power of two: {line_size}")
        if not _is_power_of_two(associativity):
            raise ConfigurationError(
                f"associativity not a power of two: {associativity}"
            )
        lines = capacity // line_size
        if lines < associativity:
            raise ConfigurationError(
                f"{capacity} B / {line_size} B lines gives {lines} lines, "
                f"fewer than {associativity} ways"
            )
        if hit_latency < 1:
            raise ConfigurationError(f"hit latency must be >= 1: {hit_latency}")
        self.capacity = capacity
        self.line_size = line_size
        self.associativity = associativity
        self.write_policy = write_policy
        self.hit_latency = hit_latency
        self.sets = lines // associativity
        # Per-set list of [tag, dirty], most-recently-used last.
        self._sets: list[list[list[int]]] = [[] for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    @property
    def area_gates(self) -> float:
        return cache_area_gates(self.capacity, self.line_size, self.associativity)

    @property
    def access_energy_nj(self) -> float:
        return cache_access_energy_nj(self.capacity, self.associativity)

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    @property
    def miss_ratio(self) -> float:
        """Observed miss ratio since the last reset."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def access(
        self, address: int, size: int, kind: AccessKind, tick: int
    ) -> ModuleResponse:
        line_address = address // self.line_size
        set_index = line_address % self.sets
        tag = line_address // self.sets
        ways = self._sets[set_index]
        write = kind == AccessKind.WRITE
        through = self.write_policy == WritePolicy.WRITE_THROUGH

        for position, entry in enumerate(ways):
            if entry[0] == tag:
                self.hits += 1
                ways.append(ways.pop(position))
                if write and not through:
                    entry[1] = 1
                return ModuleResponse(
                    hit=True,
                    latency=self.hit_latency,
                    writeback_bytes=size if write and through else 0,
                )

        self.misses += 1
        writeback = 0
        if len(ways) >= self.associativity:
            victim = ways.pop(0)
            if victim[1]:
                writeback = self.line_size
        ways.append([tag, 1 if write and not through else 0])
        return ModuleResponse(
            hit=False,
            latency=self.hit_latency,
            refill_bytes=self.line_size,
            writeback_bytes=writeback + (size if write and through else 0),
        )

    def access_many(
        self, addresses: np.ndarray, sizes: np.ndarray, kinds: np.ndarray
    ) -> BatchResponse:
        # LRU recency is inherently sequential, so this stays a Python
        # loop — but one stripped of per-access response allocation and
        # numpy scalar boxing, which is where the scalar path's time
        # goes. The set mutations are byte-for-byte those of `access`.
        n = len(addresses)
        hit_flags = [False] * n
        refill = [0] * n
        writeback = [0] * n
        address_list = addresses.tolist()
        size_list = sizes.tolist()
        kind_list = kinds.tolist()
        line_size = self.line_size
        n_sets = self.sets
        associativity = self.associativity
        through = self.write_policy == WritePolicy.WRITE_THROUGH
        write_kind = int(AccessKind.WRITE)
        sets = self._sets
        hits = 0
        for i in range(n):
            line_address = address_list[i] // line_size
            ways = sets[line_address % n_sets]
            tag = line_address // n_sets
            write = kind_list[i] == write_kind
            matched = False
            for position, entry in enumerate(ways):
                if entry[0] == tag:
                    hits += 1
                    ways.append(ways.pop(position))
                    if write:
                        if through:
                            writeback[i] = size_list[i]
                        else:
                            entry[1] = 1
                    hit_flags[i] = True
                    matched = True
                    break
            if matched:
                continue
            evicted = 0
            if len(ways) >= associativity:
                victim = ways.pop(0)
                if victim[1]:
                    evicted = line_size
            ways.append([tag, 1 if write and not through else 0])
            refill[i] = line_size
            writeback[i] = evicted + (size_list[i] if write and through else 0)
        self.hits += hits
        self.misses += n - hits
        return BatchResponse(
            hit=np.asarray(hit_flags, dtype=bool),
            latency=np.full(n, self.hit_latency, dtype=np.int64),
            refill_bytes=np.asarray(refill, dtype=np.int64),
            writeback_bytes=np.asarray(writeback, dtype=np.int64),
        )
