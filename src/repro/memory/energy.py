"""Analytic per-access energy models in nanojoules.

Follows the shape of the Catthoor et al. memory power models the paper
cites: on-chip array energy grows roughly with the square root of
capacity (bitline/wordline lengths), off-chip accesses pay pad-driver
and DRAM-core energy that dwarfs on-chip costs. Constants are
calibrated to land in the paper's Table 1 range (≈ 5–15 nJ average per
access); the exploration consumes only relative ordering.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: Energy of sensing/driving one on-chip SRAM access at minimum size.
SRAM_BASE_NJ = 0.18

#: Capacity scaling coefficient for on-chip arrays.
SRAM_CAPACITY_COEFF = 0.011

#: Tag-array lookup energy per way.
TAG_WAY_NJ = 0.04

#: Row-activation (precharge + activate) energy of a DRAM page miss.
DRAM_ACTIVATE_NJ = 28.0

#: Column-access energy of any DRAM transaction (open-row read/write).
DRAM_PAGE_ACCESS_NJ = 5.0

#: Per-byte energy of moving data on/off the DRAM pins.
DRAM_PER_BYTE_NJ = 0.45


def sram_access_energy_nj(capacity_bytes: int) -> float:
    """Energy of one access to an on-chip SRAM array."""
    if capacity_bytes <= 0:
        raise ConfigurationError(f"capacity must be positive: {capacity_bytes}")
    return SRAM_BASE_NJ + SRAM_CAPACITY_COEFF * math.sqrt(capacity_bytes)


def cache_access_energy_nj(
    capacity_bytes: int, associativity: int
) -> float:
    """Energy of one cache access: data array plus parallel tag ways."""
    if associativity <= 0:
        raise ConfigurationError(f"associativity must be positive: {associativity}")
    return sram_access_energy_nj(capacity_bytes) + associativity * TAG_WAY_NJ


def dram_transaction_energy_nj(burst_bytes: int, page_hit: bool) -> float:
    """Energy of one DRAM transaction moving ``burst_bytes``.

    Open-row (page hit) transactions — the common case for streamed
    prefetch traffic — avoid the activation cost; scattered accesses
    pay it, which is what makes uncached scatter traffic expensive.
    """
    if burst_bytes <= 0:
        raise ConfigurationError(f"burst must be positive: {burst_bytes}")
    energy = DRAM_PAGE_ACCESS_NJ + DRAM_PER_BYTE_NJ * burst_bytes
    if not page_hit:
        energy += DRAM_ACTIVATE_NJ
    return energy


def dram_access_energy_nj(burst_bytes: int) -> float:
    """Energy of a worst-case (row-miss) DRAM access of ``burst_bytes``."""
    return dram_transaction_energy_nj(burst_bytes, page_hit=False)
