"""The memory IP library: named, parameterized module presets.

APEX explores "different combinations of memory modules from an IP
library, such as caches, SRAMs, DMAs". This module provides that
library as a collection of presets — each a factory producing a fresh
module instance — with the default population spanning the geometry
ranges an early-2000s embedded SoC would consider.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import LibraryError, UnknownPresetError
from repro.memory.cache import Cache, WritePolicy
from repro.memory.dma import SelfIndirectDma
from repro.memory.linked_list_dma import LinkedListDma
from repro.memory.dram import Dram
from repro.memory.module import MemoryModule
from repro.memory.multichannel import MultiChannelDram
from repro.memory.multiport import MultiPortSram
from repro.memory.sram import Sram
from repro.memory.stream_buffer import StreamBuffer


@dataclass(frozen=True)
class ModuleType:
    """One registered memory-module family.

    ``example`` builds a representative instance; the contract tests
    iterate every registered family through it, so any new module type
    registered here is automatically held to the
    ``supports_batch``/``access_many`` and signature contracts.
    """

    name: str
    cls: type[MemoryModule]
    example: Callable[[], MemoryModule] = field(compare=False)


_MODULE_TYPES: dict[str, ModuleType] = {}


def register_module_type(
    name: str,
    cls: type[MemoryModule],
    example: Callable[[], MemoryModule],
) -> ModuleType:
    """Register a memory-module family under a stable string name.

    The name keys CLI selectors, service job specs, and the contract
    test matrix. Registration is idempotent only for identical
    entries; re-registering a name with a different class is an error.
    """
    if not (isinstance(cls, type) and issubclass(cls, MemoryModule)):
        raise LibraryError(f"module type '{name}' is not a MemoryModule: {cls!r}")
    existing = _MODULE_TYPES.get(name)
    if existing is not None:
        if existing.cls is cls:
            return existing
        raise LibraryError(
            f"module type '{name}' already registered for {existing.cls.__name__}"
        )
    entry = ModuleType(name=name, cls=cls, example=example)
    _MODULE_TYPES[name] = entry
    return entry


def module_types() -> tuple[ModuleType, ...]:
    """All registered module families, sorted by name."""
    return tuple(_MODULE_TYPES[name] for name in sorted(_MODULE_TYPES))


def module_type(name: str) -> ModuleType:
    """Look up one registered module family by name."""
    try:
        return _MODULE_TYPES[name]
    except KeyError:
        raise UnknownPresetError(
            f"no module type '{name}'; known: {', '.join(sorted(_MODULE_TYPES))}"
        ) from None


@dataclass(frozen=True)
class ModulePreset:
    """A named factory for one library entry."""

    name: str
    kind: str
    build: Callable[[], MemoryModule] = field(compare=False)

    def instantiate(self, instance_name: str | None = None) -> MemoryModule:
        """Create a fresh module, optionally renaming the instance."""
        module = self.build()
        if instance_name is not None:
            module.name = instance_name
        return module


class MemoryLibrary:
    """A collection of memory-module presets, queryable by kind."""

    def __init__(self, presets: Iterable[ModulePreset] = ()) -> None:
        self._presets: dict[str, ModulePreset] = {}
        for preset in presets:
            self.add(preset)

    def add(self, preset: ModulePreset) -> None:
        """Register a preset; names must be unique."""
        if preset.name in self._presets:
            raise LibraryError(f"duplicate memory preset '{preset.name}'")
        self._presets[preset.name] = preset

    def get(self, name: str) -> ModulePreset:
        """Look up a preset by name."""
        try:
            return self._presets[name]
        except KeyError:
            raise UnknownPresetError(
                f"no memory preset '{name}'; known: {', '.join(sorted(self._presets))}"
            ) from None

    def of_kind(self, kind: str) -> list[ModulePreset]:
        """All presets of one module kind, in registration order."""
        return [p for p in self._presets.values() if p.kind == kind]

    def names(self) -> tuple[str, ...]:
        """All preset names, in registration order."""
        return tuple(self._presets)

    def __len__(self) -> int:
        return len(self._presets)

    def __contains__(self, name: str) -> bool:
        return name in self._presets


def default_memory_library() -> MemoryLibrary:
    """The library used by the paper-reproduction experiments.

    Cache geometries span 4–32 KiB at associativity 1–4; SRAMs span the
    footprints of the benchmark structures; stream buffers and
    self-indirect DMAs come in two depths each, mirroring the richness
    (not the exact contents, which are proprietary) of the paper's IP
    library.
    """
    library = MemoryLibrary()

    cache_geometries = [
        (4096, 16, 1),
        (4096, 32, 2),
        (8192, 32, 1),
        (8192, 32, 2),
        (16384, 32, 2),
        (16384, 32, 4),
        (32768, 32, 2),
        (32768, 64, 4),
    ]
    for capacity, line, ways in cache_geometries:
        kib = capacity // 1024
        latency = 1 if capacity <= 8192 else 2
        library.add(
            ModulePreset(
                name=f"cache_{kib}k_{line}b_{ways}w",
                kind="cache",
                build=lambda c=capacity, l=line, w=ways, hl=latency: Cache(
                    name=f"cache_{c // 1024}k",
                    capacity=c,
                    line_size=l,
                    associativity=w,
                    write_policy=WritePolicy.WRITE_BACK,
                    hit_latency=hl,
                ),
            )
        )

    for capacity, line, ways in ((8192, 32, 2), (16384, 32, 2)):
        kib = capacity // 1024
        library.add(
            ModulePreset(
                name=f"cache_{kib}k_{line}b_{ways}w_wt",
                kind="cache",
                build=lambda c=capacity, l=line, w=ways: Cache(
                    name=f"cache_{c // 1024}k_wt",
                    capacity=c,
                    line_size=l,
                    associativity=w,
                    write_policy=WritePolicy.WRITE_THROUGH,
                    hit_latency=1 if c <= 8192 else 2,
                ),
            )
        )

    for capacity in (1024, 2048, 4096, 8192, 16384):
        kib = capacity // 1024
        library.add(
            ModulePreset(
                name=f"sram_{kib}k",
                kind="sram",
                build=lambda c=capacity: Sram(name=f"sram_{c // 1024}k", capacity=c),
            )
        )

    for depth in (2, 4, 8):
        library.add(
            ModulePreset(
                name=f"stream_buffer_{depth}",
                kind="stream_buffer",
                build=lambda d=depth: StreamBuffer(
                    name=f"stream_buffer_{d}", depth=d, line_size=32
                ),
            )
        )

    for entries in (16, 32, 64):
        library.add(
            ModulePreset(
                name=f"si_dma_{entries}",
                kind="self_indirect_dma",
                build=lambda e=entries: SelfIndirectDma(
                    name=f"si_dma_{e}", entries=e, node_size=16, lookahead=4
                ),
            )
        )

    for entries in (32, 64):
        library.add(
            ModulePreset(
                name=f"ll_dma_{entries}",
                kind="linked_list_dma",
                build=lambda e=entries: LinkedListDma(
                    name=f"ll_dma_{e}",
                    entries=e,
                    node_size=16,
                    lookahead=4,
                    max_chain=64,
                ),
            )
        )

    for ports in (2, 4):
        library.add(
            ModulePreset(
                name=f"mp_sram_8k_{ports}p",
                kind="multiport_sram",
                build=lambda p=ports: MultiPortSram(
                    name=f"mp_sram_8k_{p}p", capacity=8192, ports=p
                ),
            )
        )

    library.add(
        ModulePreset(
            name="dram",
            kind="dram",
            build=lambda: Dram(name="dram"),
        )
    )
    library.add(
        ModulePreset(
            name="dram_4bank",
            kind="dram",
            build=lambda: Dram(name="dram", banks=4),
        )
    )
    for channels in (2, 4):
        library.add(
            ModulePreset(
                name=f"mcdram_{channels}ch",
                kind="dram",
                build=lambda ch=channels: MultiChannelDram(
                    name="dram", channels=ch, interleave="low"
                ),
            )
        )
    library.add(
        ModulePreset(
            name="mcdram_2ch_block",
            kind="dram",
            build=lambda: MultiChannelDram(
                name="dram", channels=2, interleave="block"
            ),
        )
    )
    return library


# The built-in module families. Extensions call register_module_type()
# with their own name/class/example to join the CLI selectors, the
# service registry, and the contract-test matrix.
register_module_type("cache", Cache, lambda: Cache("cache", 8192, 32, 2))
register_module_type("sram", Sram, lambda: Sram("sram", 8192))
register_module_type(
    "multiport_sram", MultiPortSram, lambda: MultiPortSram("mp_sram", 8192)
)
register_module_type(
    "stream_buffer", StreamBuffer, lambda: StreamBuffer("stream", 4, 32)
)
register_module_type(
    "self_indirect_dma",
    SelfIndirectDma,
    lambda: SelfIndirectDma("si_dma", entries=32, node_size=16, lookahead=4),
)
register_module_type(
    "linked_list_dma",
    LinkedListDma,
    lambda: LinkedListDma(
        "ll_dma", entries=32, node_size=16, lookahead=4, max_chain=64
    ),
)
register_module_type("dram", Dram, lambda: Dram("dram", banks=4))
register_module_type(
    "multichannel_dram",
    MultiChannelDram,
    lambda: MultiChannelDram("mcdram", channels=2, banks=2),
)


def mixed_architecture(
    trace,
    library: MemoryLibrary | str | None = None,
    name: str = "mixed",
    cache_preset: str = "cache_8k_32b_2w",
    stream_preset: str = "stream_buffer_4",
    sram_preset: str = "sram_16k",
    dram_preset: str = "dram_4bank",
    dma_preset: str | None = None,
):
    """A deterministic mixed-module architecture over ``trace``.

    Cycles the trace's structures over cache → stream buffer → SRAM →
    uncached DRAM (→ DMA when ``dma_preset`` is given), demoting SRAM
    picks whose footprints do not fit the remaining capacity back to
    the cache. The simulation-kernel golden-equivalence tests and the
    kernel benchmark share this builder because it exercises every
    batchable module kind — and, with a DMA, the scalar fallback — in
    one architecture.
    """
    # Imported lazily: repro.apex pulls in the explorer, which imports
    # this module.
    from repro.apex.architectures import MemoryArchitecture
    from repro.channels import DRAM

    if isinstance(library, str):
        # A registered library name (repro.registry), the same selector
        # the CLI and service accept.
        from repro import registry

        library = registry.memory_library(library)
    library = library or default_memory_library()
    cache = library.get(cache_preset).instantiate("cache")
    stream = library.get(stream_preset).instantiate("stream")
    sram = library.get(sram_preset).instantiate("sram")
    dram = library.get(dram_preset).instantiate()
    modules = [cache, stream, sram]
    targets = ["cache", "stream", "sram", DRAM]
    if dma_preset is not None:
        modules.append(library.get(dma_preset).instantiate("dma"))
        targets.append("dma")
    mapping: dict[str, str] = {}
    sram_left = sram.capacity
    for index, struct in enumerate(trace.structs):
        target = targets[index % len(targets)]
        if target == "sram":
            mask = trace.struct_mask(struct)
            addresses = trace.addresses[mask]
            footprint = int(
                addresses.max() - addresses.min() + trace.sizes[mask].max()
            )
            if footprint > sram_left:
                target = "cache"
            else:
                sram_left -= footprint
        if target != DRAM:
            mapping[struct] = target
    return MemoryArchitecture(
        name, modules, dram, mapping, default_module=DRAM
    )
