"""Stream-buffer model: prefetching FIFO for sequential accesses."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.area import prefetch_buffer_area_gates
from repro.memory.energy import sram_access_energy_nj
from repro.memory.module import BatchResponse, MemoryModule, ModuleResponse
from repro.trace.events import AccessKind


class StreamBuffer(MemoryModule):
    """A FIFO of prefetched lines serving a sequential stream.

    Behaviour: the buffer tracks a window of ``depth`` lines starting
    at the stream head. An access inside the window hits (the prefetch
    engine ran ahead); consuming a new line triggers a background
    prefetch of the line falling into the window (bandwidth, not
    latency). A jump outside the window (stream restart, output wrap)
    is a miss that refills the window head.

    Writes stream *out* through the same FIFO: they hit and post
    ``line_size`` writebacks each time a line boundary is crossed.
    """

    kind = "stream_buffer"
    supports_batch = True

    def __init__(
        self,
        name: str,
        depth: int = 4,
        line_size: int = 32,
        hit_latency: int = 1,
    ) -> None:
        super().__init__(name)
        if depth <= 0:
            raise ConfigurationError(f"depth must be positive: {depth}")
        if line_size <= 0 or line_size & (line_size - 1):
            raise ConfigurationError(
                f"line size must be a power of two: {line_size}"
            )
        self.depth = depth
        self.line_size = line_size
        self.hit_latency = hit_latency
        self._window_start: int | None = None
        self.hits = 0
        self.misses = 0

    @property
    def area_gates(self) -> float:
        return prefetch_buffer_area_gates(self.depth, self.line_size)

    @property
    def access_energy_nj(self) -> float:
        return sram_access_energy_nj(self.depth * self.line_size)

    def reset(self) -> None:
        self._window_start = None
        self.hits = 0
        self.misses = 0

    @property
    def miss_ratio(self) -> float:
        """Observed miss ratio since the last reset."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def access(
        self, address: int, size: int, kind: AccessKind, tick: int
    ) -> ModuleResponse:
        line = address // self.line_size
        write = kind == AccessKind.WRITE
        if self._window_start is None:
            # Cold start: fetch the window head.
            self._window_start = line
            self.misses += 1
            return ModuleResponse(
                hit=False,
                latency=self.hit_latency,
                refill_bytes=0 if write else self.line_size,
                prefetch_bytes=0 if write else (self.depth - 1) * self.line_size,
                writeback_bytes=size if write else 0,
            )
        offset = line - self._window_start
        if 0 <= offset < self.depth:
            self.hits += 1
            advanced = 0
            if offset > 0:
                # Consuming a later line slides the window forward.
                advanced = offset
                self._window_start = line
            if write:
                return ModuleResponse(
                    hit=True,
                    latency=self.hit_latency,
                    writeback_bytes=advanced * self.line_size,
                )
            return ModuleResponse(
                hit=True,
                latency=self.hit_latency,
                prefetch_bytes=advanced * self.line_size,
            )
        # Non-sequential jump: restart the window at the new head.
        self._window_start = line
        self.misses += 1
        return ModuleResponse(
            hit=False,
            latency=self.hit_latency,
            refill_bytes=0 if write else self.line_size,
            prefetch_bytes=0 if write else (self.depth - 1) * self.line_size,
            writeback_bytes=size if write else 0,
        )

    def access_many(
        self, addresses: np.ndarray, sizes: np.ndarray, kinds: np.ndarray
    ) -> BatchResponse:
        # After every scalar access the window head equals that access's
        # line (hits with offset 0 leave it there, everything else moves
        # it), so the whole batch reduces to a shifted-line comparison.
        n = len(addresses)
        line_size = self.line_size
        depth = self.depth
        lines = addresses // line_size
        previous = np.empty_like(lines)
        previous[1:] = lines[:-1]
        if self._window_start is None:
            # Sentinel forcing the cold-start miss of the scalar path.
            previous[0] = lines[0] + depth
        else:
            previous[0] = self._window_start
        offsets = lines - previous
        hit = (offsets >= 0) & (offsets < depth)
        write = kinds == int(AccessKind.WRITE)
        read = ~write
        advanced_bytes = np.where(hit & (offsets > 0), offsets, 0) * line_size
        miss_read = ~hit & read
        refill = np.where(miss_read, line_size, 0)
        prefetch = np.where(
            miss_read,
            (depth - 1) * line_size,
            np.where(read, advanced_bytes, 0),
        )
        writeback = np.where(
            write, np.where(hit, advanced_bytes, sizes.astype(np.int64)), 0
        )
        hits = int(np.count_nonzero(hit))
        self.hits += hits
        self.misses += n - hits
        self._window_start = int(lines[-1])
        return BatchResponse(
            hit=hit,
            latency=np.full(n, self.hit_latency, dtype=np.int64),
            refill_bytes=refill,
            writeback_bytes=writeback,
            prefetch_bytes=prefetch,
        )
