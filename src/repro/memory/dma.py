"""DMA-like custom memory module for self-indirect structures.

The paper's "DMA-like custom memory modules [bring] in predictable,
well-known data structures (such as lists) closer to the CPU": a small
on-chip node store plus an engine that follows the pointers (or
value-computed indices) stored in the nodes and prefetches the
successors ahead of the CPU.

In a trace-driven setting the engine's pointer-following is modelled by
*priming* the module with the chunk sequence its structures will
actually access (:meth:`SelfIndirectDma.prime`): following the stored
pointer and knowing the next trace access are the same thing for a
deterministic traversal. Timeliness is modelled explicitly — a
prefetch issued at tick *t* is usable at ``t + backing_latency_hint``;
if the CPU chases the chain faster than the backing store responds, the
access stalls for the remainder even though the prefetch was "correct".
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.errors import ConfigurationError
from repro.memory.area import prefetch_buffer_area_gates
from repro.memory.energy import sram_access_energy_nj
from repro.memory.module import MemoryModule, ModuleResponse
from repro.trace.events import AccessKind


class SelfIndirectDma(MemoryModule):
    """Pointer-following prefetch engine with a small node store.

    Args:
        name: instance name.
        entries: node slots in the on-chip store (LRU replacement).
        node_size: bytes fetched per node.
        lookahead: successors prefetched per access.
        hit_latency: cycles for a buffered-node access.
    """

    kind = "self_indirect_dma"

    def __init__(
        self,
        name: str,
        entries: int = 16,
        node_size: int = 16,
        lookahead: int = 2,
        hit_latency: int = 1,
    ) -> None:
        super().__init__(name)
        if entries <= 0:
            raise ConfigurationError(f"entries must be positive: {entries}")
        if node_size <= 0 or node_size & (node_size - 1):
            raise ConfigurationError(
                f"node size must be a power of two: {node_size}"
            )
        if lookahead < 0:
            raise ConfigurationError(f"lookahead must be >= 0: {lookahead}")
        self.entries = entries
        self.node_size = node_size
        self.lookahead = lookahead
        self.hit_latency = hit_latency
        #: Backing-store round trip used for prefetch timeliness; the
        #: simulator overwrites it with the architecture's actual
        #: DRAM + off-chip-channel latency at assembly time.
        self.backing_latency_hint = 24
        self._buffer: OrderedDict[int, int] = OrderedDict()
        self._sequence: tuple[int, ...] = ()
        self._position = 0
        self.hits = 0
        self.misses = 0
        self.stall_cycles = 0

    @property
    def area_gates(self) -> float:
        return prefetch_buffer_area_gates(self.entries, self.node_size)

    @property
    def access_energy_nj(self) -> float:
        return sram_access_energy_nj(self.entries * self.node_size)

    def reset(self) -> None:
        self._buffer = OrderedDict()
        self._position = 0
        self.hits = 0
        self.misses = 0
        self.stall_cycles = 0

    @property
    def miss_ratio(self) -> float:
        """Observed miss ratio since the last reset."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def prime(self, addresses: Sequence[int]) -> None:
        """Install the chunk sequence the engine will chase.

        ``addresses`` are the byte addresses of the accesses this
        module will serve, in trace order; they are reduced to
        node-granular chunks internally.
        """
        self._sequence = tuple(a // self.node_size for a in addresses)
        self._position = 0

    def _insert(self, chunk: int, ready_tick: int) -> None:
        if chunk in self._buffer:
            self._buffer.move_to_end(chunk)
            self._buffer[chunk] = min(self._buffer[chunk], ready_tick)
            return
        self._buffer[chunk] = ready_tick
        while len(self._buffer) > self.entries:
            self._buffer.popitem(last=False)

    def access_raw(
        self, address: int, size: int, kind: AccessKind, tick: int
    ) -> tuple[bool, int, int, int, int]:
        """:meth:`access` without the response record.

        Returns ``(hit, latency, refill_bytes, writeback_bytes,
        prefetch_bytes)``. DMA engines are tick-dependent (prefetch
        timeliness compares the arrival tick against buffered ready
        times), so they cannot honour the columnar ``access_many``
        contract; this tuple form is the synchronization-point call the
        simulation kernel makes between its batched segments, skipping
        one :class:`ModuleResponse` allocation per access.
        """
        chunk = address // self.node_size
        position = self._position
        self._position += 1

        prefetch_bytes = 0
        if self._sequence:
            # The engine follows the chain: queue the next `lookahead`
            # distinct successors that are not already buffered.
            upcoming = self._sequence[position + 1 : position + 1 + self.lookahead]
            delay = self.backing_latency_hint
            for step, succ in enumerate(upcoming):
                if succ != chunk and succ not in self._buffer:
                    prefetch_bytes += self.node_size
                    self._insert(succ, tick + delay + step * 4)

        writeback = size if kind == AccessKind.WRITE else 0
        if chunk in self._buffer:
            ready = self._buffer[chunk]
            self._buffer.move_to_end(chunk)
            stall = max(0, ready - tick)
            self.hits += 1
            self.stall_cycles += stall
            return (
                True, self.hit_latency + stall, 0, writeback, prefetch_bytes,
            )

        self.misses += 1
        self._insert(chunk, tick)
        return (
            False, self.hit_latency, self.node_size, writeback, prefetch_bytes,
        )

    def access(
        self, address: int, size: int, kind: AccessKind, tick: int
    ) -> ModuleResponse:
        hit, latency, refill, writeback, prefetch = self.access_raw(
            address, size, kind, tick
        )
        return ModuleResponse(
            hit=hit,
            latency=latency,
            refill_bytes=refill,
            writeback_bytes=writeback,
            prefetch_bytes=prefetch,
        )
