"""DMA-like custom memory module for self-indirect structures.

The paper's "DMA-like custom memory modules [bring] in predictable,
well-known data structures (such as lists) closer to the CPU": a small
on-chip node store plus an engine that follows the pointers (or
value-computed indices) stored in the nodes and prefetches the
successors ahead of the CPU.

In a trace-driven setting the engine's pointer-following is modelled by
*priming* the module with the chunk sequence its structures will
actually access (:meth:`SelfIndirectDma.prime`): following the stored
pointer and knowing the next trace access are the same thing for a
deterministic traversal. Timeliness is modelled explicitly — a
prefetch issued at tick *t* is usable at ``t + backing_latency_hint``;
if the CPU chases the chain faster than the backing store responds, the
access stalls for the remainder even though the prefetch was "correct".
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.area import prefetch_buffer_area_gates
from repro.memory.energy import sram_access_energy_nj
from repro.memory.module import MemoryModule, ModuleResponse, ReplayTrace
from repro.trace.events import AccessKind


class SelfIndirectDma(MemoryModule):
    """Pointer-following prefetch engine with a small node store.

    Args:
        name: instance name.
        entries: node slots in the on-chip store (LRU replacement).
        node_size: bytes fetched per node.
        lookahead: successors prefetched per access.
        hit_latency: cycles for a buffered-node access.
    """

    kind = "self_indirect_dma"

    #: Buffer membership (hit/miss outcomes, refill/prefetch amounts,
    #: LRU order) depends only on the primed chunk sequence; only the
    #: hit latency is tick-dependent, and in the affine stall form
    #: :meth:`record_replay` captures — so the cross-candidate batch
    #: evaluator can record this module once per memory architecture.
    supports_replay = True

    def __init__(
        self,
        name: str,
        entries: int = 16,
        node_size: int = 16,
        lookahead: int = 2,
        hit_latency: int = 1,
    ) -> None:
        super().__init__(name)
        if entries <= 0:
            raise ConfigurationError(f"entries must be positive: {entries}")
        if node_size <= 0 or node_size & (node_size - 1):
            raise ConfigurationError(
                f"node size must be a power of two: {node_size}"
            )
        if lookahead < 0:
            raise ConfigurationError(f"lookahead must be >= 0: {lookahead}")
        self.entries = entries
        self.node_size = node_size
        self.lookahead = lookahead
        self.hit_latency = hit_latency
        #: Backing-store round trip used for prefetch timeliness; the
        #: simulator overwrites it with the architecture's actual
        #: DRAM + off-chip-channel latency at assembly time.
        self.backing_latency_hint = 24
        self._buffer: OrderedDict[int, int] = OrderedDict()
        self._sequence: tuple[int, ...] = ()
        self._position = 0
        self.hits = 0
        self.misses = 0
        self.stall_cycles = 0

    @property
    def area_gates(self) -> float:
        return prefetch_buffer_area_gates(self.entries, self.node_size)

    @property
    def access_energy_nj(self) -> float:
        return sram_access_energy_nj(self.entries * self.node_size)

    def reset(self) -> None:
        self._buffer = OrderedDict()
        self._position = 0
        self.hits = 0
        self.misses = 0
        self.stall_cycles = 0

    @property
    def miss_ratio(self) -> float:
        """Observed miss ratio since the last reset."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def prime(self, addresses: Sequence[int]) -> None:
        """Install the chunk sequence the engine will chase.

        ``addresses`` are the byte addresses of the accesses this
        module will serve, in trace order; they are reduced to
        node-granular chunks internally.
        """
        self._sequence = tuple(a // self.node_size for a in addresses)
        self._position = 0

    def _insert(self, chunk: int, ready_tick: int) -> None:
        if chunk in self._buffer:
            self._buffer.move_to_end(chunk)
            self._buffer[chunk] = min(self._buffer[chunk], ready_tick)
            return
        self._buffer[chunk] = ready_tick
        while len(self._buffer) > self.entries:
            self._buffer.popitem(last=False)

    def access_raw(
        self, address: int, size: int, kind: AccessKind, tick: int
    ) -> tuple[bool, int, int, int, int]:
        """:meth:`access` without the response record.

        Returns ``(hit, latency, refill_bytes, writeback_bytes,
        prefetch_bytes)``. DMA engines are tick-dependent (prefetch
        timeliness compares the arrival tick against buffered ready
        times), so they cannot honour the columnar ``access_many``
        contract; this tuple form is the synchronization-point call the
        simulation kernel makes between its batched segments, skipping
        one :class:`ModuleResponse` allocation per access.
        """
        chunk = address // self.node_size
        position = self._position
        self._position += 1

        prefetch_bytes = 0
        if self._sequence:
            # The engine follows the chain: queue the next `lookahead`
            # distinct successors that are not already buffered.
            upcoming = self._sequence[position + 1 : position + 1 + self.lookahead]
            delay = self.backing_latency_hint
            for step, succ in enumerate(upcoming):
                if succ != chunk and succ not in self._buffer:
                    prefetch_bytes += self.node_size
                    self._insert(succ, tick + delay + step * 4)

        writeback = size if kind == AccessKind.WRITE else 0
        if chunk in self._buffer:
            ready = self._buffer[chunk]
            self._buffer.move_to_end(chunk)
            stall = max(0, ready - tick)
            self.hits += 1
            self.stall_cycles += stall
            return (
                True, self.hit_latency + stall, 0, writeback, prefetch_bytes,
            )

        self.misses += 1
        self._insert(chunk, tick)
        return (
            False, self.hit_latency, self.node_size, writeback, prefetch_bytes,
        )

    # -- symbolic replay ------------------------------------------------

    @staticmethod
    def _shadow_insert(
        buffer: "OrderedDict[int, tuple[int, int, int]]",
        entries: int,
        chunk: int,
        term: tuple[int, int, int],
    ) -> None:
        """The recording twin of :meth:`_insert`.

        Every live :meth:`_insert` call site guards on the chunk being
        absent, so a buffer entry always carries exactly the one
        ``(src, alpha, beta)`` ready-time term from its insertion —
        ``min``-merging of concurrent terms never happens in practice
        and the shadow mirrors only the reachable branch.
        """
        buffer[chunk] = term
        while len(buffer) > entries:
            buffer.popitem(last=False)

    def _record_burst(
        self,
        buffer: "OrderedDict[int, tuple[int, int, int]]",
        position: int,
        chunk: int,
    ) -> int:
        """Hook for burst engines (:class:`LinkedListDma`); bytes added."""
        return 0

    def record_replay(self, sizes, kinds) -> ReplayTrace:
        """Record the primed sequence without mutating module state.

        A structural twin of :meth:`access_raw` driven over
        :attr:`_sequence` with symbolic ticks: every buffered ready
        time is kept as its affine ``(src, alpha, beta)`` term
        (``arrival[src] + alpha * backing_latency_hint + beta``)
        instead of a number. Membership, replacement, and the byte
        amounts never read the stored ticks, so the recorded columns
        are exact for any arrival column and any backing delay; a hit's
        stall is reconstructed from its entry's single term.
        """
        sequence = self._sequence
        n = len(sequence)
        hit = np.zeros(n, dtype=bool)
        refill = np.zeros(n, dtype=np.int64)
        prefetch = np.zeros(n, dtype=np.int64)
        stall_src = np.full(n, -1, dtype=np.int64)
        stall_alpha = np.zeros(n, dtype=np.int64)
        stall_beta = np.zeros(n, dtype=np.int64)
        buffer: OrderedDict[int, tuple[int, int, int]] = OrderedDict()
        entries = self.entries
        node_size = self.node_size
        lookahead = self.lookahead
        shadow_insert = self._shadow_insert

        for position, chunk in enumerate(sequence):
            prefetch_bytes = self._record_burst(buffer, position, chunk)
            upcoming = sequence[position + 1 : position + 1 + lookahead]
            for step, succ in enumerate(upcoming):
                if succ != chunk and succ not in buffer:
                    prefetch_bytes += node_size
                    shadow_insert(buffer, entries, succ, (position, 1, step * 4))
            prefetch[position] = prefetch_bytes
            term = buffer.get(chunk)
            if term is not None:
                buffer.move_to_end(chunk)
                hit[position] = True
                stall_src[position] = term[0]
                stall_alpha[position] = term[1]
                stall_beta[position] = term[2]
            else:
                refill[position] = node_size
                shadow_insert(buffer, entries, chunk, (position, 0, 0))

        write_mask = np.asarray(kinds) == int(AccessKind.WRITE)
        writeback = np.where(
            write_mask, np.asarray(sizes, dtype=np.int64), np.int64(0)
        )
        return ReplayTrace(
            hit=hit,
            latency=np.full(n, self.hit_latency, dtype=np.int64),
            refill_bytes=refill,
            writeback_bytes=writeback,
            prefetch_bytes=prefetch,
            stall_src=stall_src,
            stall_alpha=stall_alpha,
            stall_beta=stall_beta,
        )

    def access(
        self, address: int, size: int, kind: AccessKind, tick: int
    ) -> ModuleResponse:
        hit, latency, refill, writeback, prefetch = self.access_raw(
            address, size, kind, tick
        )
        return ModuleResponse(
            hit=hit,
            latency=latency,
            refill_bytes=refill,
            writeback_bytes=writeback,
            prefetch_bytes=prefetch,
        )
