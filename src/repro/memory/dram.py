"""Off-chip DRAM model."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.energy import dram_access_energy_nj
from repro.memory.module import MemoryModule, ModuleResponse
from repro.trace.events import AccessKind


class Dram(MemoryModule):
    """The off-chip DRAM backing store.

    Every architecture has exactly one. Accesses that reach it always
    "hit" (it is the backing store) but pay the core latency; page-mode
    locality is modelled per bank — each of ``banks`` independently
    keeps one row open, and consecutive rows interleave across banks
    (so streams and scattered structures disturb each other's open
    rows less on multi-bank parts).

    The DRAM contributes no on-chip gates; its cost to the system is
    the I/O + off-chip bus cost, which the connectivity model carries.
    """

    kind = "dram"
    on_chip = False
    supports_batch = True

    def __init__(
        self,
        name: str = "dram",
        core_latency: int = 20,
        page_hit_latency: int = 8,
        row_bytes: int = 1024,
        banks: int = 1,
    ) -> None:
        super().__init__(name)
        if core_latency <= 0 or page_hit_latency <= 0:
            raise ConfigurationError(
                f"latencies must be positive: {core_latency}/{page_hit_latency}"
            )
        if page_hit_latency > core_latency:
            raise ConfigurationError("page-hit latency cannot exceed core latency")
        if row_bytes <= 0 or row_bytes & (row_bytes - 1):
            raise ConfigurationError(f"row size must be a power of two: {row_bytes}")
        if banks <= 0 or banks & (banks - 1):
            raise ConfigurationError(f"banks must be a power of two: {banks}")
        self.core_latency = core_latency
        self.page_hit_latency = page_hit_latency
        self.row_bytes = row_bytes
        self.banks = banks
        self._open_rows: list[int | None] = [None] * banks
        self.accesses = 0
        self.page_hits = 0

    @property
    def area_gates(self) -> float:
        return 0.0

    @property
    def access_energy_nj(self) -> float:
        return dram_access_energy_nj(self.row_bytes // 32)

    def reset(self) -> None:
        self._open_rows = [None] * self.banks
        self.accesses = 0
        self.page_hits = 0

    def _locate(self, address: int) -> tuple[int, int]:
        row = address // self.row_bytes
        return row % self.banks, row

    def access(
        self, address: int, size: int, kind: AccessKind, tick: int
    ) -> ModuleResponse:
        self.accesses += 1
        bank, row = self._locate(address)
        if row == self._open_rows[bank]:
            self.page_hits += 1
            latency = self.page_hit_latency
        else:
            latency = self.core_latency
            self._open_rows[bank] = row
        return ModuleResponse(hit=True, latency=latency)

    def open_row_latencies(self, addresses: np.ndarray) -> np.ndarray:
        """Batched :meth:`access` latencies for a burst of transactions.

        Equivalent to calling :meth:`access` once per address in order:
        a transaction pays the page-hit latency exactly when its row is
        the one the previous transaction in the same bank left open (or
        the row open at entry for each bank's first transaction). Row
        state and the access/page-hit counters are updated as the
        scalar path would.
        """
        n = len(addresses)
        rows = addresses // self.row_bytes
        latencies = np.full(n, self.core_latency, dtype=np.int64)
        page_hits = 0
        if self.banks == 1:
            bank_slices = ((0, None, rows),)
        else:
            banks = rows % self.banks
            bank_slices = tuple(
                (bank, indices, rows[indices])
                for bank in range(self.banks)
                for indices in (np.flatnonzero(banks == bank),)
            )
        for bank, indices, bank_rows in bank_slices:
            if not len(bank_rows):
                continue
            previous = np.empty_like(bank_rows)
            previous[1:] = bank_rows[:-1]
            open_row = self._open_rows[bank]
            previous[0] = -1 if open_row is None else open_row
            hit = bank_rows == previous
            if indices is None:
                latencies[hit] = self.page_hit_latency
            else:
                latencies[indices[hit]] = self.page_hit_latency
            page_hits += int(np.count_nonzero(hit))
            self._open_rows[bank] = int(bank_rows[-1])
        self.accesses += n
        self.page_hits += page_hits
        return latencies

    def latency_for(self, address: int) -> int:
        """Peek at the latency of an access without updating row state."""
        bank, row = self._locate(address)
        if row == self._open_rows[bank]:
            return self.page_hit_latency
        return self.core_latency
