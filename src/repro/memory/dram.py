"""Off-chip DRAM model."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.energy import dram_access_energy_nj
from repro.memory.module import MemoryModule, ModuleResponse
from repro.trace.events import AccessKind


class Dram(MemoryModule):
    """The off-chip DRAM backing store.

    Every architecture has exactly one. Accesses that reach it always
    "hit" (it is the backing store) but pay the core latency; page-mode
    locality is modelled per bank — each of ``banks`` independently
    keeps one row open, and consecutive rows interleave across banks
    (so streams and scattered structures disturb each other's open
    rows less on multi-bank parts).

    The open-row bookkeeping is organised around *slots*: the base
    part has one slot per bank, and channelled subclasses (see
    :class:`repro.memory.multichannel.MultiChannelDram`) expose one
    slot per (channel, bank) pair by overriding :meth:`_locate` /
    :meth:`_slot_rows` and :attr:`bank_slots`. ``channels`` /
    :meth:`channel_of` / :meth:`channel_column` tell the simulator how
    many independent core timelines the part offers; the base part is
    single-channel.

    The DRAM contributes no on-chip gates; its cost to the system is
    the I/O + off-chip bus cost, which the connectivity model carries.
    """

    kind = "dram"
    on_chip = False
    supports_batch = True

    #: Independent request timelines the part offers. A class attribute
    #: so single-channel parts keep their cache signatures (class
    #: attributes never enter ``config_signature``).
    channels = 1

    def __init__(
        self,
        name: str = "dram",
        core_latency: int = 20,
        page_hit_latency: int = 8,
        row_bytes: int = 1024,
        banks: int = 1,
    ) -> None:
        super().__init__(name)
        if core_latency <= 0 or page_hit_latency <= 0:
            raise ConfigurationError(
                f"latencies must be positive: {core_latency}/{page_hit_latency}"
            )
        if page_hit_latency > core_latency:
            raise ConfigurationError("page-hit latency cannot exceed core latency")
        if row_bytes <= 0 or row_bytes & (row_bytes - 1):
            raise ConfigurationError(f"row size must be a power of two: {row_bytes}")
        if banks <= 0 or banks & (banks - 1):
            raise ConfigurationError(f"banks must be a power of two: {banks}")
        self.core_latency = core_latency
        self.page_hit_latency = page_hit_latency
        self.row_bytes = row_bytes
        self.banks = banks
        self._open_rows: list[int | None] = [None] * self.bank_slots
        self.accesses = 0
        self.page_hits = 0

    @property
    def area_gates(self) -> float:
        return 0.0

    @property
    def access_energy_nj(self) -> float:
        return dram_access_energy_nj(self.row_bytes // 32)

    @property
    def bank_slots(self) -> int:
        """Number of independent open-row slots."""
        return self.banks

    def channel_of(self, address: int) -> int:
        """The request channel serving ``address`` (base part: 0)."""
        return 0

    def channel_column(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`channel_of` over a column of addresses."""
        return np.zeros(len(addresses), dtype=np.int64)

    def reset(self) -> None:
        self._open_rows = [None] * self.bank_slots
        self.accesses = 0
        self.page_hits = 0

    def _locate(self, address: int) -> tuple[int, int]:
        row = address // self.row_bytes
        return row % self.banks, row

    def _slot_rows(
        self, addresses: np.ndarray
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """Vectorized :meth:`_locate`: per-address (slot, row) columns.

        Returns ``(None, rows)`` when every address maps to slot 0, so
        the single-slot fast path can skip the per-slot partitioning.
        """
        rows = addresses // self.row_bytes
        if self.banks == 1:
            return None, rows
        return rows % self.banks, rows

    def access(
        self, address: int, size: int, kind: AccessKind, tick: int
    ) -> ModuleResponse:
        self.accesses += 1
        bank, row = self._locate(address)
        if row == self._open_rows[bank]:
            self.page_hits += 1
            latency = self.page_hit_latency
        else:
            latency = self.core_latency
            self._open_rows[bank] = row
        return ModuleResponse(hit=True, latency=latency)

    def open_row_latencies(self, addresses: np.ndarray) -> np.ndarray:
        """Batched :meth:`access` latencies for a burst of transactions.

        Equivalent to calling :meth:`access` once per address in order:
        a transaction pays the page-hit latency exactly when its row is
        the one the previous transaction in the same slot left open (or
        the row open at entry for each slot's first transaction). Row
        state and the access/page-hit counters are updated as the
        scalar path would.
        """
        n = len(addresses)
        slots, rows = self._slot_rows(addresses)
        latencies = np.full(n, self.core_latency, dtype=np.int64)
        page_hits = 0
        if slots is None:
            slot_slices = ((0, None, rows),)
        else:
            slot_slices = tuple(
                (slot, indices, rows[indices])
                for slot in range(self.bank_slots)
                for indices in (np.flatnonzero(slots == slot),)
            )
        for slot, indices, slot_rows in slot_slices:
            if not len(slot_rows):
                continue
            previous = np.empty_like(slot_rows)
            previous[1:] = slot_rows[:-1]
            open_row = self._open_rows[slot]
            previous[0] = -1 if open_row is None else open_row
            hit = slot_rows == previous
            if indices is None:
                latencies[hit] = self.page_hit_latency
            else:
                latencies[indices[hit]] = self.page_hit_latency
            page_hits += int(np.count_nonzero(hit))
            self._open_rows[slot] = int(slot_rows[-1])
        self.accesses += n
        self.page_hits += page_hits
        return latencies

    def latency_for(self, address: int) -> int:
        """Peek at the latency of an access without updating row state."""
        bank, row = self._locate(address)
        if row == self._open_rows[bank]:
            return self.page_hit_latency
        return self.core_latency
