"""Multi-channel DRAM: independent channels with interleaved addresses.

A :class:`MultiChannelDram` is a :class:`~repro.memory.dram.Dram`
whose address space is striped over ``channels`` independent request
channels. Each channel has its own core timeline in the simulator
(per-channel request queue: two transactions only serialize when they
target the same channel) and its own set of ``banks`` open-row slots,
so channel parallelism helps both queueing delay and page locality —
the effect Green et al. measure for sparse/irregular workloads.

Two interleaving policies are offered:

* ``"low"`` — consecutive DRAM *rows* round-robin over channels
  (channel = row mod C). Streams alternate channels row by row;
  within a channel the row index is compacted (``row // C``) so each
  channel sees its own dense row space.
* ``"block"`` — consecutive ``block_bytes`` blocks round-robin over
  channels (channel = (address // block_bytes) mod C). Fine-grained
  striping: even accesses inside one row spread over channels.

Both are deterministic functions of the address, so the columnar
kernel vectorizes them (:meth:`channel_column`) and the batched
open-row pass partitions per (channel, bank) slot exactly as the
scalar reference does.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.dram import Dram

__all__ = ["INTERLEAVE_POLICIES", "MultiChannelDram"]

#: Supported address-interleaving policies.
INTERLEAVE_POLICIES = ("low", "block")


class MultiChannelDram(Dram):
    """Banked DRAM striped over independent request channels."""

    def __init__(
        self,
        name: str = "mcdram",
        core_latency: int = 20,
        page_hit_latency: int = 8,
        row_bytes: int = 1024,
        banks: int = 1,
        channels: int = 2,
        interleave: str = "low",
        block_bytes: int = 64,
    ) -> None:
        if channels <= 0 or channels & (channels - 1):
            raise ConfigurationError(
                f"channels must be a power of two: {channels}"
            )
        if interleave not in INTERLEAVE_POLICIES:
            raise ConfigurationError(
                f"unknown interleave policy {interleave!r} "
                f"(expected one of {INTERLEAVE_POLICIES})"
            )
        if block_bytes <= 0 or block_bytes & (block_bytes - 1):
            raise ConfigurationError(
                f"interleave block must be a power of two: {block_bytes}"
            )
        # Channel attributes first: the base initializer sizes the
        # open-row slots from ``bank_slots``, which reads them.
        self.channels = channels
        self.interleave = interleave
        self.block_bytes = block_bytes
        super().__init__(name, core_latency, page_hit_latency, row_bytes, banks)

    @property
    def bank_slots(self) -> int:
        return self.channels * self.banks

    def channel_of(self, address: int) -> int:
        if self.interleave == "low":
            return (address // self.row_bytes) % self.channels
        return (address // self.block_bytes) % self.channels

    def channel_column(self, addresses: np.ndarray) -> np.ndarray:
        if self.interleave == "low":
            return (addresses // self.row_bytes) % self.channels
        return (addresses // self.block_bytes) % self.channels

    def _locate(self, address: int) -> tuple[int, int]:
        row = address // self.row_bytes
        if self.interleave == "low":
            channel, local = row % self.channels, row // self.channels
        else:
            channel, local = (address // self.block_bytes) % self.channels, row
        return channel * self.banks + local % self.banks, local

    def _slot_rows(
        self, addresses: np.ndarray
    ) -> tuple[np.ndarray | None, np.ndarray]:
        rows = addresses // self.row_bytes
        if self.interleave == "low":
            channels, local = rows % self.channels, rows // self.channels
        else:
            channels = (addresses // self.block_bytes) % self.channels
            local = rows
        return channels * self.banks + local % self.banks, local

    def describe(self) -> str:
        return (
            f"{self.name}: {self.channels}-channel DRAM "
            f"({self.interleave} interleave, {self.banks} bank(s)/channel, "
            f"{self.row_bytes}B rows)"
        )
