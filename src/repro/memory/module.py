"""Memory-module base class and the behavioural response records."""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.trace.events import AccessKind


@dataclass(frozen=True, slots=True)
class ModuleResponse:
    """Outcome of one access presented to a memory module.

    Attributes:
        hit: whether the module served the access from on-chip state.
        latency: cycles spent inside the module on the critical path
            (hit time, or miss-handling control overhead *excluding*
            the backing transfer, which the simulator prices using the
            module↔DRAM channel and the DRAM model).
        refill_bytes: bytes that must arrive from the backing store
            before the access completes (critical path).
        writeback_bytes: bytes sent to the backing store off the
            critical path (dirty evictions, posted writes).
        prefetch_bytes: bytes fetched from the backing store off the
            critical path (stream-buffer / DMA prefetches). These
            consume channel bandwidth and DRAM energy but do not stall
            this access.
    """

    hit: bool
    latency: int
    refill_bytes: int = 0
    writeback_bytes: int = 0
    prefetch_bytes: int = 0


@dataclass(frozen=True, slots=True)
class BatchResponse:
    """Columnar outcome of a batch of accesses (see :meth:`access_many`).

    Each field is the per-access column of the corresponding
    :class:`ModuleResponse` attribute, in presentation order. The byte
    columns may be ``None`` to mean all-zero, so modules that never
    produce backing traffic (SRAMs) skip the allocations.
    """

    hit: np.ndarray
    latency: np.ndarray
    refill_bytes: np.ndarray | None = None
    writeback_bytes: np.ndarray | None = None
    prefetch_bytes: np.ndarray | None = None


@dataclass(frozen=True, slots=True)
class ReplayTrace:
    """Symbolic outcome recording of a tick-*affine* module's run.

    Produced by :meth:`MemoryModule.record_replay` for modules whose
    internal state evolution (buffer membership, replacement order,
    refill/writeback/prefetch amounts) is independent of the access
    ticks, while the *latency* of access ``j`` may carry a stall of the
    affine form::

        stall_j = max(0, arrival[stall_src[j]]
                         + stall_alpha[j] * delay
                         + stall_beta[j]
                         - arrival[j])          # when stall_src[j] >= 0

    where ``arrival[i]`` is the tick passed to the ``i``-th access of
    the recorded subsequence and ``delay`` is the module's
    ``backing_latency_hint`` at run time. All columns are indexed by
    position within the module's access subsequence, in presentation
    order; ``stall_src`` holds the (strictly earlier) local index whose
    arrival the stall references, or ``-1`` for accesses that can never
    stall. ``latency`` is the stall-free base latency.
    """

    hit: np.ndarray
    latency: np.ndarray
    refill_bytes: np.ndarray
    writeback_bytes: np.ndarray
    prefetch_bytes: np.ndarray
    stall_src: np.ndarray
    stall_alpha: np.ndarray
    stall_beta: np.ndarray


class MemoryModule(ABC):
    """A component of the memory architecture.

    Concrete modules implement the behavioural :meth:`access` model and
    the analytic :attr:`area_gates` / :attr:`access_energy_nj` models.
    A module instance carries state (tags, buffers); :meth:`reset`
    restores the power-on state so one architecture object can be
    simulated repeatedly.
    """

    #: Short kind tag used in architecture descriptions ("cache"...).
    kind: str = "module"

    #: Whether :meth:`access_many` is a faithful batched equivalent of
    #: :meth:`access` that the simulation kernel may batch over. A
    #: subclass overriding :meth:`access` without keeping
    #: :meth:`access_many` in lockstep MUST set this back to ``False``;
    #: the kernel then treats the module as tick-dependent and advances
    #: it access by access at synchronization points (optionally via a
    #: tuple-returning ``access_raw``, see
    #: :meth:`repro.memory.dma.SelfIndirectDma.access_raw`), batching
    #: only the modules around it.
    supports_batch: bool = False

    #: Whether :meth:`record_replay` is a faithful symbolic recording
    #: of the module's (tick-affine) behaviour that the cross-candidate
    #: batch evaluator may share between design points. Orthogonal to
    #: :attr:`supports_batch`: a tick-*dependent* module can still be
    #: replayable when only its latency — never its state evolution —
    #: depends on the ticks, and in the affine form
    #: :class:`ReplayTrace` captures. A subclass changing ``access``
    #: without keeping ``record_replay`` in lockstep MUST set this back
    #: to ``False``; the batch evaluator then falls back to independent
    #: per-candidate runs.
    supports_replay: bool = False

    #: Whether the module sits on-chip (drives wire models and the
    #: paper's hit/miss accounting: on-chip accesses are hits).
    on_chip: bool = True

    #: Mutable statistics / runtime state excluded from the
    #: configuration signature: two modules that differ only in these
    #: attributes are behaviourally identical after :meth:`reset`.
    _STATE_ATTRS = frozenset(
        {
            "hits",
            "misses",
            "accesses",
            "page_hits",
            "stall_cycles",
            "burst_prefetches",
            "backing_latency_hint",
        }
    )

    def __init__(self, name: str) -> None:
        self.name = name

    def config_signature(self) -> tuple:
        """Hashable summary of the module's configuration.

        Collects every public scalar attribute except the mutable
        statistics in :attr:`_STATE_ATTRS`, so the signature identifies
        *what the module is*, not what it has simulated so far. Used by
        the :mod:`repro.exec` result cache.
        """
        items: list[tuple[str, object]] = []
        for key in sorted(vars(self)):
            if key.startswith("_") or key in self._STATE_ATTRS:
                continue
            value = vars(self)[key]
            if isinstance(value, enum.Enum):
                value = str(value.value)
            if value is None or isinstance(value, (str, int, float, bool)):
                items.append((key, value))
        return (type(self).__name__, tuple(items))

    @property
    @abstractmethod
    def area_gates(self) -> float:
        """Module area in basic gates."""

    @property
    @abstractmethod
    def access_energy_nj(self) -> float:
        """Energy of one access to the module's own arrays, in nJ."""

    @abstractmethod
    def access(
        self, address: int, size: int, kind: AccessKind, tick: int
    ) -> ModuleResponse:
        """Present one CPU access; update state; return the outcome."""

    def access_many(
        self,
        addresses: np.ndarray,
        sizes: np.ndarray,
        kinds: np.ndarray,
    ) -> BatchResponse | None:
        """Present a contiguous batch of accesses; return the columns.

        The kernel batches aggressively: for an architecture whose
        modules all advertise :attr:`supports_batch` it presents each
        module its *entire* per-run access subsequence in one call, so
        the contract below must hold for arbitrarily long batches, not
        just sampling-window-sized ones.

        Semantics contract: calling this on ``n`` accesses must leave
        the module in exactly the state ``n`` sequential :meth:`access`
        calls would, and the returned columns must equal the ``n``
        scalar responses element-by-element. Only modules whose access
        outcome does not depend on the ``tick`` argument can honour
        that contract (the issue tick is unknown mid-batch); those
        modules advertise :attr:`supports_batch`. The default
        implementation returns ``None`` (no batched path).
        """
        return None

    def record_replay(
        self, sizes: np.ndarray, kinds: np.ndarray
    ) -> ReplayTrace | None:
        """Symbolically record the module's primed access subsequence.

        ``sizes``/``kinds`` are the per-access columns of the module's
        subsequence in presentation order (the same sequence a prior
        ``prime`` installed, where applicable). The recording must not
        mutate module state, and must satisfy the :class:`ReplayTrace`
        contract: for *any* arrival column and any backing delay, the
        sequential scalar ``access`` stream over those arrivals returns
        exactly ``hit[j]``, ``latency[j] + stall_j``,
        ``refill_bytes[j]``, ``writeback_bytes[j]``,
        ``prefetch_bytes[j]``. Only modules advertising
        :attr:`supports_replay` implement it; the default returns
        ``None``.
        """
        return None

    @abstractmethod
    def reset(self) -> None:
        """Restore power-on state (empty tags/buffers)."""

    def describe(self) -> str:
        """One-line human description used in reports."""
        return f"{self.kind} {self.name}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
