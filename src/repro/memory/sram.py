"""On-chip scratchpad SRAM model."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.area import sram_area_gates
from repro.memory.energy import sram_access_energy_nj
from repro.memory.module import BatchResponse, MemoryModule, ModuleResponse
from repro.trace.events import AccessKind


class Sram(MemoryModule):
    """A software-managed on-chip SRAM (scratchpad).

    Structures mapped here always hit — APEX only maps a structure to
    an SRAM when its footprint fits, and the simulator checks that at
    architecture-validation time. Accesses never touch the backing
    store, which is exactly why SRAM mapping relieves off-chip
    bandwidth in the paper's architectures.
    """

    kind = "sram"
    supports_batch = True

    def __init__(self, name: str, capacity: int, access_latency: int = 1) -> None:
        super().__init__(name)
        if capacity <= 0:
            raise ConfigurationError(f"SRAM capacity must be positive: {capacity}")
        if access_latency < 1:
            raise ConfigurationError(f"latency must be >= 1: {access_latency}")
        self.capacity = capacity
        self.access_latency = access_latency
        self.accesses = 0

    @property
    def area_gates(self) -> float:
        return sram_area_gates(self.capacity)

    @property
    def access_energy_nj(self) -> float:
        return sram_access_energy_nj(self.capacity)

    def reset(self) -> None:
        self.accesses = 0

    def access(
        self, address: int, size: int, kind: AccessKind, tick: int
    ) -> ModuleResponse:
        self.accesses += 1
        return ModuleResponse(hit=True, latency=self.access_latency)

    def access_many(
        self, addresses: np.ndarray, sizes: np.ndarray, kinds: np.ndarray
    ) -> BatchResponse:
        n = len(addresses)
        self.accesses += n
        return BatchResponse(
            hit=np.ones(n, dtype=bool),
            latency=np.full(n, self.access_latency, dtype=np.int64),
        )
