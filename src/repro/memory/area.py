"""Analytic area models in basic gates.

The paper reports memory-system cost "in basic gates" using the area
models of Catthoor et al. Those models reduce, at the granularity this
exploration needs, to a gates-per-bit figure for SRAM arrays plus
per-structure control overheads. The constants below are calibrated so
that the benchmark architectures land in the paper's reported ranges
(compress designs ≈ 0.48–0.90 M gates, vocoder ≈ 0.16–0.18 M gates);
only relative ordering matters for the exploration itself.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: Gate-equivalents per SRAM data bit (6T cell + array overheads).
GATES_PER_SRAM_BIT = 1.6

#: Gate-equivalents per CAM/tag bit (comparator included).
GATES_PER_TAG_BIT = 2.2

#: Fixed control overhead of a memory module's FSM and decoders.
MODULE_CONTROL_GATES = 1800.0

#: Control overhead per cache way (way mux, valid/dirty logic).
CACHE_WAY_CONTROL_GATES = 650.0

#: Gates per entry of prefetch/DMA bookkeeping state.
PREFETCH_ENTRY_GATES = 220.0


def sram_area_gates(capacity_bytes: int, width_bytes: int = 4) -> float:
    """Area of a plain SRAM of ``capacity_bytes`` with one R/W port."""
    if capacity_bytes <= 0:
        raise ConfigurationError(f"SRAM capacity must be positive: {capacity_bytes}")
    if width_bytes <= 0:
        raise ConfigurationError(f"SRAM width must be positive: {width_bytes}")
    bits = capacity_bytes * 8
    decoder = 40.0 * math.log2(max(2, capacity_bytes // width_bytes))
    return bits * GATES_PER_SRAM_BIT + decoder + MODULE_CONTROL_GATES


def cache_area_gates(
    capacity_bytes: int,
    line_bytes: int,
    associativity: int,
    address_bits: int = 32,
) -> float:
    """Area of a set-associative cache: data array, tags, control."""
    if capacity_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
        raise ConfigurationError(
            f"bad cache geometry: {capacity_bytes}/{line_bytes}/{associativity}"
        )
    lines = capacity_bytes // line_bytes
    if lines < associativity:
        raise ConfigurationError(
            f"cache of {capacity_bytes} B cannot hold {associativity} ways "
            f"of {line_bytes} B lines"
        )
    sets = lines // associativity
    tag_bits_per_line = (
        address_bits
        - int(math.log2(sets))
        - int(math.log2(line_bytes))
        + 2  # valid + dirty
    )
    data_gates = capacity_bytes * 8 * GATES_PER_SRAM_BIT
    tag_gates = lines * tag_bits_per_line * GATES_PER_TAG_BIT
    control = MODULE_CONTROL_GATES + associativity * CACHE_WAY_CONTROL_GATES
    return data_gates + tag_gates + control


def prefetch_buffer_area_gates(entries: int, entry_bytes: int) -> float:
    """Area of a stream-buffer / DMA prefetch store plus its engine."""
    if entries <= 0 or entry_bytes <= 0:
        raise ConfigurationError(
            f"bad prefetch geometry: {entries} x {entry_bytes}"
        )
    storage = entries * entry_bytes * 8 * GATES_PER_SRAM_BIT
    bookkeeping = entries * PREFETCH_ENTRY_GATES
    # Address-generation / pointer-follow engine.
    engine = 2.5 * MODULE_CONTROL_GATES
    return storage + bookkeeping + engine


def controller_area_gates(ports: int, complexity: float = 1.0) -> float:
    """Area of a bus/connection controller with ``ports`` attachments.

    ``complexity`` scales with protocol sophistication (mux ≈ 0.3,
    APB ≈ 0.6, ASB ≈ 1.0, AHB ≈ 1.8 with pipelining + split support).
    """
    if ports <= 0:
        raise ConfigurationError(f"controller needs at least one port: {ports}")
    if complexity <= 0:
        raise ConfigurationError(f"complexity must be positive: {complexity}")
    arbitration = 900.0 * complexity * max(1, ports - 1)
    datapath = 350.0 * complexity * ports
    return arbitration + datapath + 400.0 * complexity
