"""Linked-list DMA: chain-following variant of the self-indirect DMA.

The paper's Figure 6 distinguishes "linked-list DMAs" (architecture c:
"a linked-list DMA-like memory module, implementing an self-indirect
data structure") from the generic self-indirect engine. A linked-list
DMA is *programmed*: software registers a list head and the
next-pointer offset, and the engine walks ``node->next`` autonomously —
so on a re-traversal it can stream the whole chain with one backing
round trip instead of paying that round trip per hop.

In the trace-driven setting the programmed next-pointers are recovered
at prime time: a node whose successor is *the same on every traversal*
(it appears at least twice in the primed sequence, always followed by
the same node) has a genuine stored pointer; nodes visited once or with
varying successors (hash probes, data-dependent walks) do not. On a
buffer miss at a node with a stable pointer, the engine bursts the
stable run ahead of the CPU — all members become ready after one
backing latency plus one beat-slot each.

Unprimed, the module degrades exactly to
:class:`~repro.memory.dma.SelfIndirectDma` (a node cache).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.memory.area import GATES_PER_SRAM_BIT
from repro.memory.dma import SelfIndirectDma
from repro.trace.events import AccessKind


class LinkedListDma(SelfIndirectDma):
    """Self-indirect DMA that streams stable pointer chains in bursts.

    Args:
        max_chain: longest burst the engine issues, in nodes (the
            descriptor/stride RAM depth the area model charges for).
        (remaining arguments as in :class:`SelfIndirectDma`)
    """

    kind = "linked_list_dma"

    def __init__(
        self,
        name: str,
        entries: int = 32,
        node_size: int = 16,
        lookahead: int = 4,
        hit_latency: int = 1,
        max_chain: int = 64,
    ) -> None:
        super().__init__(
            name,
            entries=entries,
            node_size=node_size,
            lookahead=lookahead,
            hit_latency=hit_latency,
        )
        if max_chain <= 1:
            raise ConfigurationError(f"max_chain must exceed 1: {max_chain}")
        self.max_chain = max_chain
        #: Recovered stable pointers: chunk -> unique successor chunk.
        self._stable_next: dict[int, int] = {}
        self.burst_prefetches = 0

    @property
    def area_gates(self) -> float:
        # Node store plus the chain-walk engine's descriptor RAM: one
        # 32-bit pointer word per burst slot.
        descriptor_bits = self.max_chain * 32
        return super().area_gates + descriptor_bits * GATES_PER_SRAM_BIT + 900.0

    def reset(self) -> None:
        super().reset()
        self.burst_prefetches = 0

    def prime(self, addresses: Sequence[int]) -> None:
        """Install the access sequence and recover the stored pointers.

        A chunk's pointer is *stable* when the chunk occurs at least
        twice and is always followed by the same chunk — the signature
        of a real ``node->next`` field rather than a data-dependent
        probe.
        """
        super().prime(addresses)
        successors: dict[int, set[int]] = {}
        counts: dict[int, int] = {}
        sequence = self._sequence
        for position in range(len(sequence) - 1):
            chunk = sequence[position]
            counts[chunk] = counts.get(chunk, 0) + 1
            successors.setdefault(chunk, set()).add(sequence[position + 1])
        if sequence:
            last = sequence[-1]
            counts[last] = counts.get(last, 0) + 1
        self._stable_next = {
            chunk: next(iter(nexts))
            for chunk, nexts in successors.items()
            if len(nexts) == 1 and counts.get(chunk, 0) >= 2
        }

    def _chain_from(self, head: int) -> list[int]:
        """The stable run starting at ``head`` (cycle- and length-capped)."""
        chain = [head]
        seen = {head}
        cursor = head
        while len(chain) < self.max_chain:
            successor = self._stable_next.get(cursor)
            if successor is None or successor in seen:
                break
            chain.append(successor)
            seen.add(successor)
            cursor = successor
        return chain

    def _record_burst(self, buffer, position, chunk) -> int:
        """Recording twin of the burst block in :meth:`access_raw`.

        A burst member's ready time is ``tick + delay + position`` —
        the affine term ``(src=position_of_this_access, alpha=1,
        beta=chain_position)`` — and membership only consults the
        shadow buffer, so the symbolic form is exact.
        """
        burst_bytes = 0
        if chunk not in buffer and chunk in self._stable_next:
            chain = self._chain_from(chunk)
            if len(chain) > 1:
                for chain_position, member in enumerate(chain):
                    if member not in buffer:
                        burst_bytes += self.node_size
                        self._shadow_insert(
                            buffer,
                            self.entries,
                            member,
                            (position, 1, chain_position),
                        )
        return burst_bytes

    def access_raw(
        self, address: int, size: int, kind: AccessKind, tick: int
    ) -> tuple[bool, int, int, int, int]:
        chunk = address // self.node_size
        burst_bytes = 0
        if (
            chunk not in self._buffer
            and chunk in self._stable_next
        ):
            chain = self._chain_from(chunk)
            if len(chain) > 1:
                delay = self.backing_latency_hint
                for position, member in enumerate(chain):
                    if member not in self._buffer:
                        burst_bytes += self.node_size
                        self._insert(member, tick + delay + position)
                self.burst_prefetches += 1
        hit, latency, refill, writeback, prefetch = super().access_raw(
            address, size, kind, tick
        )
        return hit, latency, refill, writeback, prefetch + burst_bytes
