"""Algorithmic multi-port SRAM with banked port arbitration.

A :class:`MultiPortSram` models the "algorithmic" multi-port memories
of Sethi's DSE study: instead of physically multi-ported cells, the
array is split into ``ports`` word-interleaved banks behind a
per-cycle arbiter. Accesses that land on distinct banks proceed at
full rate; back-to-back accesses to the *same* bank lose arbitration
and stall for ``conflict_penalty`` cycles. The conflict pattern is a
deterministic function of the address order alone — never of the
issue ticks — so the module honours the ``supports_batch`` contract
and the columnar kernel evaluates whole runs in one
:meth:`access_many` call.

Connectivity-side, the part advertises its port count through the
``ports`` attribute, which ConEx feasibility/cost accounting
(:func:`repro.connectivity.architecture.cluster_ports`) weighs
against each preset's ``max_ports``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.area import sram_area_gates
from repro.memory.energy import sram_access_energy_nj
from repro.memory.module import BatchResponse, MemoryModule, ModuleResponse
from repro.memory.sram import Sram
from repro.trace.events import AccessKind

__all__ = ["MultiPortSram"]

#: Area overhead per extra port (banking mux + arbiter), fractional.
PORT_AREA_OVERHEAD = 0.3

#: Energy overhead per extra port (longer word lines, arbiter), fractional.
PORT_ENERGY_OVERHEAD = 0.15


class MultiPortSram(Sram):
    """Word-interleaved multi-port scratchpad with conflict stalls."""

    kind = "multiport_sram"

    _STATE_ATTRS = MemoryModule._STATE_ATTRS | {"conflicts"}

    def __init__(
        self,
        name: str,
        capacity: int,
        access_latency: int = 1,
        ports: int = 2,
        word_bytes: int = 8,
        conflict_penalty: int = 1,
    ) -> None:
        super().__init__(name, capacity, access_latency)
        if ports < 2 or ports & (ports - 1):
            raise ConfigurationError(
                f"ports must be a power of two >= 2: {ports}"
            )
        if word_bytes <= 0 or word_bytes & (word_bytes - 1):
            raise ConfigurationError(
                f"bank word size must be a power of two: {word_bytes}"
            )
        if conflict_penalty < 0:
            raise ConfigurationError(
                f"conflict penalty cannot be negative: {conflict_penalty}"
            )
        self.ports = ports
        self.word_bytes = word_bytes
        self.conflict_penalty = conflict_penalty
        self.conflicts = 0
        self._last_bank = -1

    @property
    def area_gates(self) -> float:
        return sram_area_gates(self.capacity) * (
            1.0 + PORT_AREA_OVERHEAD * (self.ports - 1)
        )

    @property
    def access_energy_nj(self) -> float:
        return sram_access_energy_nj(self.capacity) * (
            1.0 + PORT_ENERGY_OVERHEAD * (self.ports - 1)
        )

    def reset(self) -> None:
        super().reset()
        self.conflicts = 0
        self._last_bank = -1

    def _bank(self, address: int) -> int:
        return (address // self.word_bytes) % self.ports

    def access(
        self, address: int, size: int, kind: AccessKind, tick: int
    ) -> ModuleResponse:
        self.accesses += 1
        bank = self._bank(address)
        latency = self.access_latency
        if bank == self._last_bank:
            self.conflicts += 1
            latency += self.conflict_penalty
        self._last_bank = bank
        return ModuleResponse(hit=True, latency=latency)

    def access_many(
        self, addresses: np.ndarray, sizes: np.ndarray, kinds: np.ndarray
    ) -> BatchResponse:
        n = len(addresses)
        self.accesses += n
        latency = np.full(n, self.access_latency, dtype=np.int64)
        if n:
            banks = (addresses // self.word_bytes) % self.ports
            previous = np.empty_like(banks)
            previous[1:] = banks[:-1]
            previous[0] = self._last_bank
            conflict = banks == previous
            latency[conflict] += self.conflict_penalty
            self.conflicts += int(np.count_nonzero(conflict))
            self._last_bank = int(banks[-1])
        return BatchResponse(hit=np.ones(n, dtype=bool), latency=latency)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.ports}-port SRAM "
            f"({self.capacity}B, {self.word_bytes}B banks, "
            f"+{self.conflict_penalty}cyc conflict)"
        )
