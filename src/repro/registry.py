"""Unified component registry: named IP-library builders.

The exploration stack consumes two libraries — memory-module presets
(:class:`repro.memory.library.MemoryLibrary`) and connectivity presets
(:class:`repro.connectivity.library.ConnectivityLibrary`). This module
keys *pairs of builders* by a stable string name so every entry point
resolves libraries the same way:

* the CLI's ``--memory-lib`` / ``--conn-lib`` selectors,
* the service's :class:`~repro.service.schemas.JobSpec` ``library``
  field (validated at submit time, resolved in the worker),
* :func:`repro.core.memorex.run_memorex`'s ``library`` parameter and
  :func:`repro.memory.library.mixed_architecture`'s string form.

The ``"default"`` name maps to the paper-reproduction libraries.
Downstream users register their own spaces once::

    from repro import registry

    registry.register_memory_library("tiny", build_tiny_memory_lib)
    registry.register_connectivity_library("tiny", build_tiny_conn_lib)

and every entry point above accepts ``"tiny"`` from then on. Builders
are callables, invoked per lookup, so each resolution returns a fresh
library (presets are factories; libraries are cheap).
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from repro.errors import LibraryError, UnknownPresetError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.connectivity.library import ConnectivityLibrary
    from repro.memory.library import MemoryLibrary

__all__ = [
    "DEFAULT_LIBRARY",
    "connectivity_library",
    "connectivity_library_names",
    "library_names",
    "memory_library",
    "memory_library_names",
    "register_connectivity_library",
    "register_memory_library",
]

#: Name of the built-in paper-reproduction library pair.
DEFAULT_LIBRARY = "default"

_MEMORY_BUILDERS: dict[str, Callable[[], "MemoryLibrary"]] = {}
_CONNECTIVITY_BUILDERS: dict[str, Callable[[], "ConnectivityLibrary"]] = {}


def _register(
    table: dict, side: str, name: str, builder: Callable
) -> None:
    if not name or not isinstance(name, str):
        raise LibraryError(f"{side} library name must be a non-empty string")
    existing = table.get(name)
    if existing is not None and existing is not builder:
        raise LibraryError(f"{side} library '{name}' already registered")
    table[name] = builder


def register_memory_library(
    name: str, builder: Callable[[], "MemoryLibrary"]
) -> None:
    """Register a named memory-library builder."""
    _register(_MEMORY_BUILDERS, "memory", name, builder)


def register_connectivity_library(
    name: str, builder: Callable[[], "ConnectivityLibrary"]
) -> None:
    """Register a named connectivity-library builder."""
    _register(_CONNECTIVITY_BUILDERS, "connectivity", name, builder)


def _ensure_defaults() -> None:
    # Lazy: repro.memory.library imports are deferred so importing
    # repro.registry (e.g. from the service schemas) stays light.
    if DEFAULT_LIBRARY not in _MEMORY_BUILDERS:
        from repro.memory.library import default_memory_library

        _MEMORY_BUILDERS[DEFAULT_LIBRARY] = default_memory_library
    if DEFAULT_LIBRARY not in _CONNECTIVITY_BUILDERS:
        from repro.connectivity.library import default_connectivity_library

        _CONNECTIVITY_BUILDERS[DEFAULT_LIBRARY] = default_connectivity_library


def memory_library(name: str | None = None) -> "MemoryLibrary":
    """Build the memory library registered under ``name``.

    ``None`` resolves to :data:`DEFAULT_LIBRARY`.
    """
    _ensure_defaults()
    key = DEFAULT_LIBRARY if name is None else name
    try:
        builder = _MEMORY_BUILDERS[key]
    except KeyError:
        raise UnknownPresetError(
            f"no memory library '{key}'; "
            f"known: {', '.join(sorted(_MEMORY_BUILDERS))}"
        ) from None
    return builder()


def connectivity_library(name: str | None = None) -> "ConnectivityLibrary":
    """Build the connectivity library registered under ``name``.

    ``None`` resolves to :data:`DEFAULT_LIBRARY`.
    """
    _ensure_defaults()
    key = DEFAULT_LIBRARY if name is None else name
    try:
        builder = _CONNECTIVITY_BUILDERS[key]
    except KeyError:
        raise UnknownPresetError(
            f"no connectivity library '{key}'; "
            f"known: {', '.join(sorted(_CONNECTIVITY_BUILDERS))}"
        ) from None
    return builder()


def memory_library_names() -> tuple[str, ...]:
    """Registered memory-library names, sorted."""
    _ensure_defaults()
    return tuple(sorted(_MEMORY_BUILDERS))


def connectivity_library_names() -> tuple[str, ...]:
    """Registered connectivity-library names, sorted."""
    _ensure_defaults()
    return tuple(sorted(_CONNECTIVITY_BUILDERS))


def library_names() -> tuple[str, ...]:
    """Names registered on *both* sides — usable as a JobSpec library."""
    _ensure_defaults()
    return tuple(
        sorted(set(_MEMORY_BUILDERS) & set(_CONNECTIVITY_BUILDERS))
    )
