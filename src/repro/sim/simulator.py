"""The trace-driven simulator core.

Timing model (cycle-approximate, single in-order CPU master):

* The CPU issues accesses at their trace ticks, delayed by the
  accumulated stall ``lag``; reads block, and writes either block (the
  default — a small embedded core without a write buffer, as in the
  paper's era) or are *posted* (``posted_writes=True``): the CPU
  continues after the write is handed to the memory module, while the
  write's backing traffic still occupies channels and DRAM.
* Each access crosses its CPU-side connection (arbitration wait +
  transfer latency), is served by its memory module, and on a miss
  crosses the backing connection to the DRAM (command, DRAM core
  latency with open-row modelling, data return beats).
* Connections track busy-until timelines; *split-transaction* buses
  release the bus while the DRAM works, *pipelined* buses free
  themselves after their data beats (occupancy < latency).
* Writebacks and prefetches consume backing-channel and DRAM bandwidth
  off the critical path — they delay later misses, not this access.
* With a :class:`SamplingConfig`, off-window accesses run a fast path
  that keeps module state warm but skips contention modelling and
  statistics (the paper's 1/9 time-sampling estimation).

Energy model: module array energy per access, DRAM core + pin energy
per DRAM transaction, and wire switching energy per byte per
connection (from the connectivity architecture's wire models).

Execution engines: :meth:`Simulator.run` dispatches to the columnar
fast-path kernel (:mod:`repro.sim.kernels`) by default and to the
scalar reference loop kept in this module with ``run(reference=True)``
or ``REPRO_REFERENCE_SIM=1``. The two produce bit-identical
:class:`SimulationResult`\\ s — the kernel's golden-equivalence suite
asserts it — so callers and caches never need to know which ran.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.channels import DRAM, Channel
from repro.connectivity.architecture import ConnectivityArchitecture
from repro.errors import SimulationError
from repro.memory.dma import SelfIndirectDma
from repro.memory.energy import dram_transaction_energy_nj
from repro.sim.metrics import (
    ChannelTraffic,
    ModuleStats,
    SimulationResult,
    StructLatency,
)
from repro.sim.sampling import SamplingConfig
from repro.trace.events import AccessKind, Trace

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.apex.architectures import MemoryArchitecture


@dataclass
class _Route:
    """Precomputed routing of one structure's accesses."""

    target: str
    module: object  # MemoryModule | None (None = direct DRAM)
    cpu_channel: int  # index into channel tables
    backing_channel: int  # index, or -1 when the module never misses


@dataclass
class _ChannelState:
    """Mutable per-channel bookkeeping."""

    channel: Channel
    component: object  # ConnectivityComponent | None for ideal mode
    cluster_index: int
    energy_per_byte: float
    transactions: int = 0
    bytes_moved: int = 0
    wait_cycles: int = 0
    background_transactions: int = 0
    busy_cycles: int = 0

    def reset(self) -> None:
        """Zero the traffic counters so one Simulator can run repeatedly."""
        self.transactions = 0
        self.bytes_moved = 0
        self.wait_cycles = 0
        self.background_transactions = 0
        self.busy_cycles = 0


class _RunState:
    """Mutable whole-run accumulators shared by both execution engines.

    The reference loop and the columnar kernel both read and write this
    record span by span, so a run can interleave scalar and batched
    spans while accumulating one consistent set of statistics.
    """

    __slots__ = (
        "cluster_free",
        "dram_free",
        "lag",
        "measured",
        "latency_sum",
        "energy_sum",
        "energy_modules",
        "energy_dram",
        "energy_wires",
        "misses",
        "module_counts",
        "struct_counts",
        "struct_latency",
        "plan",
    )

    def __init__(self, simulator: "Simulator") -> None:
        channels = simulator._channels
        self.cluster_free = [0] * (1 + max(c.cluster_index for c in channels))
        #: One core-occupancy timeline per DRAM channel: transactions
        #: serialize only against other transactions on their own
        #: channel (single-channel parts keep the single shared slot).
        self.dram_free = [0] * simulator.memory.dram.channels
        self.lag = 0
        self.measured = 0
        self.latency_sum = 0
        self.energy_sum = 0.0
        self.energy_modules = 0.0
        self.energy_dram = 0.0
        self.energy_wires = 0.0
        self.misses = 0
        self.module_counts: dict[str, list[int]] = {
            r.target: [0, 0, 0] for r in simulator._routes
        }
        self.struct_counts = [0] * len(simulator._routes)
        self.struct_latency = [0] * len(simulator._routes)
        #: Lazily-built per-run Python-list trace columns (the kernel's
        #: scalar residue builds them once per run, not once per span).
        self.plan = None


class Simulator:
    """Simulates one trace over one memory + connectivity architecture.

    Args:
        trace: the tagged access trace.
        memory: the memory architecture (modules are reset and, where
            applicable, primed at construction).
        connectivity: the connectivity architecture; ``None`` selects
            the *ideal* connectivity used by APEX (zero latency,
            infinite bandwidth, zero energy) so module behaviour can be
            studied in isolation.
        sampling: optional time-sampling configuration.
        validated: skip the ``memory.validate(trace)`` pass; only for
            callers that already validated this (memory, trace) pair —
            the batch evaluator validates once per candidate group.
    """

    def __init__(
        self,
        trace: Trace,
        memory: MemoryArchitecture,
        connectivity: ConnectivityArchitecture | None = None,
        sampling: SamplingConfig | None = None,
        posted_writes: bool = False,
        *,
        validated: bool = False,
    ) -> None:
        self.trace = trace
        self.memory = memory
        self.connectivity = connectivity
        self.sampling = sampling
        self.posted_writes = posted_writes
        if not validated:
            memory.validate(trace)
        self._channels: list[_ChannelState] = []
        self._channel_index: dict[Channel, int] = {}
        self._routes: list[_Route] = []
        self._build_channels()
        self._build_routes()

    # -- setup ---------------------------------------------------------

    def _build_channels(self) -> None:
        channels = self.memory.channels(self.trace)
        if self.connectivity is not None:
            implemented = set(self.connectivity.channels())
            missing = [c.name for c in channels if c not in implemented]
            if missing:
                raise SimulationError(
                    f"connectivity '{self.connectivity.name}' misses channels: "
                    f"{', '.join(missing)}"
                )
        cluster_indices: dict[int, int] = {}
        for channel in channels:
            if self.connectivity is None:
                component = None
                cluster_index = len(self._channels)  # private timeline
                energy = 0.0
            else:
                cluster = self.connectivity.cluster_for(channel)
                component = cluster.component
                key = id(cluster)
                if key not in cluster_indices:
                    cluster_indices[key] = len(cluster_indices)
                cluster_index = cluster_indices[key]
                energy = self.connectivity.energy_nj_per_byte(channel, self.memory)
            self._channel_index[channel] = len(self._channels)
            self._channels.append(
                _ChannelState(
                    channel=channel,
                    component=component,
                    cluster_index=cluster_index,
                    energy_per_byte=energy,
                )
            )

    def _build_routes(self) -> None:
        for struct in self.trace.structs:
            target = self.memory.module_for(struct)
            if target == DRAM:
                cpu_channel = self._channel_index[Channel("cpu", DRAM)]
                self._routes.append(
                    _Route(
                        target=DRAM,
                        module=None,
                        cpu_channel=cpu_channel,
                        backing_channel=-1,
                    )
                )
                continue
            module = self.memory.module(target)
            cpu_channel = self._channel_index[Channel("cpu", target)]
            backing = Channel(target, DRAM)
            backing_channel = self._channel_index.get(backing, -1)
            self._routes.append(
                _Route(
                    target=target,
                    module=module,
                    cpu_channel=cpu_channel,
                    backing_channel=backing_channel,
                )
            )

    def _prime_modules(self) -> None:
        """Reset modules; prime DMA engines with their access chains."""
        self.memory.reset()
        dma_targets: dict[str, list[int]] = {}
        for name, module in self.memory.modules.items():
            if isinstance(module, SelfIndirectDma):
                dma_targets[name] = []
        if dma_targets:
            addresses = self.trace.addresses
            struct_ids = self.trace.struct_ids
            for name in dma_targets:
                serving = np.flatnonzero(
                    np.array([r.target == name for r in self._routes])
                )
                if len(serving) == 1:
                    mask = struct_ids == serving[0]
                else:
                    mask = np.isin(struct_ids, serving)
                dma_targets[name] = addresses[mask].tolist()
            for name, sequence in dma_targets.items():
                module = self.memory.modules[name]
                assert isinstance(module, SelfIndirectDma)
                module.prime(sequence)
                module.backing_latency_hint = self._dma_backing_delay(
                    name, module.node_size
                )

    def _dma_backing_delay(self, target: str, node_size: int) -> int:
        """The prefetch-timeliness round trip for a DMA at ``target``.

        Exactly the ``backing_latency_hint`` :meth:`_prime_modules`
        installs; exposed separately so the batch evaluator can price a
        shared replay recording under each candidate's connectivity.
        """
        backing = Channel(target, DRAM)
        if self.connectivity is not None and backing in self._channel_index:
            component = self.connectivity.component_for(backing)
            return (
                component.timing(node_size).latency
                + self.memory.dram.core_latency
            )
        return self.memory.dram.core_latency + 2

    # -- main loop -------------------------------------------------------

    def run(self, reference: bool | None = None) -> SimulationResult:
        """Simulate the whole trace and return the aggregate result.

        Args:
            reference: ``True`` forces the scalar reference loop,
                ``False`` forces the columnar kernel, and ``None`` (the
                default) selects the kernel unless the
                ``REPRO_REFERENCE_SIM`` environment variable opts out.
                Both engines return bit-identical results.
        """
        from repro.sim.kernels import reference_requested, run_kernel

        if reference is None:
            reference = reference_requested()
        with obs.span("sim.run"):
            self._prime_modules()
            for channel_state in self._channels:
                channel_state.reset()
            state = _RunState(self)
            if reference:
                self._reference_loop(state)
            else:
                run_kernel(self, state)
            result = self._finalize(state)
        if obs.enabled():
            obs.incr("sim.runs")
            obs.incr("sim.accesses", len(self.trace))
            obs.incr("sim.measured_accesses", state.measured)
            obs.incr("sim.misses", state.misses)
        return result

    def _reference_loop(self, state: _RunState) -> None:
        """The original per-access Python loop, kept as ground truth."""
        trace = self.trace
        dram = self.memory.dram
        sampling = self.sampling
        channels = self._channels
        routes = self._routes

        cluster_free = state.cluster_free
        dram_free = state.dram_free
        lag = state.lag

        addresses = trace.addresses
        sizes = trace.sizes
        kinds = trace.kinds
        struct_ids = trace.struct_ids
        ticks = trace.ticks

        measured = state.measured
        latency_sum = state.latency_sum
        energy_sum = state.energy_sum
        energy_modules = state.energy_modules
        energy_dram = state.energy_dram
        energy_wires = state.energy_wires
        misses = state.misses
        module_counts = state.module_counts
        struct_counts = state.struct_counts
        struct_latency = state.struct_latency

        for i in range(len(trace)):
            address = int(addresses[i])
            size = int(sizes[i])
            kind = AccessKind(int(kinds[i]))
            route = routes[struct_ids[i]]
            issue = int(ticks[i]) + lag
            on_window = sampling is None or sampling.is_on(i)
            counted = sampling is None or sampling.is_measured(i)

            cpu_state = channels[route.cpu_channel]
            energy = 0.0

            if route.module is None:
                # Uncached: straight to DRAM over the off-chip connection.
                completion, wait, page_hit = self._dram_transaction(
                    cpu_state, issue, address, size, cluster_free, dram_free,
                    on_window,
                )
                misses += 1
                counts = module_counts[DRAM]
                counts[0] += 1
                counts[2] += 1
                if counted:
                    dram_nj = dram_transaction_energy_nj(size, page_hit)
                    wire_nj = size * cpu_state.energy_per_byte
                    energy += dram_nj + wire_nj
                    energy_dram += dram_nj
                    energy_wires += wire_nj
                cpu_state.bytes_moved += size
                cpu_state.transactions += 1
                cpu_state.wait_cycles += wait
            else:
                component = cpu_state.component
                if component is None:
                    start = issue
                    wait = 0
                    conn_latency = 0
                    occupancy = 0
                else:
                    free = cluster_free[cpu_state.cluster_index]
                    start = issue if issue >= free else free
                    if not on_window:
                        start = issue
                    wait = start - issue
                    timing = component.timing(size)
                    conn_latency = timing.latency
                    occupancy = timing.occupancy

                arrival = start + conn_latency
                response = route.module.access(address, size, kind, arrival)
                served = arrival + response.latency
                counts = module_counts[route.target]
                counts[0] += 1
                if response.hit:
                    counts[1] += 1
                else:
                    counts[2] += 1
                    misses += 1

                completion = served
                backing = route.backing_channel
                if backing >= 0:
                    back_state = channels[backing]
                    if response.refill_bytes:
                        completion, back_wait, page_hit = (
                            self._dram_transaction(
                                back_state, served, address,
                                response.refill_bytes, cluster_free,
                                dram_free, on_window,
                            )
                        )
                        back_state.bytes_moved += response.refill_bytes
                        back_state.transactions += 1
                        back_state.wait_cycles += back_wait
                        if counted:
                            dram_nj = dram_transaction_energy_nj(
                                response.refill_bytes, page_hit
                            )
                            wire_nj = (
                                response.refill_bytes * back_state.energy_per_byte
                            )
                            energy += dram_nj + wire_nj
                            energy_dram += dram_nj
                            energy_wires += wire_nj
                    off_path = response.writeback_bytes + response.prefetch_bytes
                    if off_path:
                        self._background_traffic(
                            back_state, served, address, off_path,
                            cluster_free, dram_free, on_window,
                        )
                        if counted:
                            # Background prefetch/writeback bursts run in
                            # page mode.
                            dram_nj = dram_transaction_energy_nj(off_path, True)
                            wire_nj = off_path * back_state.energy_per_byte
                            energy += dram_nj + wire_nj
                            energy_dram += dram_nj
                            energy_wires += wire_nj

                if component is not None and on_window:
                    cluster = cpu_state.cluster_index
                    if component.split_transactions or completion == served:
                        busy_until = start + occupancy
                    else:
                        # Non-split bus held for the whole miss.
                        busy_until = completion
                    cpu_state.busy_cycles += max(0, busy_until - start)
                    if busy_until > cluster_free[cluster]:
                        cluster_free[cluster] = busy_until
                cpu_state.bytes_moved += size
                cpu_state.transactions += 1
                cpu_state.wait_cycles += wait
                if counted:
                    module_nj = route.module.access_energy_nj
                    wire_nj = size * cpu_state.energy_per_byte
                    energy += module_nj + wire_nj
                    energy_modules += module_nj
                    energy_wires += wire_nj

            latency = completion - issue
            if latency < 1:
                raise SimulationError(
                    f"access {i} completed in {latency} cycles"
                )
            if self.posted_writes and kind == AccessKind.WRITE:
                # Posted write: the CPU moves on after one issue slot;
                # the transfer still happened on the channels above.
                latency = 1
            lag += latency - 1
            if counted:
                measured += 1
                latency_sum += latency
                energy_sum += energy
                struct_id = struct_ids[i]
                struct_counts[struct_id] += 1
                struct_latency[struct_id] += latency

        state.cluster_free = cluster_free
        state.lag = lag
        state.measured = measured
        state.latency_sum = latency_sum
        state.energy_sum = energy_sum
        state.energy_modules = energy_modules
        state.energy_dram = energy_dram
        state.energy_wires = energy_wires
        state.misses = misses

    def _finalize(self, state: _RunState) -> SimulationResult:
        """Fold the accumulated run state into a :class:`SimulationResult`."""
        trace = self.trace
        measured = state.measured
        if measured == 0:
            raise SimulationError("sampling measured no accesses")

        latency_sum = state.latency_sum
        lag = state.lag
        misses = state.misses
        struct_counts = state.struct_counts
        struct_latency = state.struct_latency

        avg_latency = latency_sum / measured
        avg_energy = state.energy_sum / measured
        breakdown = {
            "modules": state.energy_modules / measured,
            "dram": state.energy_dram / measured,
            "connectivity": state.energy_wires / measured,
        }
        memory_cost = self.memory.area_gates
        connectivity_cost = (
            0.0
            if self.connectivity is None
            else self.connectivity.cost_gates(self.memory)
        )
        module_stats = {
            name: ModuleStats(
                name=name, accesses=c[0], hits=c[1], misses=c[2]
            )
            for name, c in state.module_counts.items()
        }
        struct_stats = {}
        for struct_id, struct_name in enumerate(trace.structs):
            count = struct_counts[struct_id]
            if not count:
                continue
            total_latency = struct_latency[struct_id]
            struct_stats[struct_name] = StructLatency(
                struct=struct_name,
                accesses=count,
                mean_latency=total_latency / count,
                share=total_latency / latency_sum if latency_sum else 0.0,
            )
        channel_stats = {
            channel_state.channel.name: ChannelTraffic(
                channel_name=channel_state.channel.name,
                transactions=channel_state.transactions,
                bytes_moved=channel_state.bytes_moved,
                total_wait_cycles=channel_state.wait_cycles,
                background_transactions=channel_state.background_transactions,
                busy_cycles=channel_state.busy_cycles,
            )
            for channel_state in self._channels
        }
        return SimulationResult(
            trace_name=trace.name,
            memory_name=self.memory.name,
            connectivity_name=(
                "ideal" if self.connectivity is None else self.connectivity.name
            ),
            accesses=len(trace),
            sampled_accesses=measured,
            avg_latency=avg_latency,
            total_cycles=trace.duration + lag,
            avg_energy_nj=avg_energy,
            total_energy_nj=avg_energy * len(trace),
            miss_ratio=misses / len(trace),
            cost_gates=memory_cost + connectivity_cost,
            memory_cost_gates=memory_cost,
            connectivity_cost_gates=connectivity_cost,
            modules=module_stats,
            channels=channel_stats,
            energy_breakdown=breakdown,
            structs=struct_stats,
        )

    # -- transaction helpers ----------------------------------------------

    def _dram_transaction(
        self,
        state: _ChannelState,
        ready: int,
        address: int,
        size: int,
        cluster_free: list[int],
        dram_free: list[int],
        on_window: bool,
    ) -> tuple[int, int, bool]:
        """A critical-path DRAM read/refill over ``state``'s connection.

        ``dram_free`` is the per-channel core timeline, updated in
        place (the channel is the one serving ``address``). Returns
        (completion, connection wait, page_hit).
        """
        dram = self.memory.dram
        component = state.component
        if component is None:
            latency = dram.access(address, size, AccessKind.READ, ready).latency
            return ready + latency, 0, latency == dram.page_hit_latency
        free = cluster_free[state.cluster_index]
        start = ready if ready >= free else free
        if not on_window:
            start = ready
        wait = start - ready
        command_done = start + component.base_latency
        channel = dram.channel_of(address)
        channel_free = dram_free[channel]
        dram_start = command_done if command_done >= channel_free else channel_free
        if not on_window:
            dram_start = command_done
        core = dram.access(address, size, AccessKind.READ, dram_start).latency
        beats_cycles = component.beats(size) * component.cycles_per_beat
        completion = dram_start + core + beats_cycles
        page_hit = core == dram.page_hit_latency
        if on_window:
            dram_free[channel] = dram_start + core
            if component.split_transactions:
                busy_until = start + component.timing(size).occupancy
            else:
                busy_until = completion
            state.busy_cycles += max(0, busy_until - start)
            if busy_until > cluster_free[state.cluster_index]:
                cluster_free[state.cluster_index] = busy_until
        return completion, wait, page_hit

    def _background_traffic(
        self,
        state: _ChannelState,
        ready: int,
        address: int,
        size: int,
        cluster_free: list[int],
        dram_free: list[int],
        on_window: bool,
    ) -> None:
        """Off-critical-path traffic: occupies connection + DRAM only."""
        state.bytes_moved += size
        state.background_transactions += 1
        self._background_contention(
            state, ready, address, size, cluster_free, dram_free, on_window
        )

    def _background_contention(
        self,
        state: _ChannelState,
        ready: int,
        address: int,
        size: int,
        cluster_free: list[int],
        dram_free: list[int],
        on_window: bool,
    ) -> None:
        """The contention half of :meth:`_background_traffic`.

        The kernel counts background bytes/transactions columnar once
        per run, so its loops need the occupancy/timeline updates
        without re-touching the traffic counters. ``dram_free`` is the
        per-channel core timeline, updated in place.
        """
        component = state.component
        if component is None or not on_window:
            return
        free = cluster_free[state.cluster_index]
        start = ready if ready >= free else free
        occupancy = component.timing(size).occupancy
        state.busy_cycles += occupancy
        cluster_free[state.cluster_index] = start + occupancy
        dram = self.memory.dram
        channel = dram.channel_of(address)
        dram_start = start + component.base_latency
        if dram_start < dram_free[channel]:
            dram_start = dram_free[channel]
        dram_free[channel] = dram_start + dram.page_hit_latency

    def __repr__(self) -> str:
        connectivity = (
            "ideal" if self.connectivity is None else self.connectivity.name
        )
        return (
            f"<Simulator {self.trace.name} on {self.memory.name}/{connectivity}>"
        )


def simulate(
    trace: Trace,
    memory: MemoryArchitecture,
    connectivity: ConnectivityArchitecture | None = None,
    sampling: SamplingConfig | None = None,
    posted_writes: bool = False,
    reference: bool | None = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(
        trace, memory, connectivity, sampling, posted_writes
    ).run(reference=reference)
