"""Time-sampling configuration (Kessler/Hill/Wood style).

The paper estimates performance and power with a time-sampling
technique "assuming a ratio of 1/9 between the on and off time
intervals": statistics are collected during short *on* windows
separated by long *off* windows in which the simulation runs a cheap
fast path (module state stays warm, but contention modelling and
statistics are skipped). Absolute accuracy drops; ranking fidelity —
all the search needs — survives, which benchmark ``abl1`` verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SamplingConfig:
    """On/off time-sampling windows, measured in accesses.

    Args:
        on_window: accesses fully simulated per period.
        off_ratio: off-window length as a multiple of ``on_window``
            (the paper's ratio is 9).
        warmup: accesses at the start of each on-window excluded from
            statistics (cold-start bias control).
    """

    on_window: int = 2000
    off_ratio: int = 9
    warmup: int = 200

    def __post_init__(self) -> None:
        if self.on_window <= 0:
            raise ConfigurationError(f"on_window must be positive: {self.on_window}")
        if self.off_ratio < 0:
            raise ConfigurationError(f"off_ratio must be >= 0: {self.off_ratio}")
        if not 0 <= self.warmup < self.on_window:
            raise ConfigurationError(
                f"warmup must lie inside the on-window: {self.warmup}"
            )

    @property
    def period(self) -> int:
        """Accesses per full on+off period."""
        return self.on_window * (1 + self.off_ratio)

    def key(self) -> tuple[int, int, int]:
        """Hashable identity of the sampling schedule.

        Two configs with equal keys produce identical
        :meth:`windows`/:meth:`masks` for every length, so shared trace
        plans (:mod:`repro.sim.batch`) and the :mod:`repro.exec` result
        cache can use the key interchangeably with the config itself.
        """
        return (self.on_window, self.off_ratio, self.warmup)

    def is_on(self, index: int) -> bool:
        """Is access ``index`` inside an on-window?"""
        return index % self.period < self.on_window

    def is_measured(self, index: int) -> bool:
        """Is access ``index`` counted in the statistics?"""
        position = index % self.period
        return self.warmup <= position < self.on_window

    def windows(self, length: int) -> list[tuple[int, int, bool]]:
        """Alternating ``(start, stop, on)`` spans covering ``[0, length)``.

        The span boundaries follow directly from the period arithmetic
        (no mask materialization), so the simulation kernel can walk
        on/off segments of a million-access trace without scanning a
        boolean column for edges. Concatenating the spans reproduces
        :meth:`masks`'s ``on`` column exactly.
        """
        spans: list[tuple[int, int, bool]] = []
        period = self.period
        for period_start in range(0, length, period):
            on_stop = min(period_start + self.on_window, length)
            spans.append((period_start, on_stop, True))
            off_stop = min(period_start + period, length)
            if off_stop > on_stop:
                spans.append((on_stop, off_stop, False))
        return spans

    def masks(self, length: int) -> tuple[np.ndarray, np.ndarray]:
        """Materialized ``(on, measured)`` boolean masks.

        ``masks(n)[0][i] == is_on(i)`` and ``masks(n)[1][i] ==
        is_measured(i)`` for every ``i < n`` — the whole-trace columns
        the simulation kernel batches over instead of calling the
        per-index predicates a million times. Measured windows are a
        subset of on windows by construction (``warmup < on_window``).
        """
        positions = np.arange(length, dtype=np.int64) % self.period
        on = positions < self.on_window
        measured = on & (positions >= self.warmup)
        return on, measured
