"""Cross-candidate batch evaluation: shared trace plans + module columns.

Phase II explorations simulate *many candidates over one trace*, and
most of those candidates share the identical memory-module architecture,
differing only in connectivity assignment. A single
:meth:`~repro.sim.simulator.Simulator.run` re-derives from scratch, per
candidate, work that is invariant across the whole sweep:

* **per-trace** — sampling masks and window lists, tick/write columns,
  the list conversions backing the contention walks. Hoisted into a
  :class:`TracePlan`, built once per trace fingerprint and reused by
  every candidate (an LRU registry keeps the few live traces).
* **per memory signature** — module outcomes. For batch-capable
  modules, the whole-run ``access_many`` columns; for the tick-affine
  DMA engines, a symbolic :class:`~repro.memory.module.ReplayTrace`
  recording (:meth:`~repro.memory.module.MemoryModule.record_replay`)
  whose stall terms are re-priced per candidate against its arrivals
  and backing delay. Module state evolution is tick-independent
  (membership, replacement, byte amounts), so one merged DRAM open-row
  pass is also shared. All of it lives in a :class:`GroupPlan`, built
  once per (trace, memory-architecture signature) group by a
  connectivity-free *lead* simulation.

Each candidate then runs only its **delta pass**: connectivity-priced
transfer columns, the contention/stall walk (or the pure vector fold
when the architecture has no replay modules), and the measured-window
statistics — exactly the parts that depend on the candidate's
connectivity, sampling, and write model. Results are **bit-identical**
to independent :meth:`Simulator.run` calls (and to the scalar
reference loop): the walk replicates the reference recurrence's update
order over the shared columns, and the shared columns equal what the
candidate's own modules would have produced, by the
``supports_batch`` / ``supports_replay`` contracts.

Safety valves: when ``REPRO_REFERENCE_SIM=1`` requests the reference
loop, or when a group contains a module that is neither batch-capable
nor replay-recordable (or a non-batchable DRAM), the group falls back
to independent per-candidate runs — correctness never depends on a
module opting in.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Protocol, Sequence

import numpy as np

from repro import obs
from repro.channels import DRAM
from repro.errors import SimulationError
from repro.sim.kernels import (
    _WRITE_CODE,
    _Columns,
    _build_columns,
    _build_groups,
    _evaluate_columns,
    _fold_measured,
    _openrow_core,
    reference_requested,
)
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import Simulator, _RunState
from repro.timing.batch import transfer_timing_columns

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.apex.architectures import MemoryArchitecture
    from repro.sim.sampling import SamplingConfig
    from repro.trace.events import Trace

__all__ = [
    "GroupPlan",
    "TracePlan",
    "clear_plan_registry",
    "evaluate_group",
    "trace_plan",
]


class _JobLike(Protocol):
    """What :func:`evaluate_group` needs from a work item.

    Structurally matched by :class:`repro.exec.engine.SimulationJob`
    (the sim layer does not import the exec layer).
    """

    memory: "MemoryArchitecture"
    connectivity: object | None
    sampling: "SamplingConfig | None"
    posted_writes: bool


#: Group plans retained per trace plan (distinct memory signatures).
_GROUP_PLAN_LIMIT = 32

#: Trace plans retained process-wide (distinct trace fingerprints).
_TRACE_PLAN_LIMIT = 4


class TracePlan:
    """Reusable per-trace planning state shared across candidates.

    Holds the columns every candidate evaluation needs but no candidate
    changes: tick/write lists for the walks, sampling masks per
    distinct :meth:`~repro.sim.sampling.SamplingConfig.key`, and the
    :class:`GroupPlan` cache keyed by memory-architecture signature.
    """

    def __init__(self, trace: "Trace") -> None:
        self.trace = trace
        self.fingerprint = trace.fingerprint()
        self.ticks_l = trace.ticks.tolist()
        self.write_mask = trace.kinds == _WRITE_CODE
        self._write_l: list | None = None
        self._sampling: dict = {}
        self._groups: OrderedDict = OrderedDict()

    def write_list(self) -> list:
        """Posted-write column as a Python list (built on first use)."""
        if self._write_l is None:
            self._write_l = self.write_mask.tolist()
        return self._write_l

    def sampling_columns(
        self, sampling: "SamplingConfig | None"
    ) -> tuple[list | None, np.ndarray | None, int]:
        """``(on_list, counted_mask, measured)`` for one schedule.

        ``(None, None, n)`` for unsampled runs; cached per
        :meth:`SamplingConfig.key` so candidates sharing a schedule
        share the mask materialization.
        """
        key = None if sampling is None else sampling.key()
        columns = self._sampling.get(key)
        if columns is None:
            n = len(self.trace)
            if sampling is None:
                columns = (None, None, n)
            else:
                on_mask, counted = sampling.masks(n)
                columns = (
                    on_mask.tolist(),
                    counted,
                    int(np.count_nonzero(counted)),
                )
            self._sampling[key] = columns
        return columns

    def group_plan(self, memory: "MemoryArchitecture") -> "GroupPlan":
        """The memory architecture's :class:`GroupPlan`, built on demand.

        Keyed by :meth:`~repro.apex.architectures.MemoryArchitecture.signature`,
        so signature-equal architectures (however many instances) share
        one recording; a small LRU bounds retention when a sweep visits
        many distinct signatures.
        """
        signature = memory.signature()
        plan = self._groups.get(signature)
        if plan is not None:
            self._groups.move_to_end(signature)
            if obs.enabled():
                obs.incr("sim.batch.groupplan_hits")
            return plan
        with obs.span("sim.batch.build_group_plan"):
            plan = GroupPlan(self, memory)
        self._groups[signature] = plan
        while len(self._groups) > _GROUP_PLAN_LIMIT:
            self._groups.popitem(last=False)
        return plan


class GroupPlan:
    """Shared module outcomes for one (trace, memory signature) group.

    Built by a connectivity-free *lead* :class:`Simulator` over the
    group's first candidate: module behaviour (state evolution, hit and
    byte columns) is memory-determined, and architectures with equal
    signatures have identical module names, routes, and channel sets,
    so the recording transfers to every member verbatim. Only the
    stall *latency* of a replay module depends on the candidate — kept
    symbolic in the recording and re-priced per member.
    """

    def __init__(self, plan: TracePlan, memory: "MemoryArchitecture") -> None:
        trace = plan.trace
        lead = Simulator(trace, memory)  # validates once per group
        lead._prime_modules()
        groups, struct_group, _ = _build_groups(lead)
        gid_col = struct_group[trace.struct_ids]
        sizes64 = trace.sizes.astype(np.int64)

        self.signature = memory.signature()
        self.targets = [group.target for group in groups]
        #: gid -> (latency, refill, offpath, hits) outcome columns.
        self.outcomes: dict[int, tuple] = {}
        #: gid -> ReplayTrace for the tick-affine modules.
        self.replay: dict[int, object] = {}
        self.node_sizes: dict[int, int] = {}
        self.positions_of: dict[int, np.ndarray] = {}
        replay_ok = bool(
            getattr(type(memory.dram), "supports_batch", False)
        )

        for gid, group in enumerate(groups):
            positions = np.flatnonzero(gid_col == gid)
            if not len(positions):
                continue
            self.positions_of[gid] = positions
            module = group.module
            if module is None:
                continue
            g_sizes = sizes64[positions]
            g_kinds = trace.kinds[positions]
            if group.batchable:
                outcome = module.access_many(
                    trace.addresses[positions], g_sizes, g_kinds
                )
                writeback = outcome.writeback_bytes
                prefetch = outcome.prefetch_bytes
                if writeback is None:
                    off = prefetch
                elif prefetch is None:
                    off = writeback
                else:
                    off = writeback + prefetch
                self.outcomes[gid] = (
                    outcome.latency,
                    outcome.refill_bytes,
                    off,
                    int(np.count_nonzero(outcome.hit)),
                )
            elif getattr(type(module), "supports_replay", False):
                recording = module.record_replay(g_sizes, g_kinds)
                if recording is None:
                    replay_ok = False
                    continue
                self.outcomes[gid] = (
                    recording.latency,
                    recording.refill_bytes,
                    recording.writeback_bytes + recording.prefetch_bytes,
                    int(np.count_nonzero(recording.hit)),
                )
                self.replay[gid] = recording
                self.node_sizes[gid] = int(getattr(module, "node_size", 0))
            else:
                replay_ok = False

        self.replay_ok = replay_ok
        if not replay_ok:
            return

        # Shared whole-run columns: build them through the kernel's own
        # column pass on the lead (counter folds go to a throwaway
        # state), then keep every candidate-independent column by
        # reference — members read but never mutate them.
        throwaway = _RunState(lead)
        cols, _ = _build_columns(
            lead, throwaway, groups, struct_group, shared=self
        )
        core, merged = _openrow_core(lead, cols)
        self.core = core
        self.merged_dram = merged
        self.cols_gid = cols.gid
        self.cols_row_batchable = cols.row_batchable
        self.cols_row_replay = cols.row_replay
        self.cols_uncached = cols.uncached
        self.cols_mlat = cols.mlat
        self.cols_refill = cols.refill
        self.cols_offpath = cols.offpath
        self.cols_dram_mask = cols.dram_mask

        # Per-gid fold amounts: everything _build_columns adds to the
        # run state and channel counters, minus the connectivity-priced
        # transfer columns that stay per member.
        fold = []
        for gid in sorted(self.positions_of):
            positions = self.positions_of[gid]
            group = groups[gid]
            g_sizes = sizes64[positions]
            count = len(positions)
            size_sum = int(g_sizes.sum())
            if group.module is None:
                fold.append(
                    (gid, True, count, 0, size_sum, g_sizes,
                     None, None, 0, None, None, 0, 0)
                )
                continue
            _, refill_col, off, hits = self.outcomes[gid]
            r_pos = r_bytes = None
            r_sum = 0
            if refill_col is not None and refill_col.any():
                r_local = np.flatnonzero(refill_col)
                r_pos = positions[r_local]
                r_bytes = refill_col[r_local].astype(np.int64, copy=False)
                r_sum = int(r_bytes.sum())
            bg_pos = bg_bytes = None
            off_sum = bg_count = 0
            if off is not None and off.any():
                bg_local = np.flatnonzero(off)
                bg_pos = positions[bg_local]
                bg_bytes = off[bg_local].astype(np.int64, copy=False)
                off_sum = int(off.sum())
                bg_count = len(bg_local)
            fold.append(
                (gid, False, count, hits, size_sum, g_sizes,
                 r_pos, r_bytes, r_sum, bg_pos, bg_bytes, off_sum,
                 bg_count)
            )
        self.fold = fold

        # Flat per-row lists for the contention walk (plain list
        # indexing beats any per-row tuple machinery in CPython; the
        # rarely-read columns are only indexed on the rows needing
        # them). Tick and write columns are shared from the trace plan.
        n = len(trace)
        stall_src = np.full(n, -1, dtype=np.int64)
        stall_alpha = np.zeros(n, dtype=np.int64)
        stall_beta = np.zeros(n, dtype=np.int64)
        for gid, recording in self.replay.items():
            positions = self.positions_of[gid]
            stall_src[positions] = recording.stall_src
            stall_alpha[positions] = recording.stall_alpha
            stall_beta[positions] = recording.stall_beta
        self.ticks_l = plan.ticks_l
        self.write_l = plan.write_list()
        self.gid_l = cols.gid.tolist()
        self.mlat_l = cols.mlat.tolist()
        self.refill_l = (cols.refill > 0).tolist()
        self.bg_l = (cols.offpath > 0).tolist()
        self.core_l = core.tolist()
        # Per-access DRAM channel column (memory-determined, so shared
        # across the group's members like the other outcome columns).
        dram = memory.dram
        if dram.channels == 1:
            self.dch_l = [0] * n
        else:
            self.dch_l = dram.channel_column(trace.addresses).tolist()
        self.rsrc_l = stall_src.tolist()
        self.ralpha_l = stall_alpha.tolist()
        self.rbeta_l = stall_beta.tolist()
        self.has_replay = bool(self.replay)
        self.write_mask = plan.write_mask
        #: Candidate-independent energy terms, memoized by the kernel's
        #: :func:`~repro.sim.kernels._accumulate_energy` on first use.
        self.energy_statics: dict = {}


# -- trace-plan registry ----------------------------------------------------

_PLANS: "OrderedDict[str, TracePlan]" = OrderedDict()


def trace_plan(trace: "Trace") -> TracePlan:
    """The trace's :class:`TracePlan`, from the process-wide registry."""
    fingerprint = trace.fingerprint()
    plan = _PLANS.get(fingerprint)
    if plan is not None:
        _PLANS.move_to_end(fingerprint)
        if obs.enabled():
            obs.incr("sim.batch.traceplan_hits")
        return plan
    plan = TracePlan(trace)
    _PLANS[fingerprint] = plan
    while len(_PLANS) > _TRACE_PLAN_LIMIT:
        _PLANS.popitem(last=False)
    if obs.enabled():
        obs.incr("sim.batch.traceplan_builds")
    return plan


def clear_plan_registry() -> None:
    """Drop every cached trace plan (tests and benchmarks)."""
    _PLANS.clear()


# -- group evaluation -------------------------------------------------------


def evaluate_group(
    trace: "Trace",
    jobs: "Sequence[_JobLike]",
    plan: TracePlan | None = None,
) -> tuple[list[SimulationResult], int]:
    """Evaluate one same-memory-signature candidate group.

    Every job must carry a memory architecture whose
    :meth:`~repro.apex.architectures.MemoryArchitecture.signature`
    equals the first job's (the callers group by exactly that key).
    Returns ``(results, delta_candidates)`` with ``results[i]``
    bit-identical to ``Simulator(trace, ...).run()`` of ``jobs[i]``;
    ``delta_candidates`` counts members served by the shared-column
    delta pass — 0 when the group fell back to independent runs (the
    reference engine was requested, or a member module neither batches
    nor replays).
    """
    jobs = list(jobs)
    if not jobs:
        return [], 0
    if plan is None:
        plan = trace_plan(trace)
    if reference_requested():
        return [_fallback_run(trace, job) for job in jobs], 0
    gplan = plan.group_plan(jobs[0].memory)
    if not gplan.replay_ok:
        return [_fallback_run(trace, job) for job in jobs], 0
    with obs.span("sim.batch.group"):
        results = [_evaluate_member(plan, gplan, job) for job in jobs]
    if obs.enabled():
        obs.incr("sim.batch.groups")
        obs.incr("sim.batch.module_column_group_size", len(jobs))
        obs.incr("sim.batch.delta_pass_candidates", len(jobs))
    return results, len(jobs)


def _fallback_run(trace: "Trace", job: "_JobLike") -> SimulationResult:
    """Independent per-candidate run (reference engine or opt-outs)."""
    return Simulator(
        trace,
        job.memory,
        job.connectivity,
        job.sampling,
        job.posted_writes,
    ).run()


def _evaluate_member(
    plan: TracePlan, gplan: GroupPlan, job: "_JobLike"
) -> SimulationResult:
    """One candidate's delta pass against the group's shared columns."""
    trace = plan.trace
    sim = Simulator(
        trace,
        job.memory,
        job.connectivity,
        job.sampling,
        job.posted_writes,
        validated=True,
    )
    groups, struct_group, _ = _build_groups(sim)
    if [group.target for group in groups] != gplan.targets:
        raise SimulationError(
            "batch group plan does not match the candidate's routing"
        )
    state = _RunState(sim)
    cols = _member_columns(sim, state, gplan, groups)
    group_positions = gplan.positions_of
    if not gplan.has_replay:
        _evaluate_columns(
            sim, state, groups, group_positions, cols, gplan.core,
            gplan.merged_dram, shared=gplan,
        )
        return sim._finalize(state)
    on_l, counted, measured = plan.sampling_columns(sim.sampling)
    latencies = _replay_pass(sim, state, groups, gplan, cols, on_l)
    if sim.posted_writes:
        eff = np.where(plan.write_mask, np.int64(1), latencies)
    else:
        eff = latencies
    _fold_measured(
        sim, state, groups, group_positions, cols, gplan.core, eff,
        counted, measured, shared=gplan,
    )
    if obs.enabled() and gplan.merged_dram:
        obs.incr("sim.kernel.openrow_merged_passes")
        obs.incr("sim.kernel.openrow_merged_accesses", gplan.merged_dram)
    return sim._finalize(state)


def _member_columns(
    sim: Simulator, state: "_RunState", gplan: GroupPlan, groups: list
) -> _Columns:
    """One member's column set over the group's shared arrays.

    The per-member remainder of :func:`_build_columns`: the shared,
    candidate-independent columns are taken from the group plan by
    reference, the counter folds replay the plan's precomputed per-gid
    amounts into this member's state, and only the connectivity-priced
    transfer columns are computed fresh.
    """
    cols = _Columns()
    cols.gid = gplan.cols_gid
    cols.row_batchable = gplan.cols_row_batchable
    cols.row_replay = gplan.cols_row_replay
    cols.uncached = gplan.cols_uncached
    cols.mlat = gplan.cols_mlat
    cols.refill = gplan.cols_refill
    cols.offpath = gplan.cols_offpath
    cols.dram_mask = gplan.cols_dram_mask

    n = len(gplan.cols_gid)
    conn = np.zeros(n, dtype=np.int64)
    occ = np.zeros(n, dtype=np.int64)
    dbase = np.zeros(n, dtype=np.int64)
    dbeats = np.zeros(n, dtype=np.int64)
    docc = np.zeros(n, dtype=np.int64)
    bgocc = np.zeros(n, dtype=np.int64)

    for (gid, uncached, count, hits, size_sum, g_sizes,
         r_pos, r_bytes, r_sum, bg_pos, bg_bytes, off_sum,
         bg_count) in gplan.fold:
        group = groups[gid]
        positions = gplan.positions_of[gid]
        cpu_state = group.cpu_state
        component = cpu_state.component
        if uncached:
            if component is not None:
                lat_col, occ_col = transfer_timing_columns(
                    component, g_sizes
                )
                dbase[positions] = component.base_latency
                dbeats[positions] = lat_col - component.base_latency
                occ[positions] = occ_col
            counts = state.module_counts[DRAM]
            counts[0] += count
            counts[2] += count
            state.misses += count
        else:
            counts = state.module_counts[group.target]
            counts[0] += count
            counts[1] += hits
            counts[2] += count - hits
            state.misses += count - hits
            if component is not None:
                conn_col, occ_col = transfer_timing_columns(
                    component, g_sizes
                )
                conn[positions] = conn_col
                occ[positions] = occ_col
            back_state = group.backing_state
            if back_state is not None:
                if r_pos is not None:
                    back_component = back_state.component
                    if back_component is not None:
                        lat_col, occ_col = transfer_timing_columns(
                            back_component, r_bytes
                        )
                        dbase[r_pos] = back_component.base_latency
                        dbeats[r_pos] = lat_col - back_component.base_latency
                        docc[r_pos] = occ_col
                    back_state.bytes_moved += r_sum
                    back_state.transactions += len(r_pos)
                if bg_pos is not None:
                    back_component = back_state.component
                    if back_component is not None:
                        _, occ_col = transfer_timing_columns(
                            back_component, bg_bytes
                        )
                        bgocc[bg_pos] = occ_col
                    back_state.bytes_moved += off_sum
                    back_state.background_transactions += bg_count
        cpu_state.bytes_moved += size_sum
        cpu_state.transactions += count

    cols.conn = conn
    cols.occ = occ
    cols.dbeats = dbeats
    cols.docc = docc
    cols.bgocc = bgocc
    if not gplan.has_replay:
        # Only the columnar tail reads the contention-free partial sum;
        # the replay walk rebuilds latencies row by row.
        cols.u_partial = conn + cols.mlat + dbase + dbeats
    return cols


def _replay_pass(
    sim: Simulator,
    state: "_RunState",
    groups: list,
    gplan: GroupPlan,
    cols,
    on_l: list | None,
) -> np.ndarray:
    """The candidate's contention/stall walk over the shared columns.

    Replicates the reference recurrence's update order for every row —
    uncached, batch-column, and replay rows alike, on- and off-window —
    reading module outcomes from the group plan and pricing each replay
    hit's stall from its affine term against this candidate's arrivals
    and backing delay. Returns the raw latency column (pre
    posted-write folding) and leaves ``state``/channel counters exactly
    as the reference loop would.
    """
    channels = sim._channels
    page_hit_latency = sim.memory.dram.page_hit_latency
    channel_of = {id(channel): i for i, channel in enumerate(channels)}
    ginfo = []
    binfo = []
    for gid, group in enumerate(groups):
        cpu = group.cpu_state
        component = cpu.component
        back = group.backing_state
        back_component = back.component if back is not None else None
        if group.module is None:
            kind = 0
        elif group.batchable:
            kind = 1
        else:
            kind = 2
        delay = (
            sim._dma_backing_delay(group.target, gplan.node_sizes.get(gid, 0))
            if kind == 2
            else 0
        )
        ginfo.append(
            (
                kind,
                component is not None,
                cpu.cluster_index,
                channel_of[id(cpu)],
                (
                    bool(component.split_transactions)
                    if component is not None
                    else False
                ),
                component.base_latency if component is not None else 0,
                (
                    0
                    if back is None
                    else (2 if back_component is not None else 1)
                ),
                delay,
            )
        )
        binfo.append(
            (
                back.cluster_index if back is not None else 0,
                channel_of[id(back)] if back is not None else 0,
                (
                    bool(back_component.split_transactions)
                    if back_component is not None
                    else False
                ),
                (
                    back_component.base_latency
                    if back_component is not None
                    else 0
                ),
            )
        )

    conn_l = cols.conn.tolist()
    occ_l = cols.occ.tolist()
    dbeats_l = cols.dbeats.tolist()
    docc_l = cols.docc.tolist()
    bgocc_l = cols.bgocc.tolist()
    ticks_l = gplan.ticks_l
    gid_l = gplan.gid_l
    mlat_l = gplan.mlat_l
    refill_l = gplan.refill_l
    bg_l = gplan.bg_l
    core_l = gplan.core_l
    dch_l = gplan.dch_l
    rsrc_l = gplan.rsrc_l
    ralpha_l = gplan.ralpha_l
    rbeta_l = gplan.rbeta_l
    posted = sim.posted_writes
    write_l = gplan.write_l if posted else None

    n = len(conn_l)
    lat_out = [0] * n
    arrivals: list[list[int]] = [[] for _ in groups]
    cluster_free = state.cluster_free
    dram_free = state.dram_free
    lag = state.lag
    waits = [0] * len(channels)
    busys = [0] * len(channels)
    cch = wait_acc = busy_acc = 0

    last_gid = -1
    if on_l is None:
        # Unsampled fast path: every access is on-window, so the
        # off-window branches (and the mask lookups) drop out entirely.
        for k in range(n):
            gid = gid_l[k]
            if gid != last_gid:
                # Routing constants change only on a group switch;
                # traces run the same structure for long stretches, so
                # the CPU channel's wait/busy sums also accumulate in
                # locals and flush on the switch.
                if wait_acc:
                    waits[cch] += wait_acc
                    wait_acc = 0
                if busy_acc:
                    busys[cch] += busy_acc
                    busy_acc = 0
                (
                    kind, has_comp, ci, cch, csplit, cbase, back_kind,
                    delay,
                ) = ginfo[gid]
                last_gid = gid
            issue = ticks_l[k] + lag
            if kind == 0:
                # Uncached: straight to DRAM over the off-chip wire.
                if not has_comp:
                    completion = issue + core_l[k]
                else:
                    free = cluster_free[ci]
                    start = issue if issue >= free else free
                    wait_acc += start - issue
                    command_done = start + cbase
                    dch = dch_l[k]
                    chfree = dram_free[dch]
                    dram_start = (
                        command_done
                        if command_done >= chfree
                        else chfree
                    )
                    core_k = core_l[k]
                    completion = dram_start + core_k + dbeats_l[k]
                    dram_free[dch] = dram_start + core_k
                    busy_until = (
                        start + occ_l[k] if csplit else completion
                    )
                    busy_acc += busy_until - start
                    if busy_until > cluster_free[ci]:
                        cluster_free[ci] = busy_until
            else:
                if has_comp:
                    free = cluster_free[ci]
                    start = issue if issue >= free else free
                    wait = start - issue
                else:
                    start = issue
                    wait = 0
                arrival = start + conn_l[k]
                response_latency = mlat_l[k]
                if kind == 2:
                    arr_list = arrivals[gid]
                    arr_list.append(arrival)
                    src = rsrc_l[k]
                    if src >= 0:
                        ready = (
                            arr_list[src]
                            + ralpha_l[k] * delay
                            + rbeta_l[k]
                        )
                        if ready > arrival:
                            response_latency += ready - arrival
                served = arrival + response_latency
                completion = served
                if back_kind and refill_l[k]:
                    if back_kind == 2:
                        bci, bch, bsplit, bbase = binfo[gid]
                        free = cluster_free[bci]
                        back_start = served if served >= free else free
                        waits[bch] += back_start - served
                        command_done = back_start + bbase
                        dch = dch_l[k]
                        chfree = dram_free[dch]
                        dram_start = (
                            command_done
                            if command_done >= chfree
                            else chfree
                        )
                        core_k = core_l[k]
                        completion = dram_start + core_k + dbeats_l[k]
                        dram_free[dch] = dram_start + core_k
                        busy_until = (
                            back_start + docc_l[k]
                            if bsplit
                            else completion
                        )
                        delta = busy_until - back_start
                        if delta > 0:
                            busys[bch] += delta
                        if busy_until > cluster_free[bci]:
                            cluster_free[bci] = busy_until
                    else:
                        completion = served + core_l[k]
                if back_kind == 2 and bg_l[k]:
                    bci, bch, bsplit, bbase = binfo[gid]
                    free = cluster_free[bci]
                    bg_start = served if served >= free else free
                    occupancy = bgocc_l[k]
                    busys[bch] += occupancy
                    cluster_free[bci] = bg_start + occupancy
                    dch = dch_l[k]
                    chfree = dram_free[dch]
                    dram_start = bg_start + bbase
                    if dram_start < chfree:
                        dram_start = chfree
                    dram_free[dch] = dram_start + page_hit_latency
                if has_comp:
                    # Reference busy rule: the bus is released after its
                    # occupancy on a split bus or a refill-free access,
                    # and held for the whole miss otherwise.
                    if csplit or completion == served:
                        busy_until = start + occ_l[k]
                    else:
                        busy_until = completion
                    busy_acc += busy_until - start
                    if busy_until > cluster_free[ci]:
                        cluster_free[ci] = busy_until
                wait_acc += wait

            lat = completion - issue
            if lat < 1:
                raise SimulationError(
                    f"access {k} completed in {lat} cycles"
                )
            lat_out[k] = lat
            if posted and write_l[k]:
                lat = 1
            lag += lat - 1
    else:
        for k in range(n):
            gid = gid_l[k]
            if gid != last_gid:
                if wait_acc:
                    waits[cch] += wait_acc
                    wait_acc = 0
                if busy_acc:
                    busys[cch] += busy_acc
                    busy_acc = 0
                (
                    kind, has_comp, ci, cch, csplit, cbase, back_kind,
                    delay,
                ) = ginfo[gid]
                last_gid = gid
            issue = ticks_l[k] + lag
            on = on_l[k]
            if kind == 0:
                # Uncached: straight to DRAM over the off-chip wire.
                if not has_comp:
                    completion = issue + core_l[k]
                else:
                    if on:
                        free = cluster_free[ci]
                        start = issue if issue >= free else free
                    else:
                        start = issue
                    wait_acc += start - issue
                    command_done = start + cbase
                    if on:
                        dch = dch_l[k]
                        chfree = dram_free[dch]
                        dram_start = (
                            command_done
                            if command_done >= chfree
                            else chfree
                        )
                    else:
                        dram_start = command_done
                    core_k = core_l[k]
                    completion = dram_start + core_k + dbeats_l[k]
                    if on:
                        dram_free[dch] = dram_start + core_k
                        busy_until = (
                            start + occ_l[k] if csplit else completion
                        )
                        busy_acc += busy_until - start
                        if busy_until > cluster_free[ci]:
                            cluster_free[ci] = busy_until
            else:
                if has_comp:
                    if on:
                        free = cluster_free[ci]
                        start = issue if issue >= free else free
                    else:
                        start = issue
                    wait = start - issue
                else:
                    start = issue
                    wait = 0
                arrival = start + conn_l[k]
                response_latency = mlat_l[k]
                if kind == 2:
                    arr_list = arrivals[gid]
                    arr_list.append(arrival)
                    src = rsrc_l[k]
                    if src >= 0:
                        ready = (
                            arr_list[src]
                            + ralpha_l[k] * delay
                            + rbeta_l[k]
                        )
                        if ready > arrival:
                            response_latency += ready - arrival
                served = arrival + response_latency
                completion = served
                if back_kind and refill_l[k]:
                    if back_kind == 2:
                        bci, bch, bsplit, bbase = binfo[gid]
                        if on:
                            free = cluster_free[bci]
                            back_start = (
                                served if served >= free else free
                            )
                        else:
                            back_start = served
                        waits[bch] += back_start - served
                        command_done = back_start + bbase
                        if on:
                            dch = dch_l[k]
                            chfree = dram_free[dch]
                            dram_start = (
                                command_done
                                if command_done >= chfree
                                else chfree
                            )
                        else:
                            dram_start = command_done
                        core_k = core_l[k]
                        completion = dram_start + core_k + dbeats_l[k]
                        if on:
                            dram_free[dch] = dram_start + core_k
                            busy_until = (
                                back_start + docc_l[k]
                                if bsplit
                                else completion
                            )
                            delta = busy_until - back_start
                            if delta > 0:
                                busys[bch] += delta
                            if busy_until > cluster_free[bci]:
                                cluster_free[bci] = busy_until
                    else:
                        completion = served + core_l[k]
                if back_kind == 2 and bg_l[k] and on:
                    bci, bch, bsplit, bbase = binfo[gid]
                    free = cluster_free[bci]
                    bg_start = served if served >= free else free
                    occupancy = bgocc_l[k]
                    busys[bch] += occupancy
                    cluster_free[bci] = bg_start + occupancy
                    dch = dch_l[k]
                    chfree = dram_free[dch]
                    dram_start = bg_start + bbase
                    if dram_start < chfree:
                        dram_start = chfree
                    dram_free[dch] = dram_start + page_hit_latency
                if has_comp and on:
                    # Reference busy rule: the bus is released after its
                    # occupancy on a split bus or a refill-free access,
                    # and held for the whole miss otherwise.
                    if csplit or completion == served:
                        busy_until = start + occ_l[k]
                    else:
                        busy_until = completion
                    busy_acc += busy_until - start
                    if busy_until > cluster_free[ci]:
                        cluster_free[ci] = busy_until
                wait_acc += wait

            lat = completion - issue
            if lat < 1:
                raise SimulationError(
                    f"access {k} completed in {lat} cycles"
                )
            lat_out[k] = lat
            if posted and write_l[k]:
                lat = 1
            lag += lat - 1

    if wait_acc:
        waits[cch] += wait_acc
    if busy_acc:
        busys[cch] += busy_acc
    state.lag = lag
    for index, wait in enumerate(waits):
        if wait:
            channels[index].wait_cycles += wait
    for index, busy in enumerate(busys):
        if busy:
            channels[index].busy_cycles += busy
    return np.array(lat_out, dtype=np.int64)
