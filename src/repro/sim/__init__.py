"""Trace-driven, cycle-approximate memory-system simulator.

Plays the role of the paper's SIMPRESS-based cycle-accurate memory
model: it runs a tagged trace through a memory architecture and a
connectivity architecture, modelling module hit/miss behaviour, bus
arbitration and occupancy, split transactions, pipelining, DRAM paging,
and per-access energy. It supports full simulation (the paper's Phase
II) and Kessler-style time-sampled estimation (used to guide the
search, on/off ratio 1/9).
"""

from repro.sim.metrics import ChannelTraffic, ModuleStats, SimulationResult
from repro.sim.sampling import SamplingConfig
from repro.sim.simulator import Simulator, simulate

__all__ = [
    "ChannelTraffic",
    "ModuleStats",
    "SamplingConfig",
    "SimulationResult",
    "Simulator",
    "simulate",
]
