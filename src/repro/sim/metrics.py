"""Simulation result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class ModuleStats:
    """Per-module outcome counters."""

    name: str
    accesses: int
    hits: int
    misses: int

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


@dataclass(frozen=True)
class StructLatency:
    """Per-data-structure latency contribution.

    ``mean_latency`` is over this structure's *measured* accesses;
    ``share`` is its fraction of all measured stall cycles — the
    "which structure hurts" diagnostic APEX module-matching acts on.
    """

    struct: str
    accesses: int
    mean_latency: float
    share: float


@dataclass(frozen=True)
class ChannelTraffic:
    """Bytes and transactions observed on one channel.

    ``transactions`` counts critical-path transfers (CPU accesses,
    refills); ``background_transactions`` counts off-critical-path
    traffic (writebacks, prefetches), which occupies bandwidth but does
    not stall the CPU directly.
    """

    channel_name: str
    transactions: int
    bytes_moved: int
    total_wait_cycles: int
    background_transactions: int = 0
    busy_cycles: int = 0

    @property
    def all_transactions(self) -> int:
        """Critical plus background transfers."""
        return self.transactions + self.background_transactions

    @property
    def mean_wait(self) -> float:
        """Average arbitration wait per transaction (contention signal)."""
        if not self.transactions:
            return 0.0
        return self.total_wait_cycles / self.transactions

    def utilization(self, total_cycles: int) -> float:
        """Fraction of the run this channel's component was busy.

        Shared components report the same busy time on every channel
        they carry (the bus is one resource); near-1.0 utilization
        flags the saturated designs the estimator penalizes.
        """
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one (trace, memory, connectivity) simulation.

    The three paper axes are :attr:`cost_gates` (memory modules +
    connectivity), :attr:`avg_latency` (average memory latency in
    cycles, "including the latency due to the memory modules, as well
    as the latency due to the connectivity"), and
    :attr:`avg_energy_nj` (average energy per access).
    """

    trace_name: str
    memory_name: str
    connectivity_name: str
    accesses: int
    sampled_accesses: int
    avg_latency: float
    total_cycles: int
    avg_energy_nj: float
    total_energy_nj: float
    miss_ratio: float
    cost_gates: float
    memory_cost_gates: float
    connectivity_cost_gates: float
    modules: Mapping[str, ModuleStats] = field(default_factory=dict)
    channels: Mapping[str, ChannelTraffic] = field(default_factory=dict)
    #: Average nJ/access by category: "modules", "dram", "connectivity".
    energy_breakdown: Mapping[str, float] = field(default_factory=dict)
    #: Per-data-structure latency contributions (measured accesses).
    structs: Mapping[str, StructLatency] = field(default_factory=dict)

    @property
    def objectives(self) -> tuple[float, float, float]:
        """(cost, performance, power) vector — all minimized."""
        return (self.cost_gates, self.avg_latency, self.avg_energy_nj)

    @property
    def connectivity_energy_fraction(self) -> float:
        """Share of per-access energy spent in the connectivity.

        The paper observes this is small ("the connectivity consumes a
        small amount of power compared to the memory modules").
        """
        if not self.avg_energy_nj:
            return 0.0
        return self.energy_breakdown.get("connectivity", 0.0) / self.avg_energy_nj

    def summary(self) -> str:
        """One-line report string."""
        return (
            f"{self.memory_name}/{self.connectivity_name}: "
            f"{self.cost_gates:,.0f} gates, "
            f"{self.avg_latency:.2f} cyc/access, "
            f"{self.avg_energy_nj:.2f} nJ/access, "
            f"miss {100 * self.miss_ratio:.1f}%"
        )
