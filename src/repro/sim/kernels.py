"""Columnar fast-path simulation kernel.

:meth:`repro.sim.simulator.Simulator.run` dispatches here by default.
The kernel produces **bit-identical** :class:`SimulationResult`\\ s to
the scalar reference loop (``run(reference=True)``) by exploiting the
structure time-sampling creates in the per-access recurrence:

* **On-window accesses** model contention — bus arbitration waits,
  DRAM banking against ``dram_free``, busy-cycle accounting — which
  serializes on the ``lag``/``cluster_free`` state. Those spans run a
  scalar loop, but one stripped of per-iteration overhead: trace
  columns converted to plain Python lists once (no numpy scalar
  boxing, no ``int()`` casts), ``AccessKind`` singletons indexed
  instead of constructed, sampling predicates materialized to masks,
  and attribute lookups hoisted to locals.
* **Off-window accesses** skip contention and statistics entirely, so
  an access's latency depends only on per-access columns and module
  state — not on ``lag`` or any channel timeline. Spans whose
  structures all route to batch-capable modules (direct-DRAM routes,
  SRAMs, stream buffers, caches — see
  :attr:`repro.memory.module.MemoryModule.supports_batch`) are
  evaluated columnar: one ``access_many`` call per module, DRAM
  open-row latencies for the merged refill/uncached stream in one
  vectorized pass, and the whole span's ``lag`` contribution reduced
  with one sum. Spans containing tick-dependent modules (the DMA
  engines model prefetch timeliness against issue time) fall back to
  the scalar loop, which keeps their state exact.

Because measured windows are a subset of on windows, off-window spans
never touch the energy or latency statistics — the batched work is
pure integer arithmetic and counter sums, which is why equality with
the reference loop is exact rather than approximate. The
golden-equivalence suite (``tests/test_sim_kernel_equivalence.py``)
asserts it across workloads, sampling, write models, and connectivity
modes.

Setting the environment variable :data:`REFERENCE_ENV`
(``REPRO_REFERENCE_SIM=1``) forces the reference loop everywhere — the
debugging escape hatch when bisecting a suspected kernel divergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.channels import DRAM
from repro.config import REFERENCE_SIM_ENV, current_settings
from repro.errors import SimulationError
from repro.memory.energy import dram_transaction_energy_nj
from repro.trace.events import AccessKind

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.sim.simulator import Simulator, _ChannelState, _RunState

#: Environment variable forcing the scalar reference loop.
REFERENCE_ENV = REFERENCE_SIM_ENV

#: Shortest off-window span worth dispatching to numpy; shorter runs
#: execute scalar (identical results, lower constant cost).
MIN_BATCH_SPAN = 64

#: AccessKind singletons indexed by trace kind code (no per-access
#: enum construction).
_KINDS = (AccessKind.READ, AccessKind.WRITE)

_WRITE_CODE = int(AccessKind.WRITE)


def reference_requested() -> bool:
    """Has the environment opted out of the kernel?"""
    return current_settings().reference_sim


# -- run plan ---------------------------------------------------------------


@dataclass
class _Group:
    """Batched evaluation context for one routing target."""

    target: str
    module: object  # MemoryModule | None for direct-DRAM routes
    cpu_state: "_ChannelState"
    backing_state: "_ChannelState | None"
    batchable: bool
    # Size→latency memo for the CPU-side component, private to this
    # run (a global id()-keyed cache would go stale when component
    # objects die and their ids are reused).
    timing_memo: dict


@dataclass
class _Plan:
    """Precomputed per-run columns shared by every span handler."""

    addresses: list
    sizes: list
    kinds: list
    struct_ids: list
    ticks: list
    on_list: list | None
    counted_list: list | None


def _build_groups(
    sim: "Simulator",
) -> tuple[list[_Group], np.ndarray, np.ndarray]:
    """One :class:`_Group` per routing target, plus per-struct maps.

    Returns ``(groups, struct_group, struct_batchable)`` where the two
    arrays are indexed by struct id.
    """
    channels = sim._channels
    groups: list[_Group] = []
    index_of: dict[str, int] = {}
    struct_group = np.empty(len(sim._routes), dtype=np.int64)
    struct_batchable = np.empty(len(sim._routes), dtype=bool)
    for struct_id, route in enumerate(sim._routes):
        gid = index_of.get(route.target)
        if gid is None:
            gid = len(groups)
            index_of[route.target] = gid
            module = route.module
            batchable = module is None or bool(
                getattr(type(module), "supports_batch", False)
            )
            groups.append(
                _Group(
                    target=route.target,
                    module=module,
                    cpu_state=channels[route.cpu_channel],
                    backing_state=(
                        channels[route.backing_channel]
                        if route.backing_channel >= 0
                        else None
                    ),
                    batchable=batchable,
                    timing_memo={},
                )
            )
        struct_group[struct_id] = gid
        struct_batchable[struct_id] = groups[gid].batchable
    return groups, struct_group, struct_batchable


def _batch_spans(fast: np.ndarray) -> list[tuple[int, int]]:
    """Maximal runs of ``fast`` at least :data:`MIN_BATCH_SPAN` long."""
    edges = np.flatnonzero(fast[1:] != fast[:-1]) + 1
    bounds = [0, *edges.tolist(), len(fast)]
    return [
        (bounds[k], bounds[k + 1])
        for k in range(len(bounds) - 1)
        if fast[bounds[k]] and bounds[k + 1] - bounds[k] >= MIN_BATCH_SPAN
    ]


# -- entry point ------------------------------------------------------------


def run_kernel(sim: "Simulator", state: "_RunState") -> None:
    """Execute the whole trace into ``state`` (kernel engine)."""
    trace = sim.trace
    n = len(trace)
    sampling = sim.sampling

    on_mask = counted_mask = None
    if sampling is not None:
        on_mask, counted_mask = sampling.masks(n)

    plan = _Plan(
        addresses=trace.addresses.tolist(),
        sizes=trace.sizes.tolist(),
        kinds=trace.kinds.tolist(),
        struct_ids=trace.struct_ids.tolist(),
        ticks=trace.ticks.tolist(),
        on_list=None if on_mask is None else on_mask.tolist(),
        counted_list=None if counted_mask is None else counted_mask.tolist(),
    )

    spans: list[tuple[int, int]] = []
    groups: list[_Group] = []
    struct_group: np.ndarray | None = None
    dram_batchable = bool(
        getattr(type(sim.memory.dram), "supports_batch", False)
    )
    if on_mask is not None and dram_batchable:
        groups, struct_group, struct_batchable = _build_groups(sim)
        fast = ~on_mask & struct_batchable[trace.struct_ids]
        if fast.any():
            spans = _batch_spans(fast)

    # Profiling accumulates in locals and flushes once per run, so the
    # per-span cost is an integer add and the disabled-mode cost is a
    # single boolean check after the run — never per-access work.
    scalar_spans = batched_spans = batched_accesses = 0
    cursor = 0
    for start, stop in spans:
        if cursor < start:
            _scalar_span(sim, state, plan, cursor, start)
            scalar_spans += 1
        _batch_span(sim, state, struct_group, groups, start, stop)
        batched_spans += 1
        batched_accesses += stop - start
        cursor = stop
    if cursor < n:
        _scalar_span(sim, state, plan, cursor, n)
        scalar_spans += 1
    if obs.enabled():
        obs.incr("sim.kernel.scalar_spans", scalar_spans)
        obs.incr("sim.kernel.batched_spans", batched_spans)
        obs.incr("sim.kernel.batched_accesses", batched_accesses)


# -- scalar spans -----------------------------------------------------------


def _scalar_span(
    sim: "Simulator",
    state: "_RunState",
    plan: _Plan,
    span_start: int,
    span_stop: int,
) -> None:
    """The reference recurrence over ``[span_start, span_stop)``.

    Operation-for-operation the loop of
    :meth:`Simulator._reference_loop` (same integer updates, same float
    accumulation order), re-expressed over the plan's pre-converted
    Python-list columns with per-iteration allocations removed.
    """
    channels = sim._channels
    routes = sim._routes
    posted_writes = sim.posted_writes
    dram_transaction = sim._dram_transaction
    background_traffic = sim._background_traffic
    transaction_energy = dram_transaction_energy_nj
    kind_table = _KINDS
    write_kind = AccessKind.WRITE

    addresses = plan.addresses
    sizes = plan.sizes
    kinds = plan.kinds
    struct_ids = plan.struct_ids
    ticks = plan.ticks
    on_list = plan.on_list
    counted_list = plan.counted_list
    no_sampling = on_list is None

    cluster_free = state.cluster_free
    dram_free = state.dram_free
    lag = state.lag
    measured = state.measured
    latency_sum = state.latency_sum
    energy_sum = state.energy_sum
    energy_modules = state.energy_modules
    energy_dram = state.energy_dram
    energy_wires = state.energy_wires
    misses = state.misses
    module_counts = state.module_counts
    struct_counts = state.struct_counts
    struct_latency = state.struct_latency

    for i in range(span_start, span_stop):
        address = addresses[i]
        size = sizes[i]
        kind = kind_table[kinds[i]]
        struct_id = struct_ids[i]
        route = routes[struct_id]
        issue = ticks[i] + lag
        if no_sampling:
            on_window = True
            counted = True
        else:
            on_window = on_list[i]
            counted = counted_list[i]

        cpu_state = channels[route.cpu_channel]
        energy = 0.0

        if route.module is None:
            # Uncached: straight to DRAM over the off-chip connection.
            completion, wait, dram_free, page_hit = dram_transaction(
                cpu_state, issue, address, size, cluster_free, dram_free,
                on_window,
            )
            misses += 1
            counts = module_counts[DRAM]
            counts[0] += 1
            counts[2] += 1
            if counted:
                dram_nj = transaction_energy(size, page_hit)
                wire_nj = size * cpu_state.energy_per_byte
                energy += dram_nj + wire_nj
                energy_dram += dram_nj
                energy_wires += wire_nj
            cpu_state.bytes_moved += size
            cpu_state.transactions += 1
            cpu_state.wait_cycles += wait
        else:
            component = cpu_state.component
            if component is None:
                start = issue
                wait = 0
                conn_latency = 0
                occupancy = 0
            else:
                free = cluster_free[cpu_state.cluster_index]
                start = issue if issue >= free else free
                if not on_window:
                    start = issue
                wait = start - issue
                timing = component.timing(size)
                conn_latency = timing.latency
                occupancy = timing.occupancy

            arrival = start + conn_latency
            response = route.module.access(address, size, kind, arrival)
            served = arrival + response.latency
            counts = module_counts[route.target]
            counts[0] += 1
            if response.hit:
                counts[1] += 1
            else:
                counts[2] += 1
                misses += 1

            completion = served
            backing = route.backing_channel
            if backing >= 0:
                back_state = channels[backing]
                if response.refill_bytes:
                    completion, back_wait, dram_free, page_hit = (
                        dram_transaction(
                            back_state, served, address,
                            response.refill_bytes, cluster_free,
                            dram_free, on_window,
                        )
                    )
                    back_state.bytes_moved += response.refill_bytes
                    back_state.transactions += 1
                    back_state.wait_cycles += back_wait
                    if counted:
                        dram_nj = transaction_energy(
                            response.refill_bytes, page_hit
                        )
                        wire_nj = (
                            response.refill_bytes * back_state.energy_per_byte
                        )
                        energy += dram_nj + wire_nj
                        energy_dram += dram_nj
                        energy_wires += wire_nj
                off_path = response.writeback_bytes + response.prefetch_bytes
                if off_path:
                    dram_free = background_traffic(
                        back_state, served, off_path, cluster_free,
                        dram_free, on_window,
                    )
                    if counted:
                        # Background prefetch/writeback bursts run in
                        # page mode.
                        dram_nj = transaction_energy(off_path, True)
                        wire_nj = off_path * back_state.energy_per_byte
                        energy += dram_nj + wire_nj
                        energy_dram += dram_nj
                        energy_wires += wire_nj

            if component is not None and on_window:
                cluster = cpu_state.cluster_index
                if component.split_transactions or completion == served:
                    busy_until = start + occupancy
                else:
                    # Non-split bus held for the whole miss.
                    busy_until = completion
                cpu_state.busy_cycles += max(0, busy_until - start)
                if busy_until > cluster_free[cluster]:
                    cluster_free[cluster] = busy_until
            cpu_state.bytes_moved += size
            cpu_state.transactions += 1
            cpu_state.wait_cycles += wait
            if counted:
                module_nj = route.module.access_energy_nj
                wire_nj = size * cpu_state.energy_per_byte
                energy += module_nj + wire_nj
                energy_modules += module_nj
                energy_wires += wire_nj

        latency = completion - issue
        if latency < 1:
            raise SimulationError(
                f"access {i} completed in {latency} cycles"
            )
        if posted_writes and kind == write_kind:
            # Posted write: the CPU moves on after one issue slot;
            # the transfer still happened on the channels above.
            latency = 1
        lag += latency - 1
        if counted:
            measured += 1
            latency_sum += latency
            energy_sum += energy
            struct_counts[struct_id] += 1
            struct_latency[struct_id] += latency

    state.dram_free = dram_free
    state.lag = lag
    state.measured = measured
    state.latency_sum = latency_sum
    state.energy_sum = energy_sum
    state.energy_modules = energy_modules
    state.energy_dram = energy_dram
    state.energy_wires = energy_wires
    state.misses = misses


# -- batched spans ----------------------------------------------------------


def _size_column(
    component, sizes: np.ndarray, attribute_cache: dict
) -> np.ndarray:
    """Per-access connection latencies over ``component`` (vectorized).

    Sizes take a handful of distinct values (1/2/4/8 plus line sizes),
    so the ``component.timing`` results are memoized per size and
    painted over the column by equality mask.
    """
    out = np.zeros(len(sizes), dtype=np.int64)
    for value in np.unique(sizes).tolist():
        latency = attribute_cache.get(value)
        if latency is None:
            latency = component.timing(value).latency
            attribute_cache[value] = latency
        out[sizes == value] = latency
    return out


def _beats_cycles(component, sizes: np.ndarray) -> np.ndarray:
    """Vectorized ``component.beats(size) * cycles_per_beat``."""
    sizes = sizes.astype(np.int64, copy=False)
    return (
        -(-sizes // component.width_bytes) * component.cycles_per_beat
    )


def _batch_span(
    sim: "Simulator",
    state: "_RunState",
    struct_group: np.ndarray,
    groups: list[_Group],
    span_start: int,
    span_stop: int,
) -> None:
    """One off-window span, evaluated columnar.

    Every access in the span is off-window (no contention, no energy,
    no measured statistics) and routes to a batch-capable target, so
    the span reduces to: per-module ``access_many`` calls, one merged
    DRAM open-row pass for refills and uncached accesses in trace
    order, counter sums, and a single ``lag`` update.
    """
    trace = sim.trace
    addresses = trace.addresses[span_start:span_stop]
    sizes = trace.sizes[span_start:span_stop]
    kinds = trace.kinds[span_start:span_stop]
    group_col = struct_group[trace.struct_ids[span_start:span_stop]]
    span_n = span_stop - span_start

    latencies = np.zeros(span_n, dtype=np.int64)
    dram_positions: list[np.ndarray] = []
    dram_addresses: list[np.ndarray] = []

    for gid in np.unique(group_col).tolist():
        group = groups[gid]
        positions = np.flatnonzero(group_col == gid)
        g_addresses = addresses[positions]
        g_sizes = sizes[positions]
        count = len(positions)
        cpu_state = group.cpu_state
        component = cpu_state.component

        if group.module is None:
            # Uncached: straight to DRAM over the off-chip connection.
            if component is None:
                base = np.zeros(count, dtype=np.int64)
            else:
                base = component.base_latency + _beats_cycles(
                    component, g_sizes
                )
            latencies[positions] = base
            dram_positions.append(positions)
            dram_addresses.append(g_addresses)
            counts = state.module_counts[DRAM]
            counts[0] += count
            counts[2] += count
            state.misses += count
        else:
            outcome = group.module.access_many(
                g_addresses, g_sizes, kinds[positions]
            )
            if component is None:
                lat = outcome.latency.astype(np.int64, copy=True)
            else:
                lat = outcome.latency + _size_column(
                    component, g_sizes, group.timing_memo
                )
            hits = int(np.count_nonzero(outcome.hit))
            counts = state.module_counts[group.target]
            counts[0] += count
            counts[1] += hits
            counts[2] += count - hits
            state.misses += count - hits

            back_state = group.backing_state
            if back_state is not None:
                refill = outcome.refill_bytes
                if refill is not None and refill.any():
                    refill_at = np.flatnonzero(refill)
                    refill_bytes = refill[refill_at]
                    back_component = back_state.component
                    if back_component is None:
                        extra = np.zeros(len(refill_at), dtype=np.int64)
                    else:
                        extra = back_component.base_latency + _beats_cycles(
                            back_component, refill_bytes
                        )
                    lat[refill_at] += extra
                    dram_positions.append(positions[refill_at])
                    dram_addresses.append(g_addresses[refill_at])
                    back_state.bytes_moved += int(refill_bytes.sum())
                    back_state.transactions += len(refill_at)
                writeback = outcome.writeback_bytes
                prefetch = outcome.prefetch_bytes
                if writeback is None:
                    off_path = prefetch
                elif prefetch is None:
                    off_path = writeback
                else:
                    off_path = writeback + prefetch
                if off_path is not None:
                    background = int(np.count_nonzero(off_path))
                    if background:
                        back_state.bytes_moved += int(off_path.sum())
                        back_state.background_transactions += background
            latencies[positions] = lat

        cpu_state.bytes_moved += int(g_sizes.sum())
        cpu_state.transactions += count

    if dram_positions:
        # One open-row pass over every DRAM transaction, in trace order
        # (module state only sees its own accesses, but the DRAM row
        # registers see the merged stream).
        merged_positions = np.concatenate(dram_positions)
        merged_addresses = np.concatenate(dram_addresses)
        order = np.argsort(merged_positions, kind="stable")
        core = sim.memory.dram.open_row_latencies(merged_addresses[order])
        latencies[merged_positions[order]] += core

    if latencies.min() < 1:
        # Match the reference loop: report the first offending access.
        bad = int(np.argmax(latencies < 1))
        raise SimulationError(
            f"access {span_start + bad} completed in "
            f"{int(latencies[bad])} cycles"
        )
    if sim.posted_writes:
        lag_deltas = np.where(kinds == _WRITE_CODE, 0, latencies - 1)
    else:
        lag_deltas = latencies - 1
    state.lag += int(lag_deltas.sum())
