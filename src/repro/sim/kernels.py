"""Columnar fast-path simulation kernel.

:meth:`repro.sim.simulator.Simulator.run` dispatches here by default.
The kernel produces **bit-identical** :class:`SimulationResult`\\ s to
the scalar reference loop (``run(reference=True)``) by exploiting the
structure of the per-access recurrence. Two engines share the work:

* **Columnar engine** (:func:`_run_columnar`) — when every routing
  target is batch-capable (direct-DRAM routes, SRAMs, stream buffers,
  caches — see :attr:`repro.memory.module.MemoryModule.supports_batch`)
  the whole run is evaluated as column passes: one ``access_many``
  call per module over its entire access subsequence, reservation-table
  transfer timing for whole size columns
  (:func:`repro.timing.batch.transfer_timing_columns`), and a single
  merged :meth:`~repro.memory.dram.Dram.open_row_latencies` pass over
  every DRAM transaction of the run in trace order. Under ideal
  connectivity no access ever touches shared timelines, so latency,
  ``lag``, per-struct statistics and the energy accounting all reduce
  to vector arithmetic — including unsampled million-access runs.
  With a connectivity architecture, contention (arbitration waits,
  ``cluster_free``/``dram_free`` timelines, busy cycles) is inherently
  serial for on-window accesses; those run a lean integer loop over
  the precomputed columns while everything around them stays batched.
* **Segmented engine** (:func:`_run_segmented`) — when a
  tick-dependent module is present (the DMA engines model prefetch
  timeliness against issue time) the run is advanced in chunked
  segments between synchronization points: batch-capable modules are
  still presented their whole access subsequence up front (their state
  cannot depend on the DMA's accesses), off-window spans free of
  tick-dependent routes are evaluated columnar, and the scalar residue
  walks the remaining accesses, advancing the DMA at its
  synchronization ticks through the allocation-free ``access_raw``
  tuple path while reading the batch-capable columns instead of
  re-simulating them.

Because measured windows are a subset of on windows, off-window spans
never touch the energy or latency statistics; where energy *is*
accumulated columnar, the vector expressions replicate the reference
loop's float accumulation order term by term (``np.cumsum`` is a
sequential left fold, and adding an exact ``0.0`` is the identity), so
equality with the reference loop is exact rather than approximate. The
golden-equivalence suite (``tests/test_sim_kernel_equivalence.py``)
asserts it across workloads, sampling, write models, and connectivity
modes.

Setting the environment variable :data:`REFERENCE_ENV`
(``REPRO_REFERENCE_SIM=1``) forces the reference loop everywhere — the
debugging escape hatch when bisecting a suspected kernel divergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.channels import DRAM
from repro.config import REFERENCE_SIM_ENV, current_settings
from repro.errors import SimulationError
from repro.memory.energy import (
    DRAM_ACTIVATE_NJ,
    DRAM_PAGE_ACCESS_NJ,
    DRAM_PER_BYTE_NJ,
    dram_transaction_energy_nj,
)
from repro.timing.batch import transfer_timing_columns
from repro.trace.events import AccessKind

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.sim.simulator import Simulator, _ChannelState, _RunState

#: Environment variable forcing the scalar reference loop.
REFERENCE_ENV = REFERENCE_SIM_ENV

#: Shortest off-window span worth dispatching to numpy; shorter runs
#: execute scalar (identical results, lower constant cost).
MIN_BATCH_SPAN = 64

#: AccessKind singletons indexed by trace kind code (no per-access
#: enum construction).
_KINDS = (AccessKind.READ, AccessKind.WRITE)

_WRITE_CODE = int(AccessKind.WRITE)


def reference_requested() -> bool:
    """Has the environment opted out of the kernel?"""
    return current_settings().reference_sim


# -- run plan ---------------------------------------------------------------


@dataclass
class _Group:
    """Batched evaluation context for one routing target."""

    target: str
    module: object  # MemoryModule | None for direct-DRAM routes
    cpu_state: "_ChannelState"
    backing_state: "_ChannelState | None"
    batchable: bool


@dataclass
class _Plan:
    """Per-run Python-list columns backing the scalar residue loop.

    Built lazily on the first scalar span (:func:`_ensure_plan`) and
    cached on :attr:`repro.sim.simulator._RunState.plan`, so the
    trace-column→list conversion happens at most once per run — and
    not at all for runs the columnar engine covers entirely.
    """

    addresses: list
    sizes: list
    kinds: list
    struct_ids: list
    ticks: list
    on_list: list | None
    counted_list: list | None
    gid: list
    mlat: list
    refill: list
    offpath: list
    conn: list
    occ: list
    ginfo: list


class _Columns:
    """Whole-run per-access columns for batch-capable routing groups.

    Rows routed to tick-dependent modules stay zero with
    ``row_batchable`` false; the scalar residue simulates them inline.
    """

    __slots__ = (
        "gid",
        "row_batchable",
        "row_replay",
        "uncached",
        "mlat",
        "refill",
        "offpath",
        "conn",
        "occ",
        "dbeats",
        "docc",
        "bgocc",
        "dram_mask",
        "u_partial",
    )


def _build_groups(
    sim: "Simulator",
) -> tuple[list[_Group], np.ndarray, np.ndarray]:
    """One :class:`_Group` per routing target, plus per-struct maps.

    Returns ``(groups, struct_group, struct_batchable)`` where the two
    arrays are indexed by struct id.
    """
    channels = sim._channels
    groups: list[_Group] = []
    index_of: dict[str, int] = {}
    struct_group = np.empty(len(sim._routes), dtype=np.int64)
    struct_batchable = np.empty(len(sim._routes), dtype=bool)
    for struct_id, route in enumerate(sim._routes):
        gid = index_of.get(route.target)
        if gid is None:
            gid = len(groups)
            index_of[route.target] = gid
            module = route.module
            batchable = module is None or bool(
                getattr(type(module), "supports_batch", False)
            )
            groups.append(
                _Group(
                    target=route.target,
                    module=module,
                    cpu_state=channels[route.cpu_channel],
                    backing_state=(
                        channels[route.backing_channel]
                        if route.backing_channel >= 0
                        else None
                    ),
                    batchable=batchable,
                )
            )
        struct_group[struct_id] = gid
        struct_batchable[struct_id] = groups[gid].batchable
    return groups, struct_group, struct_batchable


def _batch_spans(fast: np.ndarray) -> list[tuple[int, int]]:
    """Maximal runs of ``fast`` at least :data:`MIN_BATCH_SPAN` long."""
    edges = np.flatnonzero(fast[1:] != fast[:-1]) + 1
    bounds = [0, *edges.tolist(), len(fast)]
    return [
        (bounds[k], bounds[k + 1])
        for k in range(len(bounds) - 1)
        if fast[bounds[k]] and bounds[k + 1] - bounds[k] >= MIN_BATCH_SPAN
    ]


# -- entry point ------------------------------------------------------------


def run_kernel(sim: "Simulator", state: "_RunState") -> None:
    """Execute the whole trace into ``state`` (kernel engine)."""
    if not len(sim.trace):
        return
    groups, struct_group, struct_batchable = _build_groups(sim)
    dram_batchable = bool(
        getattr(type(sim.memory.dram), "supports_batch", False)
    )
    if dram_batchable and all(group.batchable for group in groups):
        _run_columnar(sim, state, groups, struct_group)
    else:
        _run_segmented(sim, state, groups, struct_group, dram_batchable)


# -- whole-run columns ------------------------------------------------------


def _build_columns(
    sim: "Simulator",
    state: "_RunState",
    groups: list[_Group],
    struct_group: np.ndarray,
    shared=None,
) -> tuple[_Columns, dict[int, np.ndarray]]:
    """Evaluate every batch-capable group over the whole run.

    Advances each batch-capable module with one ``access_many`` call
    over its entire access subsequence (exact by the
    :attr:`~repro.memory.module.MemoryModule.supports_batch` contract:
    modules only observe their own accesses, and their outcomes are
    tick-independent), prices CPU-side and backing transfers with the
    columnar reservation-table timing, and folds the
    timing-independent accounting — module hit/miss counts, channel
    bytes/transaction counters — into ``state`` immediately. Returns
    the columns plus each group's row positions.

    ``shared`` (a :class:`repro.sim.batch.GroupPlan`) supplies each
    module gid's outcome columns recorded once per candidate group, so
    no module is advanced here at all; replay-recorded gids are
    additionally flagged ``row_replay`` for the batch evaluator's
    contention walk (their latency column is the stall-free base — the
    walk adds each candidate's arrival-dependent stalls).
    """
    trace = sim.trace
    n = len(trace)
    gid_col = struct_group[trace.struct_ids]
    sizes64 = trace.sizes.astype(np.int64)
    addresses = trace.addresses
    kinds = trace.kinds

    cols = _Columns()
    cols.gid = gid_col
    cols.row_batchable = np.zeros(n, dtype=bool)
    cols.row_replay = np.zeros(n, dtype=bool)
    cols.uncached = np.zeros(n, dtype=bool)
    mlat = np.zeros(n, dtype=np.int64)
    refill = np.zeros(n, dtype=np.int64)
    offpath = np.zeros(n, dtype=np.int64)
    conn = np.zeros(n, dtype=np.int64)
    occ = np.zeros(n, dtype=np.int64)
    dbase = np.zeros(n, dtype=np.int64)
    dbeats = np.zeros(n, dtype=np.int64)
    docc = np.zeros(n, dtype=np.int64)
    bgocc = np.zeros(n, dtype=np.int64)
    group_positions: dict[int, np.ndarray] = {}

    for gid, group in enumerate(groups):
        from_shared = shared is not None and gid in shared.outcomes
        if not group.batchable and not from_shared:
            continue
        positions = np.flatnonzero(gid_col == gid)
        if not len(positions):
            continue
        group_positions[gid] = positions
        g_sizes = sizes64[positions]
        count = len(positions)
        cpu_state = group.cpu_state
        component = cpu_state.component
        cols.row_batchable[positions] = group.batchable
        if not group.batchable:
            cols.row_replay[positions] = True

        if group.module is None:
            # Uncached: straight to DRAM over the off-chip connection.
            cols.uncached[positions] = True
            if component is not None:
                lat_col, occ_col = transfer_timing_columns(
                    component, g_sizes
                )
                dbase[positions] = component.base_latency
                dbeats[positions] = lat_col - component.base_latency
                occ[positions] = occ_col
            counts = state.module_counts[DRAM]
            counts[0] += count
            counts[2] += count
            state.misses += count
        else:
            if from_shared:
                lat_col, refill_col, off, hits = shared.outcomes[gid]
            else:
                outcome = group.module.access_many(
                    addresses[positions], g_sizes, kinds[positions]
                )
                lat_col = outcome.latency
                hits = int(np.count_nonzero(outcome.hit))
                refill_col = outcome.refill_bytes
                writeback = outcome.writeback_bytes
                prefetch = outcome.prefetch_bytes
                if writeback is None:
                    off = prefetch
                elif prefetch is None:
                    off = writeback
                else:
                    off = writeback + prefetch
            mlat[positions] = lat_col
            counts = state.module_counts[group.target]
            counts[0] += count
            counts[1] += hits
            counts[2] += count - hits
            state.misses += count - hits
            if component is not None:
                conn_col, occ_col = transfer_timing_columns(
                    component, g_sizes
                )
                conn[positions] = conn_col
                occ[positions] = occ_col

            back_state = group.backing_state
            if back_state is not None:
                if refill_col is not None and refill_col.any():
                    refill[positions] = refill_col
                    r_local = np.flatnonzero(refill_col)
                    r_pos = positions[r_local]
                    r_bytes = refill_col[r_local].astype(
                        np.int64, copy=False
                    )
                    back_component = back_state.component
                    if back_component is not None:
                        lat_col, occ_col = transfer_timing_columns(
                            back_component, r_bytes
                        )
                        dbase[r_pos] = back_component.base_latency
                        dbeats[r_pos] = (
                            lat_col - back_component.base_latency
                        )
                        docc[r_pos] = occ_col
                    back_state.bytes_moved += int(r_bytes.sum())
                    back_state.transactions += len(r_pos)
                if off is not None and off.any():
                    offpath[positions] = off
                    bg_local = np.flatnonzero(off)
                    back_component = back_state.component
                    if back_component is not None:
                        _, occ_col = transfer_timing_columns(
                            back_component,
                            off[bg_local].astype(np.int64, copy=False),
                        )
                        bgocc[positions[bg_local]] = occ_col
                    back_state.bytes_moved += int(off.sum())
                    back_state.background_transactions += len(bg_local)

        cpu_state.bytes_moved += int(g_sizes.sum())
        cpu_state.transactions += count

    cols.mlat = mlat
    cols.refill = refill
    cols.offpath = offpath
    cols.conn = conn
    cols.occ = occ
    cols.dbeats = dbeats
    cols.docc = docc
    cols.bgocc = bgocc
    cols.dram_mask = cols.uncached | (refill > 0)
    # Contention-free latency: connection transfer + module latency +
    # backing command/data cycles. Adding the per-transaction DRAM core
    # latency (the merged open-row pass) completes it.
    cols.u_partial = conn + mlat + dbase + dbeats
    return cols, group_positions


# -- columnar engine --------------------------------------------------------


def _openrow_core(
    sim: "Simulator", cols: _Columns
) -> tuple[np.ndarray, int]:
    """The merged open-row pass: per-access DRAM core latency column.

    Each access produces at most one DRAM transaction (an uncached
    access or a refill), and background bursts never touch row state,
    so the run's DRAM stream is exactly the masked rows in trace order.
    Returns ``(core, transaction_count)``. The column depends only on
    the address column and the (memory-determined) transaction mask, so
    the batch evaluator shares one pass per candidate group.
    """
    core = np.zeros(len(cols.gid), dtype=np.int64)
    dram_idx = np.flatnonzero(cols.dram_mask)
    if len(dram_idx):
        core[dram_idx] = sim.memory.dram.open_row_latencies(
            sim.trace.addresses[dram_idx]
        )
    return core, int(len(dram_idx))


def _run_columnar(
    sim: "Simulator",
    state: "_RunState",
    groups: list[_Group],
    struct_group: np.ndarray,
) -> None:
    """Whole-run columnar evaluation (every target batch-capable)."""
    cols, group_positions = _build_columns(sim, state, groups, struct_group)
    core, merged_dram = _openrow_core(sim, cols)
    _evaluate_columns(
        sim, state, groups, group_positions, cols, core, merged_dram
    )


def _evaluate_columns(
    sim: "Simulator",
    state: "_RunState",
    groups: list[_Group],
    group_positions: dict[int, np.ndarray],
    cols: _Columns,
    core: np.ndarray,
    merged_dram: int,
    shared=None,
) -> None:
    """Fold prebuilt whole-run columns into ``state`` (no replay rows).

    The tail of the columnar engine after :func:`_build_columns` and
    the merged open-row pass — shared verbatim with the batch
    evaluator, whose candidates arrive here with group-shared columns
    and the group plan as ``shared`` (prebuilt walk lists and the
    candidate-independent energy terms).
    """
    trace = sim.trace
    n = len(trace)
    sampling = sim.sampling
    posted = sim.posted_writes

    u = cols.u_partial + core
    write_mask = (
        shared.write_mask if shared is not None
        else trace.kinds == _WRITE_CODE
    )

    if sim.connectivity is None:
        # Ideal connectivity: no channel ever has a component, so the
        # reference loop never touches cluster_free/dram_free or the
        # wait/busy counters — on- and off-window accesses both
        # complete in exactly their contention-free latency.
        latency = u
        if int(latency.min()) < 1:
            bad = int(np.argmax(latency < 1))
            raise SimulationError(
                f"access {bad} completed in {int(latency[bad])} cycles"
            )
        eff = np.where(write_mask, np.int64(1), latency) if posted else latency
        state.lag += int(eff.sum()) - n
    else:
        latency = u.copy()
        spans = (
            [(0, n, True)] if sampling is None else sampling.windows(n)
        )
        _contended_pass(
            sim, state, groups, cols, core, u, latency, spans, write_mask,
            shared=shared,
        )
        eff = np.where(write_mask, np.int64(1), latency) if posted else latency

    if sampling is None:
        counted = None
        measured = n
    else:
        _, counted_mask = sampling.masks(n)
        counted = counted_mask
        measured = int(np.count_nonzero(counted_mask))
    _fold_measured(
        sim, state, groups, group_positions, cols, core, eff, counted,
        measured, shared=shared,
    )

    if obs.enabled():
        if merged_dram:
            obs.incr("sim.kernel.openrow_merged_passes")
            obs.incr("sim.kernel.openrow_merged_accesses", merged_dram)
        n_on = n if sampling is None else int(
            np.count_nonzero(sampling.masks(n)[0])
        )
        obs.incr("sim.kernel.onwindow_batched", n_on)
        if sampling is None and sim.connectivity is None:
            obs.incr("sim.kernel.unsampled_batched_spans")


def _fold_measured(
    sim: "Simulator",
    state: "_RunState",
    groups: list[_Group],
    group_positions: dict[int, np.ndarray],
    cols: _Columns,
    core: np.ndarray,
    eff: np.ndarray,
    counted: np.ndarray | None,
    measured: int,
    shared=None,
) -> None:
    """Fold the measured-window statistics of an effective-latency column.

    The latency/struct/energy accounting tail shared by the columnar
    engine and the batch evaluator: ``eff`` is the whole-run effective
    (post-posted-write) latency column, ``counted`` the measured mask
    (``None`` for unsampled runs) and ``measured`` its popcount.
    ``shared`` is the batch evaluator's group plan, whose
    ``energy_statics`` dict memoizes the candidate-independent energy
    terms across the group's members.
    """
    trace = sim.trace
    state.measured += measured
    if not measured:
        return
    eff_counted = eff if counted is None else eff[counted]
    state.latency_sum += int(eff_counted.sum())
    struct_col = (
        trace.struct_ids if counted is None else trace.struct_ids[counted]
    )
    n_structs = len(sim._routes)
    counts = np.bincount(struct_col, minlength=n_structs)
    # float64 bincount weights stay exact below 2**53.
    totals = np.bincount(
        struct_col, weights=eff_counted, minlength=n_structs
    ).astype(np.int64)
    struct_counts = state.struct_counts
    struct_latency = state.struct_latency
    for struct_id, count in enumerate(counts.tolist()):
        if count:
            struct_counts[struct_id] += count
            struct_latency[struct_id] += int(totals[struct_id])
    _accumulate_energy(
        sim, state, groups, group_positions, cols, core, counted,
        sizes64=trace.sizes.astype(np.int64),
        statics=None if shared is None else shared.energy_statics,
    )


def _contended_pass(
    sim: "Simulator",
    state: "_RunState",
    groups: list[_Group],
    cols: _Columns,
    core: np.ndarray,
    u: np.ndarray,
    latency: np.ndarray,
    spans: list[tuple[int, int, bool]],
    write_mask: np.ndarray,
    shared=None,
) -> None:
    """Serial contention walk over the on-window accesses.

    Off-window spans reduce to slice sums of the contention-free
    latency column; on-window spans run a lean integer loop that
    replays the reference recurrence's state updates in the exact
    reference order over the precomputed columns (no ``timing()``
    calls, no module calls, no response allocations). Writes the
    on-window latencies into ``latency`` and the wait/busy sums into
    the channel states. On an unsampled whole-run walk, ``shared`` (a
    batch group plan) supplies the candidate-independent row lists
    prebuilt once per group, leaving only the connectivity-priced
    columns to convert per member.
    """
    trace = sim.trace
    channels = sim._channels
    posted = sim.posted_writes
    page_hit_latency = sim.memory.dram.page_hit_latency

    channel_of = {id(channel): i for i, channel in enumerate(channels)}
    ginfo = []
    for group in groups:
        cpu = group.cpu_state
        component = cpu.component
        back = group.backing_state
        back_component = back.component if back is not None else None
        ginfo.append(
            (
                group.module is None,
                cpu.cluster_index,
                channel_of[id(cpu)],
                bool(component.split_transactions),
                component.base_latency,
                back.cluster_index if back is not None else 0,
                channel_of[id(back)] if back is not None else 0,
                (
                    bool(back_component.split_transactions)
                    if back_component is not None
                    else False
                ),
                (
                    back_component.base_latency
                    if back_component is not None
                    else 0
                ),
            )
        )

    if len(spans) == 1 and spans[0][2]:
        on_idx = None
        sel: slice | np.ndarray = slice(None)
    else:
        on_mask = np.zeros(len(u), dtype=bool)
        for span_start, span_stop, on in spans:
            if on:
                on_mask[span_start:span_stop] = True
        on_idx = np.flatnonzero(on_mask)
        sel = on_idx

    # No replay rows here, so a hit's arrival tick is never needed on
    # its own — the wire and module latencies fold into one column.
    serve_l = (cols.conn + cols.mlat)[sel].tolist()
    occ_l = cols.occ[sel].tolist()
    dbeats_l = cols.dbeats[sel].tolist()
    docc_l = cols.docc[sel].tolist()
    bgocc_l = cols.bgocc[sel].tolist()
    if on_idx is None and shared is not None:
        ticks_l = shared.ticks_l
        gid_l = shared.gid_l
        refill_l = shared.refill_l
        core_l = shared.core_l
        bg_l = shared.bg_l
        dch_l = shared.dch_l
        write_l = shared.write_l if posted else None
    else:
        ticks_l = trace.ticks[sel].tolist()
        gid_l = cols.gid[sel].tolist()
        refill_l = (cols.refill[sel] > 0).tolist()
        core_l = core[sel].tolist()
        bg_l = (cols.offpath[sel] > 0).tolist()
        dram = sim.memory.dram
        if dram.channels == 1:
            dch_l = [0] * len(ticks_l)
        else:
            dch_l = dram.channel_column(trace.addresses)[sel].tolist()
        write_l = write_mask[sel].tolist() if posted else None
    lat_out = [0] * len(ticks_l)

    cluster_free = state.cluster_free
    dram_free = state.dram_free
    lag = state.lag
    waits = [0] * len(channels)
    busys = [0] * len(channels)
    cch = wait_acc = busy_acc = 0

    k = 0
    last_gid = -1
    for span_start, span_stop, on in spans:
        if not on:
            segment = u[span_start:span_stop]
            if int(segment.min()) < 1:
                bad = int(np.argmax(segment < 1))
                raise SimulationError(
                    f"access {span_start + bad} completed in "
                    f"{int(segment[bad])} cycles"
                )
            if posted:
                eff = np.where(
                    write_mask[span_start:span_stop],
                    np.int64(1),
                    segment,
                )
                lag += int(eff.sum()) - (span_stop - span_start)
            else:
                lag += int(segment.sum()) - (span_stop - span_start)
            continue
        stop_k = k + (span_stop - span_start)
        for k in range(k, stop_k):
            gid = gid_l[k]
            if gid != last_gid:
                # Routing constants change only on a group switch;
                # traces run the same structure for long stretches, so
                # the CPU channel's wait/busy sums also accumulate in
                # locals and flush on the switch.
                if wait_acc:
                    waits[cch] += wait_acc
                    wait_acc = 0
                if busy_acc:
                    busys[cch] += busy_acc
                    busy_acc = 0
                (
                    is_uncached,
                    ci,
                    cch,
                    csplit,
                    cbase,
                    bci,
                    bch,
                    bsplit,
                    bbase,
                ) = ginfo[gid]
                last_gid = gid
            issue = ticks_l[k] + lag
            if is_uncached:
                free = cluster_free[ci]
                start = issue if issue >= free else free
                wait_acc += start - issue
                command_done = start + cbase
                dch = dch_l[k]
                chfree = dram_free[dch]
                dram_start = (
                    command_done if command_done >= chfree else chfree
                )
                core_k = core_l[k]
                completion = dram_start + core_k + dbeats_l[k]
                dram_free[dch] = dram_start + core_k
                busy_until = start + occ_l[k] if csplit else completion
                busy_acc += busy_until - start
                if busy_until > cluster_free[ci]:
                    cluster_free[ci] = busy_until
            else:
                free = cluster_free[ci]
                start = issue if issue >= free else free
                wait = start - issue
                served = start + serve_l[k]
                completion = served
                has_refill = refill_l[k]
                if has_refill:
                    free = cluster_free[bci]
                    back_start = served if served >= free else free
                    waits[bch] += back_start - served
                    command_done = back_start + bbase
                    dch = dch_l[k]
                    chfree = dram_free[dch]
                    dram_start = (
                        command_done
                        if command_done >= chfree
                        else chfree
                    )
                    core_k = core_l[k]
                    completion = dram_start + core_k + dbeats_l[k]
                    dram_free[dch] = dram_start + core_k
                    busy_until = (
                        back_start + docc_l[k] if bsplit else completion
                    )
                    delta = busy_until - back_start
                    if delta > 0:
                        busys[bch] += delta
                    if busy_until > cluster_free[bci]:
                        cluster_free[bci] = busy_until
                if bg_l[k]:
                    free = cluster_free[bci]
                    bg_start = served if served >= free else free
                    occupancy = bgocc_l[k]
                    busys[bch] += occupancy
                    cluster_free[bci] = bg_start + occupancy
                    dram_start = bg_start + bbase
                    dch = dch_l[k]
                    chfree = dram_free[dch]
                    if dram_start < chfree:
                        dram_start = chfree
                    dram_free[dch] = dram_start + page_hit_latency
                # Non-split bus held for the whole miss (the reference
                # busy rule: completion == served exactly when there
                # was no refill).
                if csplit or not has_refill:
                    busy_until = start + occ_l[k]
                else:
                    busy_until = completion
                busy_acc += busy_until - start
                if busy_until > cluster_free[ci]:
                    cluster_free[ci] = busy_until
                wait_acc += wait

            lat = completion - issue
            if lat < 1:
                index = k if on_idx is None else int(on_idx[k])
                raise SimulationError(
                    f"access {index} completed in {lat} cycles"
                )
            lat_out[k] = lat
            if posted and write_l[k]:
                lat = 1
            lag += lat - 1
        k = stop_k

    if wait_acc:
        waits[cch] += wait_acc
    if busy_acc:
        busys[cch] += busy_acc
    state.lag = lag
    for i, wait in enumerate(waits):
        if wait:
            channels[i].wait_cycles += wait
    for i, busy in enumerate(busys):
        if busy:
            channels[i].busy_cycles += busy
    lat_column = np.array(lat_out, dtype=np.int64)
    if on_idx is None:
        latency[:] = lat_column
    else:
        latency[on_idx] = lat_column


def _accumulate_energy(
    sim: "Simulator",
    state: "_RunState",
    groups: list[_Group],
    group_positions: dict[int, np.ndarray],
    cols: _Columns,
    core: np.ndarray,
    counted: np.ndarray | None,
    sizes64: np.ndarray,
    statics: dict | None = None,
) -> None:
    """Vectorized energy accounting over the measured accesses.

    Replicates the reference loop's accumulation order exactly: each
    access's energy is the reference's nested pair sums (absent terms
    contribute an exact ``0.0``, the float identity), and the running
    totals are sequential left folds (``np.cumsum``) over the counted
    rows, with the per-transaction DRAM/wire terms interleaved in
    reference order via row-major ravels.

    Only the wire terms depend on the candidate (per-byte channel
    energies follow the connectivity assignment); the DRAM and module
    terms follow the memory architecture alone, so the batch evaluator
    passes a per-group ``statics`` dict that memoizes them — same
    expressions, same floats — across the group's members.
    """
    n = len(core)
    cpu_epb = np.zeros(n, dtype=np.float64)
    back_epb = np.zeros(n, dtype=np.float64)
    if statics is not None and "e_dram1" in statics:
        for gid, positions in group_positions.items():
            group = groups[gid]
            cpu_epb[positions] = group.cpu_state.energy_per_byte
            if group.backing_state is not None:
                back_epb[positions] = group.backing_state.energy_per_byte
        dram_bytes = statics["dram_bytes"]
        e_dram1 = statics["e_dram1"]
        e_dram2 = statics["e_dram2"]
        e_module = statics["e_module"]
    else:
        module_nj = np.zeros(n, dtype=np.float64)
        for gid, positions in group_positions.items():
            group = groups[gid]
            cpu_epb[positions] = group.cpu_state.energy_per_byte
            if group.backing_state is not None:
                back_epb[positions] = group.backing_state.energy_per_byte
            if group.module is not None:
                module_nj[positions] = group.module.access_energy_nj
        page_hit = core == sim.memory.dram.page_hit_latency
        dram_bytes = np.where(cols.uncached, sizes64, cols.refill)
        e_dram1 = DRAM_PAGE_ACCESS_NJ + DRAM_PER_BYTE_NJ * dram_bytes
        e_dram1 = np.where(page_hit, e_dram1, e_dram1 + DRAM_ACTIVATE_NJ)
        e_dram1 = np.where(cols.dram_mask, e_dram1, 0.0)
        background = cols.offpath > 0
        e_dram2 = np.where(
            background,
            DRAM_PAGE_ACCESS_NJ + DRAM_PER_BYTE_NJ * cols.offpath,
            0.0,
        )
        e_module = np.where(cols.uncached, 0.0, module_nj)
        if statics is not None:
            statics["dram_bytes"] = dram_bytes
            statics["e_dram1"] = e_dram1
            statics["e_dram2"] = e_dram2
            statics["e_module"] = e_module

    e_wire1 = dram_bytes * np.where(cols.uncached, cpu_epb, back_epb)
    e_wire2 = cols.offpath * back_epb
    e_wire3 = np.where(cols.uncached, 0.0, sizes64 * cpu_epb)
    # Reference per-access order: (refill-or-uncached DRAM + wire) then
    # (background DRAM + wire) then (module + CPU wire); zero terms are
    # exact identities, so one expression covers every path.
    energy = ((e_dram1 + e_wire1) + (e_dram2 + e_wire2)) + (
        e_module + e_wire3
    )

    wire_triples = np.column_stack((e_wire1, e_wire2, e_wire3))
    if counted is not None:
        energy = energy[counted]
        e_module = e_module[counted]
        dram_pairs = np.column_stack((e_dram1, e_dram2))[counted]
        wire_triples = wire_triples[counted]
        state.energy_sum += float(np.cumsum(energy)[-1])
        state.energy_modules += float(np.cumsum(e_module)[-1])
        state.energy_dram += float(np.cumsum(dram_pairs.ravel())[-1])
        state.energy_wires += float(np.cumsum(wire_triples.ravel())[-1])
        return
    state.energy_sum += float(np.cumsum(energy)[-1])
    if statics is not None and "module_sum" in statics:
        state.energy_modules += statics["module_sum"]
        state.energy_dram += statics["dram_sum"]
    else:
        module_sum = float(np.cumsum(e_module)[-1])
        dram_sum = float(
            np.cumsum(np.column_stack((e_dram1, e_dram2)).ravel())[-1]
        )
        if statics is not None:
            statics["module_sum"] = module_sum
            statics["dram_sum"] = dram_sum
        state.energy_modules += module_sum
        state.energy_dram += dram_sum
    state.energy_wires += float(np.cumsum(wire_triples.ravel())[-1])


# -- segmented engine -------------------------------------------------------


def _run_segmented(
    sim: "Simulator",
    state: "_RunState",
    groups: list[_Group],
    struct_group: np.ndarray,
    dram_batchable: bool,
) -> None:
    """Chunked advance around tick-dependent modules.

    Batch-capable modules are still evaluated whole-run
    (:func:`_build_columns`); the trace is then walked in order,
    dispatching off-window spans free of tick-dependent routes to the
    columnar :func:`_batch_span` and everything else to the scalar
    residue, which advances the tick-dependent modules at their
    synchronization points.
    """
    trace = sim.trace
    n = len(trace)
    sampling = sim.sampling
    on_mask = counted_mask = None
    if sampling is not None:
        on_mask, counted_mask = sampling.masks(n)

    cols, _ = _build_columns(sim, state, groups, struct_group)

    spans: list[tuple[int, int]] = []
    if on_mask is not None and dram_batchable:
        fast = ~on_mask & cols.row_batchable
        if fast.any():
            spans = _batch_spans(fast)

    # Profiling accumulates in locals and flushes once per run, so the
    # per-span cost is an integer add and the disabled-mode cost is a
    # single boolean check after the run — never per-access work.
    scalar_spans = batched_spans = batched_accesses = merged_dram = 0
    cursor = 0
    for start, stop in spans:
        if cursor < start:
            plan = _ensure_plan(sim, state, cols, groups, on_mask, counted_mask)
            _scalar_span(sim, state, plan, cursor, start)
            scalar_spans += 1
        merged_dram += _batch_span(sim, state, cols, start, stop)
        batched_spans += 1
        batched_accesses += stop - start
        cursor = stop
    if cursor < n:
        plan = _ensure_plan(sim, state, cols, groups, on_mask, counted_mask)
        _scalar_span(sim, state, plan, cursor, n)
        scalar_spans += 1
    if obs.enabled():
        obs.incr("sim.kernel.scalar_spans", scalar_spans)
        obs.incr("sim.kernel.batched_spans", batched_spans)
        obs.incr("sim.kernel.batched_accesses", batched_accesses)
        if batched_spans:
            obs.incr("sim.kernel.openrow_merged_passes", batched_spans)
            obs.incr("sim.kernel.openrow_merged_accesses", merged_dram)
        if on_mask is None:
            onwindow = int(np.count_nonzero(cols.row_batchable))
        else:
            onwindow = int(np.count_nonzero(on_mask & cols.row_batchable))
        obs.incr("sim.kernel.onwindow_batched", onwindow)


def _raw_adapter(module):
    """``access_raw``-shaped wrapper for modules without the tuple path."""

    def call(address, size, kind, tick):
        response = module.access(address, size, kind, tick)
        return (
            response.hit,
            response.latency,
            response.refill_bytes,
            response.writeback_bytes,
            response.prefetch_bytes,
        )

    return call


def _ensure_plan(
    sim: "Simulator",
    state: "_RunState",
    cols: _Columns,
    groups: list[_Group],
    on_mask: np.ndarray | None,
    counted_mask: np.ndarray | None,
) -> _Plan:
    """The scalar residue's list columns, built once per run."""
    plan = state.plan
    if plan is not None:
        return plan
    trace = sim.trace
    ginfo = []
    for group in groups:
        module = group.module
        if module is None or group.batchable:
            access_call = None
        else:
            access_call = getattr(module, "access_raw", None)
            if access_call is None:
                access_call = _raw_adapter(module)
        ginfo.append(
            (
                module is None,
                group.batchable,
                group.cpu_state,
                group.backing_state,
                access_call,
                0.0 if module is None else module.access_energy_nj,
                state.module_counts[group.target],
            )
        )
    plan = _Plan(
        addresses=trace.addresses.tolist(),
        sizes=trace.sizes.tolist(),
        kinds=trace.kinds.tolist(),
        struct_ids=trace.struct_ids.tolist(),
        ticks=trace.ticks.tolist(),
        on_list=None if on_mask is None else on_mask.tolist(),
        counted_list=None if counted_mask is None else counted_mask.tolist(),
        gid=cols.gid.tolist(),
        mlat=cols.mlat.tolist(),
        refill=cols.refill.tolist(),
        offpath=cols.offpath.tolist(),
        conn=cols.conn.tolist(),
        occ=cols.occ.tolist(),
        ginfo=ginfo,
    )
    state.plan = plan
    return plan


def _scalar_span(
    sim: "Simulator",
    state: "_RunState",
    plan: _Plan,
    span_start: int,
    span_stop: int,
) -> None:
    """The reference recurrence over ``[span_start, span_stop)``.

    Operation-for-operation the loop of
    :meth:`Simulator._reference_loop` (same integer updates, same float
    accumulation order), re-expressed over the plan's pre-converted
    Python-list columns. Rows routed to batch-capable modules read
    their module outcome and transfer timing from the whole-run
    columns (their counters were folded in by
    :func:`_build_columns`); rows routed to tick-dependent modules are
    the synchronization points — they advance the module inline
    through the allocation-free ``access_raw`` tuple path with full
    reference accounting.
    """
    posted_writes = sim.posted_writes
    dram_transaction = sim._dram_transaction
    background_traffic = sim._background_traffic
    background_contention = sim._background_contention
    transaction_energy = dram_transaction_energy_nj
    kind_table = _KINDS
    write_code = _WRITE_CODE

    addresses = plan.addresses
    sizes = plan.sizes
    kinds = plan.kinds
    struct_ids = plan.struct_ids
    ticks = plan.ticks
    on_list = plan.on_list
    counted_list = plan.counted_list
    no_sampling = on_list is None
    gid_l = plan.gid
    mlat_l = plan.mlat
    refill_l = plan.refill
    offpath_l = plan.offpath
    conn_l = plan.conn
    occ_l = plan.occ
    ginfo = plan.ginfo

    cluster_free = state.cluster_free
    dram_free = state.dram_free
    lag = state.lag
    measured = state.measured
    latency_sum = state.latency_sum
    energy_sum = state.energy_sum
    energy_modules = state.energy_modules
    energy_dram = state.energy_dram
    energy_wires = state.energy_wires
    misses = state.misses
    struct_counts = state.struct_counts
    struct_latency = state.struct_latency

    for i in range(span_start, span_stop):
        size = sizes[i]
        struct_id = struct_ids[i]
        issue = ticks[i] + lag
        if no_sampling:
            on_window = True
            counted = True
        else:
            on_window = on_list[i]
            counted = counted_list[i]
        (
            is_uncached,
            is_batchable,
            cpu_state,
            back_state,
            access_call,
            module_nj,
            counts,
        ) = ginfo[gid_l[i]]
        energy = 0.0

        if is_uncached:
            # Uncached: straight to DRAM over the off-chip connection
            # (counts and traffic totals already folded in columnar).
            completion, wait, page_hit = dram_transaction(
                cpu_state, issue, addresses[i], size, cluster_free,
                dram_free, on_window,
            )
            if counted:
                dram_nj = transaction_energy(size, page_hit)
                wire_nj = size * cpu_state.energy_per_byte
                energy += dram_nj + wire_nj
                energy_dram += dram_nj
                energy_wires += wire_nj
            cpu_state.wait_cycles += wait
        elif is_batchable:
            component = cpu_state.component
            if component is None:
                start = issue
                wait = 0
            else:
                free = cluster_free[cpu_state.cluster_index]
                start = issue if issue >= free else free
                if not on_window:
                    start = issue
                wait = start - issue
            served = start + conn_l[i] + mlat_l[i]
            completion = served
            refill = refill_l[i]
            if refill:
                completion, back_wait, page_hit = (
                    dram_transaction(
                        back_state, served, addresses[i], refill,
                        cluster_free, dram_free, on_window,
                    )
                )
                back_state.wait_cycles += back_wait
                if counted:
                    dram_nj = transaction_energy(refill, page_hit)
                    wire_nj = refill * back_state.energy_per_byte
                    energy += dram_nj + wire_nj
                    energy_dram += dram_nj
                    energy_wires += wire_nj
            off_path = offpath_l[i]
            if off_path:
                background_contention(
                    back_state, served, addresses[i], off_path,
                    cluster_free, dram_free, on_window,
                )
                if counted:
                    # Background prefetch/writeback bursts run in
                    # page mode.
                    dram_nj = transaction_energy(off_path, True)
                    wire_nj = off_path * back_state.energy_per_byte
                    energy += dram_nj + wire_nj
                    energy_dram += dram_nj
                    energy_wires += wire_nj
            if component is not None and on_window:
                cluster = cpu_state.cluster_index
                if component.split_transactions or completion == served:
                    busy_until = start + occ_l[i]
                else:
                    # Non-split bus held for the whole miss.
                    busy_until = completion
                cpu_state.busy_cycles += max(0, busy_until - start)
                if busy_until > cluster_free[cluster]:
                    cluster_free[cluster] = busy_until
            cpu_state.wait_cycles += wait
            if counted:
                wire_nj = size * cpu_state.energy_per_byte
                energy += module_nj + wire_nj
                energy_modules += module_nj
                energy_wires += wire_nj
        else:
            # Tick-dependent module: synchronization point.
            component = cpu_state.component
            if component is None:
                start = issue
                wait = 0
                conn_latency = 0
                occupancy = 0
            else:
                free = cluster_free[cpu_state.cluster_index]
                start = issue if issue >= free else free
                if not on_window:
                    start = issue
                wait = start - issue
                timing = component.timing(size)
                conn_latency = timing.latency
                occupancy = timing.occupancy

            arrival = start + conn_latency
            hit, response_latency, refill, writeback, prefetch = (
                access_call(
                    addresses[i], size, kind_table[kinds[i]], arrival
                )
            )
            served = arrival + response_latency
            counts[0] += 1
            if hit:
                counts[1] += 1
            else:
                counts[2] += 1
                misses += 1

            completion = served
            if back_state is not None:
                if refill:
                    completion, back_wait, page_hit = (
                        dram_transaction(
                            back_state, served, addresses[i], refill,
                            cluster_free, dram_free, on_window,
                        )
                    )
                    back_state.bytes_moved += refill
                    back_state.transactions += 1
                    back_state.wait_cycles += back_wait
                    if counted:
                        dram_nj = transaction_energy(refill, page_hit)
                        wire_nj = refill * back_state.energy_per_byte
                        energy += dram_nj + wire_nj
                        energy_dram += dram_nj
                        energy_wires += wire_nj
                off_path = writeback + prefetch
                if off_path:
                    background_traffic(
                        back_state, served, addresses[i], off_path,
                        cluster_free, dram_free, on_window,
                    )
                    if counted:
                        # Background prefetch/writeback bursts run in
                        # page mode.
                        dram_nj = transaction_energy(off_path, True)
                        wire_nj = off_path * back_state.energy_per_byte
                        energy += dram_nj + wire_nj
                        energy_dram += dram_nj
                        energy_wires += wire_nj

            if component is not None and on_window:
                cluster = cpu_state.cluster_index
                if component.split_transactions or completion == served:
                    busy_until = start + occupancy
                else:
                    # Non-split bus held for the whole miss.
                    busy_until = completion
                cpu_state.busy_cycles += max(0, busy_until - start)
                if busy_until > cluster_free[cluster]:
                    cluster_free[cluster] = busy_until
            cpu_state.bytes_moved += size
            cpu_state.transactions += 1
            cpu_state.wait_cycles += wait
            if counted:
                wire_nj = size * cpu_state.energy_per_byte
                energy += module_nj + wire_nj
                energy_modules += module_nj
                energy_wires += wire_nj

        latency = completion - issue
        if latency < 1:
            raise SimulationError(
                f"access {i} completed in {latency} cycles"
            )
        if posted_writes and kinds[i] == write_code:
            # Posted write: the CPU moves on after one issue slot;
            # the transfer still happened on the channels above.
            latency = 1
        lag += latency - 1
        if counted:
            measured += 1
            latency_sum += latency
            energy_sum += energy
            struct_counts[struct_id] += 1
            struct_latency[struct_id] += latency

    state.lag = lag
    state.measured = measured
    state.latency_sum = latency_sum
    state.energy_sum = energy_sum
    state.energy_modules = energy_modules
    state.energy_dram = energy_dram
    state.energy_wires = energy_wires
    state.misses = misses


def _batch_span(
    sim: "Simulator",
    state: "_RunState",
    cols: _Columns,
    span_start: int,
    span_stop: int,
) -> int:
    """One off-window span of batch-capable rows, evaluated columnar.

    Every access in the span is off-window (no contention, no energy,
    no measured statistics) and its module outcome is already in the
    whole-run columns, so the span reduces to one DRAM open-row pass
    over its transactions (already in trace order — each access makes
    at most one) and a single ``lag`` update. Returns the number of
    DRAM transactions for the profiling counters.
    """
    latencies = cols.u_partial[span_start:span_stop].copy()
    dram_rows = np.flatnonzero(cols.dram_mask[span_start:span_stop])
    if len(dram_rows):
        latencies[dram_rows] += sim.memory.dram.open_row_latencies(
            sim.trace.addresses[span_start + dram_rows]
        )
    if int(latencies.min()) < 1:
        # Match the reference loop: report the first offending access.
        bad = int(np.argmax(latencies < 1))
        raise SimulationError(
            f"access {span_start + bad} completed in "
            f"{int(latencies[bad])} cycles"
        )
    if sim.posted_writes:
        kinds = sim.trace.kinds[span_start:span_stop]
        lag_deltas = np.where(kinds == _WRITE_CODE, 0, latencies - 1)
        state.lag += int(lag_deltas.sum())
    else:
        state.lag += int(latencies.sum()) - (span_stop - span_start)
    return len(dram_rows)
