"""Locality analysis: reuse distance, working sets, stride histograms.

APEX's module-matching rests on locality properties of each data
structure: a structure with small reuse distances caches well, one with
a compact working set fits an SRAM, one with a dominant stride suits a
stream buffer. This module computes those properties from traces so
library sizing can be driven by measurement instead of guesswork (and
so tests can assert the workloads really have the locality their
pattern hints claim).

Reuse distance here is the *LRU stack distance* at a configurable block
granularity: the number of distinct blocks touched since the previous
access to the same block (cold accesses report distance −1). A fully
associative LRU cache of capacity C blocks hits exactly the accesses
with distance < C, which is what :func:`hit_ratio_curve` evaluates.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace.events import Trace


def reuse_distances(
    trace: Trace,
    block_bytes: int = 32,
    struct: str | None = None,
) -> np.ndarray:
    """LRU stack distances of every access, at block granularity.

    Cold (first-touch) accesses get distance −1. Restricting to one
    ``struct`` analyzes that structure's private locality.

    The classic O(N·M) stack algorithm is used with an ordered-dict
    stack — fine for the library's laptop-scale traces.
    """
    if block_bytes <= 0 or block_bytes & (block_bytes - 1):
        raise TraceError(f"block size must be a power of two: {block_bytes}")
    if struct is not None:
        mask = trace.struct_mask(struct)
        addresses = trace.addresses[mask]
    else:
        addresses = trace.addresses
    stack: OrderedDict[int, None] = OrderedDict()
    distances = np.empty(len(addresses), dtype=np.int64)
    for i, address in enumerate(addresses):
        block = int(address) // block_bytes
        if block in stack:
            # Depth = number of blocks more recent than this one.
            depth = 0
            for candidate in reversed(stack):
                if candidate == block:
                    break
                depth += 1
            distances[i] = depth
            stack.move_to_end(block)
        else:
            distances[i] = -1
            stack[block] = None
    return distances


def hit_ratio_curve(
    distances: np.ndarray, capacities: Sequence[int]
) -> dict[int, float]:
    """Fully-associative-LRU hit ratio at each capacity (in blocks).

    The miss-ratio curve this induces is the theoretical best any cache
    of that capacity can do; APEX's cache sweep is bounded by it.
    """
    if len(distances) == 0:
        raise TraceError("no distances to evaluate")
    results: dict[int, float] = {}
    for capacity in capacities:
        if capacity <= 0:
            raise TraceError(f"capacity must be positive: {capacity}")
        hits = int(((distances >= 0) & (distances < capacity)).sum())
        results[capacity] = hits / len(distances)
    return results


@dataclass(frozen=True)
class WorkingSetProfile:
    """Distinct-block counts over fixed-size access windows."""

    window: int
    block_bytes: int
    sizes: tuple[int, ...]

    @property
    def mean(self) -> float:
        return sum(self.sizes) / len(self.sizes) if self.sizes else 0.0

    @property
    def peak(self) -> int:
        return max(self.sizes) if self.sizes else 0


def working_set_profile(
    trace: Trace,
    window: int = 1000,
    block_bytes: int = 32,
    struct: str | None = None,
) -> WorkingSetProfile:
    """Distinct blocks touched per ``window`` consecutive accesses."""
    if window <= 0:
        raise TraceError(f"window must be positive: {window}")
    if block_bytes <= 0 or block_bytes & (block_bytes - 1):
        raise TraceError(f"block size must be a power of two: {block_bytes}")
    if struct is not None:
        addresses = trace.addresses[trace.struct_mask(struct)]
    else:
        addresses = trace.addresses
    blocks = addresses // block_bytes
    sizes = []
    for start in range(0, len(blocks), window):
        chunk = blocks[start : start + window]
        if len(chunk):
            sizes.append(int(len(np.unique(chunk))))
    return WorkingSetProfile(
        window=window, block_bytes=block_bytes, sizes=tuple(sizes)
    )


def stride_histogram(
    trace: Trace, struct: str, top: int = 8
) -> Mapping[int, float]:
    """The ``top`` most common inter-access strides of one structure,
    as stride → fraction of transitions."""
    addresses = trace.addresses[trace.struct_mask(struct)]
    if len(addresses) < 2:
        return {}
    strides = np.diff(addresses)
    counts = Counter(int(s) for s in strides)
    total = len(strides)
    return {
        stride: count / total for stride, count in counts.most_common(top)
    }
