"""Access-pattern classification (the APEX front-end).

APEX extracts "the most active access patterns exhibited by the
application data structures" from the C source. Our instrumented
workloads know their own data-structure semantics, so they export
*pattern hints* that stand in for that source-level analysis; for
untagged traces this module also provides an address-stream heuristic
classifier so the pipeline works on any trace.

Pattern taxonomy (following the paper and APEX):

* ``STREAM`` — sequential / constant-stride accesses (input buffers,
  sample streams) → candidates for stream buffers.
* ``SELF_INDIRECT`` — "array references which use the current array
  element value to compute the index for the next array element
  access" (hash probe chains, linked lists) → candidates for
  linked-list / self-indirect DMA-like modules.
* ``INDEXED`` — irregular but heavily reused accesses within a bounded
  table → candidates for on-chip SRAM mapping.
* ``RANDOM`` — irregular, low-reuse accesses → left to the cache.
* ``SCALAR`` — tiny-footprint globals → cheap to keep on-chip.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum
from typing import Mapping

import numpy as np

from repro.errors import TraceError
from repro.trace.events import Trace


class AccessPattern(Enum):
    """APEX access-pattern classes."""

    STREAM = "stream"
    SELF_INDIRECT = "self_indirect"
    INDEXED = "indexed"
    RANDOM = "random"
    SCALAR = "scalar"


#: Footprints at or below this size are classified SCALAR.
SCALAR_FOOTPRINT_BYTES = 256

#: Fraction of accesses sharing the dominant stride needed for STREAM.
STREAM_STRIDE_FRACTION = 0.70

#: Revisit fraction above which an irregular structure is INDEXED.
INDEXED_REVISIT_FRACTION = 0.50


@dataclass(frozen=True)
class PatternProfile:
    """Summary of one data structure's access behaviour.

    Attributes:
        struct: structure name.
        pattern: classified access pattern.
        count: number of accesses.
        footprint: bytes spanned by the structure's address range.
        read_fraction: fraction of accesses that are reads.
        dominant_stride: most common inter-access stride in bytes.
        stride_fraction: fraction of accesses at the dominant stride.
        revisit_fraction: fraction of accesses whose address was seen
            before (a cheap temporal-reuse signal).
    """

    struct: str
    pattern: AccessPattern
    count: int
    footprint: int
    read_fraction: float
    dominant_stride: int
    stride_fraction: float
    revisit_fraction: float


def _features(trace: Trace, struct: str) -> PatternProfile:
    mask = trace.struct_mask(struct)
    addresses = trace.addresses[mask]
    sizes = trace.sizes[mask]
    kinds = trace.kinds[mask]
    count = len(addresses)
    footprint = int(addresses.max() - addresses.min() + sizes.max())
    read_fraction = float(np.mean(kinds == 0)) if count else 0.0
    if count > 1:
        strides = np.diff(addresses)
        stride_counts = Counter(strides.tolist())
        dominant_stride, dominant_count = stride_counts.most_common(1)[0]
        stride_fraction = dominant_count / len(strides)
    else:
        dominant_stride, stride_fraction = 0, 0.0
    unique = len(np.unique(addresses))
    revisit_fraction = 1.0 - unique / count if count else 0.0
    return PatternProfile(
        struct=struct,
        pattern=AccessPattern.RANDOM,
        count=count,
        footprint=footprint,
        read_fraction=read_fraction,
        dominant_stride=int(dominant_stride),
        stride_fraction=float(stride_fraction),
        revisit_fraction=float(revisit_fraction),
    )


def _classify(profile: PatternProfile) -> AccessPattern:
    """Heuristic classification from address-stream features alone."""
    if profile.footprint <= SCALAR_FOOTPRINT_BYTES:
        return AccessPattern.SCALAR
    if (
        profile.stride_fraction >= STREAM_STRIDE_FRACTION
        and profile.dominant_stride != 0
    ):
        return AccessPattern.STREAM
    if profile.revisit_fraction >= INDEXED_REVISIT_FRACTION:
        return AccessPattern.INDEXED
    return AccessPattern.RANDOM


def classify_structure(
    trace: Trace,
    struct: str,
    hint: AccessPattern | None = None,
) -> PatternProfile:
    """Profile and classify one data structure of ``trace``.

    When ``hint`` is given (the workload's source-level knowledge, the
    stand-in for APEX's C analysis) it overrides the heuristic class but
    the measured features are still reported.
    """
    profile = _features(trace, struct)
    pattern = hint if hint is not None else _classify(profile)
    return PatternProfile(
        struct=profile.struct,
        pattern=pattern,
        count=profile.count,
        footprint=profile.footprint,
        read_fraction=profile.read_fraction,
        dominant_stride=profile.dominant_stride,
        stride_fraction=profile.stride_fraction,
        revisit_fraction=profile.revisit_fraction,
    )


def profile_patterns(
    trace: Trace,
    hints: Mapping[str, AccessPattern] | None = None,
) -> dict[str, PatternProfile]:
    """Classify every data structure in ``trace``.

    Returns profiles keyed by structure name, ordered by descending
    access count — "the most active access patterns" first, the order
    APEX considers them.
    """
    hints = dict(hints or {})
    unknown = set(hints) - set(trace.structs)
    if unknown:
        raise TraceError(
            f"hints reference structures absent from trace: {sorted(unknown)}"
        )
    profiles = [
        classify_structure(trace, struct, hints.get(struct))
        for struct in trace.structs
    ]
    profiles.sort(key=lambda p: p.count, reverse=True)
    return {p.struct: p for p in profiles}
