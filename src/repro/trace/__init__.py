"""Memory-access traces: records, pattern classification, profiling.

This subpackage plays the role of SHADE in the paper's toolchain: it
turns a running (instrumented) application into a sequence of tagged
memory accesses, classifies the per-data-structure access patterns the
way APEX consumes them, and profiles per-channel bandwidth the way ConEx
consumes it.
"""

from repro.trace.events import (
    Access,
    AccessKind,
    Trace,
    TraceBuilder,
    concatenate_traces,
)
from repro.trace.patterns import (
    AccessPattern,
    PatternProfile,
    classify_structure,
    profile_patterns,
)
from repro.trace.profiler import BandwidthProfile, StructureStats, profile_trace
from repro.trace.reuse import (
    WorkingSetProfile,
    hit_ratio_curve,
    reuse_distances,
    stride_histogram,
    working_set_profile,
)

__all__ = [
    "Access",
    "AccessKind",
    "AccessPattern",
    "BandwidthProfile",
    "PatternProfile",
    "StructureStats",
    "Trace",
    "TraceBuilder",
    "WorkingSetProfile",
    "classify_structure",
    "concatenate_traces",
    "hit_ratio_curve",
    "profile_patterns",
    "profile_trace",
    "reuse_distances",
    "stride_histogram",
    "working_set_profile",
]
