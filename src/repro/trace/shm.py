"""Crash-safe shared-memory hygiene: registry, manifest, stale sweep.

:meth:`repro.trace.events.Trace.export_shared` backs zero-copy trace
transport with named POSIX shared-memory blocks (or temp files). Those
blocks live in ``/dev/shm`` until *someone* unlinks them — and before
this module existed that someone was only the clean-exit path
(:meth:`SharedTraceExport.close` / ``atexit``). A process killed by
SIGKILL, the OOM killer, or a crash left its blocks behind forever,
silently eating shared memory across a multi-hour sweep.

This module closes that hole with three cooperating mechanisms:

* **PID-tagged names + a sidecar manifest.** Every exported block is
  named ``repro-shm-<pid>-<token>`` and recorded in a per-process
  manifest file (``<tempdir>/repro-shm/<pid>.manifest``, one resource
  per line). The name alone identifies the owner; the manifest also
  covers the temp-file transport fallback.
* **Signal-safe cleanup.** The first registration installs chaining
  SIGTERM/SIGINT handlers (and an ``atexit`` hook) that unlink every
  still-registered resource before the process dies. Handlers are
  owner-PID guarded so fork children (pool workers) inherit them
  harmlessly: a terminated worker never unlinks its parent's blocks.
* **A startup sweep.** :func:`sweep_stale` scans the manifest
  directory (and, on POSIX, ``/dev/shm`` directly) for resources whose
  owner PID is dead and unlinks them best-effort. The execution
  runtime runs the sweep once per process on construction, so a fresh
  exploration session reclaims whatever a crashed predecessor leaked.

Everything here is best-effort by design: cleanup must never turn a
survivable fault into a new failure, so every unlink swallows
``OSError``.
"""

from __future__ import annotations

import atexit
import os
import pathlib
import secrets
import signal
import tempfile
import threading

from repro.config import SHM_MANIFEST_DIR_ENV as MANIFEST_DIR_ENV
from repro.config import current_settings

#: Prefix of every shared-memory block exported by this library. The
#: embedded PID lets the sweep attribute a block to its owner even
#: when the sidecar manifest never made it to disk.
SHM_PREFIX = "repro-shm"

#: Resources registered by this process: resource name/path -> kind
#: (``"shm"`` or ``"file"``).
_REGISTERED: dict[str, str] = {}

#: PID that owns the registrations. Fork children inherit the dict but
#: must never act on it (the parent still uses those blocks).
_OWNER_PID: int | None = None

_PREVIOUS_HANDLERS: dict[int, object] = {}
_HOOKS_INSTALLED = False


def block_name() -> str:
    """A fresh PID-tagged shared-memory block name."""
    return f"{SHM_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"


def manifest_dir() -> pathlib.Path:
    """Directory holding the per-process shm manifests."""
    override = current_settings().shm_manifest_dir
    if override:
        return pathlib.Path(override)
    return pathlib.Path(tempfile.gettempdir()) / SHM_PREFIX


def _manifest_path(pid: int | None = None) -> pathlib.Path:
    return manifest_dir() / f"{pid if pid is not None else os.getpid()}.manifest"


def registered_resources() -> tuple[tuple[str, str], ...]:
    """Snapshot of this process's live registrations as (kind, name)."""
    return tuple((kind, name) for name, kind in _REGISTERED.items())


def _write_manifest() -> None:
    path = _manifest_path()
    if not _REGISTERED:
        try:
            path.unlink()
        except OSError:
            pass
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_suffix(".tmp")
        temp.write_text(
            "".join(f"{kind} {name}\n" for name, kind in _REGISTERED.items())
        )
        os.replace(temp, path)
    except OSError:
        pass  # a missing manifest only weakens the sweep, never a run


def register_resource(kind: str, name: str) -> None:
    """Track a shared resource for crash-safe cleanup.

    Args:
        kind: ``"shm"`` (a named shared-memory block) or ``"file"``
            (a temp-file transport path).
        name: the block name or file path.
    """
    global _OWNER_PID
    if kind not in ("shm", "file"):
        raise ValueError(f"unknown shared resource kind: {kind!r}")
    if _OWNER_PID != os.getpid():
        # First registration in this process (or first after a fork):
        # drop inherited entries, they belong to the parent.
        _REGISTERED.clear()
        _OWNER_PID = os.getpid()
    _REGISTERED[name] = kind
    _install_cleanup_hooks()
    _write_manifest()


def unregister_resource(name: str) -> None:
    """Forget a resource that was cleanly released."""
    if _OWNER_PID != os.getpid():
        return
    if _REGISTERED.pop(name, None) is not None:
        _write_manifest()


def unlink_block(name: str) -> bool:
    """Best-effort unlink of a named shared-memory block."""
    try:
        import _posixshmem

        _posixshmem.shm_unlink("/" + name)
        return True
    except ImportError:  # pragma: no cover - non-POSIX fallback
        from multiprocessing import shared_memory

        try:
            block = shared_memory.SharedMemory(name=name, create=False)
        except (FileNotFoundError, OSError):
            return False
        try:
            block.close()
            block.unlink()
        except OSError:
            return False
        return True
    except FileNotFoundError:
        return False
    except OSError:
        return False


def _release(kind: str, name: str) -> bool:
    if kind == "shm":
        return unlink_block(name)
    try:
        os.unlink(name)
        return True
    except OSError:
        return False


def cleanup_registered() -> None:
    """Unlink every resource this process still has registered.

    Owner-PID guarded: in a fork child (pool worker) this is a no-op,
    because the registered blocks belong to — and are still mapped by —
    the parent. Safe to call repeatedly; runs from ``atexit`` and from
    the chained SIGTERM/SIGINT handlers.
    """
    if _OWNER_PID != os.getpid() or not _REGISTERED:
        return
    for name, kind in tuple(_REGISTERED.items()):
        _release(kind, name)
        _REGISTERED.pop(name, None)
    _write_manifest()


def _handle_signal(signum: int, frame) -> None:
    cleanup_registered()
    previous = _PREVIOUS_HANDLERS.get(signum)
    if previous is signal.SIG_IGN:
        return
    if callable(previous):
        previous(signum, frame)
        return
    # Default disposition: restore it and re-deliver so the process
    # still dies with the right signal status.
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def _install_cleanup_hooks() -> None:
    global _HOOKS_INSTALLED
    if _HOOKS_INSTALLED:
        return
    _HOOKS_INSTALLED = True
    atexit.register(cleanup_registered)
    if threading.current_thread() is not threading.main_thread():
        return  # signal.signal only works from the main thread
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            current = signal.getsignal(signum)
            if current is _handle_signal:
                continue
            _PREVIOUS_HANDLERS[signum] = current
            signal.signal(signum, _handle_signal)
        except (OSError, ValueError):  # pragma: no cover - exotic hosts
            pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return True
    return True


def sweep_stale() -> list[str]:
    """Unlink shared resources left behind by dead processes.

    Scans the manifest directory for per-PID manifests whose owner no
    longer exists and releases every resource they list; additionally
    scans ``/dev/shm`` (when present) for PID-tagged blocks whose
    embedded owner is dead but whose manifest never survived. Returns
    the names of the resources it released. Entirely best-effort: a
    sweep failure never fails the caller.
    """
    swept: list[str] = []
    directory = manifest_dir()
    try:
        manifests = list(directory.glob("*.manifest"))
    except OSError:
        manifests = []
    for path in manifests:
        try:
            pid = int(path.stem)
        except ValueError:
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            lines = path.read_text().splitlines()
        except OSError:
            lines = []
        for line in lines:
            kind, _, name = line.strip().partition(" ")
            if name and _release(kind, name):
                swept.append(name)
        try:
            path.unlink()
        except OSError:
            pass
    # Manifest-less leftovers: the name itself carries the owner PID.
    dev_shm = pathlib.Path("/dev/shm")
    try:
        orphans = list(dev_shm.glob(f"{SHM_PREFIX}-*-*")) if dev_shm.is_dir() else []
    except OSError:
        orphans = []
    for entry in orphans:
        parts = entry.name.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        if unlink_block(entry.name):
            swept.append(entry.name)
    return swept
