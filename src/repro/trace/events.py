"""Access records and the columnar :class:`Trace` container.

A trace is the interchange format between the instrumented workloads
(:mod:`repro.workloads`), the profilers (:mod:`repro.trace.profiler`),
and the simulator (:mod:`repro.sim`). Internally a trace is stored as
parallel :mod:`numpy` arrays so that pattern classification and
bandwidth profiling stay vectorized even for million-access traces;
iteration yields lightweight :class:`Access` records for the
event-driven simulator.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace import shm as shm_registry

#: Column attributes of a :class:`Trace`, in storage order. The shared
#: export packs exactly these, and :meth:`Trace.attach_shared` rebuilds
#: them by name.
TRACE_COLUMNS = ("addresses", "sizes", "kinds", "struct_ids", "ticks")

#: Byte alignment of each column inside a shared block.
_COLUMN_ALIGN = 16


class AccessKind(IntEnum):
    """Direction of a memory access as seen from the CPU."""

    READ = 0
    WRITE = 1


@dataclass(frozen=True, slots=True)
class Access:
    """One CPU memory access.

    Attributes:
        address: byte address within the flat trace address space.
        size: access width in bytes (1, 2, 4, or 8 in practice).
        kind: read or write.
        struct: name of the application data structure touched; this is
            the tag APEX uses to map structures onto memory modules.
        tick: CPU issue time in (ideal) cycles — program order spaced by
            the compute work between accesses.
    """

    address: int
    size: int
    kind: AccessKind
    struct: str
    tick: int


class TraceBuilder:
    """Incrementally records accesses while a workload executes.

    The builder advances a virtual CPU clock: each recorded access
    occupies one issue slot, and :meth:`compute` models instruction work
    between accesses so traces carry realistic inter-access gaps.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._addresses: list[int] = []
        self._sizes: list[int] = []
        self._kinds: list[int] = []
        self._struct_ids: list[int] = []
        self._ticks: list[int] = []
        self._structs: dict[str, int] = {}
        self._tick = 0

    def compute(self, cycles: int) -> None:
        """Advance the virtual clock by ``cycles`` of non-memory work."""
        if cycles < 0:
            raise TraceError(f"negative compute time: {cycles}")
        self._tick += cycles

    def record(
        self,
        address: int,
        size: int,
        kind: AccessKind,
        struct: str,
    ) -> None:
        """Append one access at the current clock and advance one cycle."""
        if size <= 0:
            raise TraceError(f"access size must be positive, got {size}")
        if address < 0:
            raise TraceError(f"negative address: {address:#x}")
        struct_id = self._structs.setdefault(struct, len(self._structs))
        self._addresses.append(address)
        self._sizes.append(size)
        self._kinds.append(int(kind))
        self._struct_ids.append(struct_id)
        self._ticks.append(self._tick)
        self._tick += 1

    def read(self, address: int, size: int, struct: str) -> None:
        """Shorthand for recording a read access."""
        self.record(address, size, AccessKind.READ, struct)

    def write(self, address: int, size: int, struct: str) -> None:
        """Shorthand for recording a write access."""
        self.record(address, size, AccessKind.WRITE, struct)

    def build(self) -> "Trace":
        """Freeze the recorded accesses into an immutable :class:`Trace`."""
        if not self._addresses:
            raise TraceError(f"trace '{self.name}' recorded no accesses")
        return Trace(
            name=self.name,
            addresses=np.asarray(self._addresses, dtype=np.int64),
            sizes=np.asarray(self._sizes, dtype=np.int32),
            kinds=np.asarray(self._kinds, dtype=np.int8),
            struct_ids=np.asarray(self._struct_ids, dtype=np.int32),
            ticks=np.asarray(self._ticks, dtype=np.int64),
            structs=tuple(self._structs),
        )


class Trace:
    """Immutable columnar trace of tagged memory accesses."""

    def __init__(
        self,
        name: str,
        addresses: np.ndarray,
        sizes: np.ndarray,
        kinds: np.ndarray,
        struct_ids: np.ndarray,
        ticks: np.ndarray,
        structs: Sequence[str],
    ) -> None:
        n = len(addresses)
        for label, arr in (
            ("sizes", sizes),
            ("kinds", kinds),
            ("struct_ids", struct_ids),
            ("ticks", ticks),
        ):
            if len(arr) != n:
                raise TraceError(
                    f"column '{label}' has {len(arr)} entries, expected {n}"
                )
        if n == 0:
            raise TraceError(f"trace '{name}' is empty")
        if struct_ids.max(initial=-1) >= len(structs):
            raise TraceError("struct_ids reference unknown structure names")
        self.name = name
        self.addresses = addresses
        self.sizes = sizes
        self.kinds = kinds
        self.struct_ids = struct_ids
        self.ticks = ticks
        self.structs: tuple[str, ...] = tuple(structs)
        self._struct_index: dict[str, int] = {
            name: index for index, name in enumerate(self.structs)
        }
        for arrays in (addresses, sizes, kinds, struct_ids, ticks):
            arrays.setflags(write=False)
        self._fingerprint: str | None = None

    def __len__(self) -> int:
        return len(self.addresses)

    def fingerprint(self) -> str:
        """Stable content hash of the trace (name, accesses, tags).

        Two traces with identical name, structure tables, and access
        columns share a fingerprint regardless of how they were built
        (recorded, loaded from ``.npz``, sliced into being). The value
        keys the simulation/estimate cache in :mod:`repro.exec` and is
        persisted by :func:`repro.io.save_trace` so stored traces
        round-trip their identity.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(self.name.encode())
            digest.update(b"\x00")
            for struct in self.structs:
                digest.update(struct.encode())
                digest.update(b"\x00")
            for column in (
                self.addresses,
                self.sizes,
                self.kinds,
                self.struct_ids,
                self.ticks,
            ):
                digest.update(str(column.dtype).encode())
                digest.update(np.ascontiguousarray(column).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def __iter__(self) -> Iterator[Access]:
        structs = self.structs
        for i in range(len(self)):
            yield Access(
                address=int(self.addresses[i]),
                size=int(self.sizes[i]),
                kind=AccessKind(int(self.kinds[i])),
                struct=structs[self.struct_ids[i]],
                tick=int(self.ticks[i]),
            )

    @property
    def duration(self) -> int:
        """Ideal-CPU duration: last issue tick plus one."""
        return int(self.ticks[-1]) + 1

    @property
    def total_bytes(self) -> int:
        """Total bytes moved by all accesses."""
        return int(self.sizes.sum())

    def structure_names(self) -> tuple[str, ...]:
        """Names of all data structures appearing in the trace."""
        return self.structs

    def struct_id(self, struct: str) -> int:
        """Column id of one data structure (O(1) name lookup)."""
        try:
            return self._struct_index[struct]
        except KeyError:
            raise TraceError(
                f"unknown structure '{struct}' in trace '{self.name}'"
            ) from None

    def struct_mask(self, struct: str) -> np.ndarray:
        """Boolean mask selecting the accesses of one data structure."""
        return self.struct_ids == self.struct_id(struct)

    def counts_by_struct(self) -> Mapping[str, int]:
        """Access counts keyed by data-structure name."""
        counts = np.bincount(self.struct_ids, minlength=len(self.structs))
        return {name: int(c) for name, c in zip(self.structs, counts)}

    def _column_specs(self) -> tuple[list[tuple[str, str, int, int]], int]:
        """Aligned ``(column, dtype, offset, count)`` packing plan."""
        specs: list[tuple[str, str, int, int]] = []
        offset = 0
        for column in TRACE_COLUMNS:
            array = getattr(self, column)
            offset = -(-offset // _COLUMN_ALIGN) * _COLUMN_ALIGN
            specs.append((column, str(array.dtype), offset, len(array)))
            offset += array.nbytes
        return specs, max(1, offset)

    def pack_columns(self) -> "tuple[tuple[tuple[str, str, int, int], ...], bytes]":
        """The trace columns as one contiguous buffer plus its layout.

        The byte layout is exactly the one :meth:`export_shared` writes
        into a shared block, so network transports (the ``repro
        worker`` protocol) and shared memory describe traces with the
        same ``(column, dtype, offset, count)`` specs. The receiver
        rebuilds the trace with :meth:`from_packed` — zero-copy views
        over the received buffer.
        """
        specs, size = self._column_specs()
        buffer = bytearray(size)
        for column, _, start, _ in specs:
            data = np.ascontiguousarray(getattr(self, column)).tobytes()
            buffer[start : start + len(data)] = data
        return tuple(specs), bytes(buffer)

    @classmethod
    def from_packed(
        cls,
        name: str,
        structs: Sequence[str],
        fingerprint: str,
        specs: "Sequence[tuple[str, str, int, int]]",
        buffer: bytes,
    ) -> "Trace":
        """Rebuild a trace from :meth:`pack_columns` output.

        Columns are read-only views of ``buffer`` (no copy); the
        sender's fingerprint is adopted verbatim so cache keys match
        without re-hashing the columns.
        """
        arrays = {
            column: np.frombuffer(
                buffer, dtype=np.dtype(dtype), count=count, offset=offset
            )
            for column, dtype, offset, count in specs
        }
        trace = cls(name=name, structs=tuple(structs), **arrays)
        trace._fingerprint = fingerprint
        return trace

    def export_shared(self, transport: str = "auto") -> "SharedTraceExport":
        """Export the trace columns to zero-copy shared storage.

        Returns a :class:`SharedTraceExport` whose picklable
        :attr:`~SharedTraceExport.handle` lets other processes
        :meth:`attach_shared` to the same bytes instead of unpickling
        the trace. The exporter owns the storage: call
        :meth:`SharedTraceExport.close` (or use it as a context
        manager) once no consumer needs it anymore.

        ``transport`` selects the backing store: ``"shm"`` for
        ``multiprocessing.shared_memory``, ``"file"`` for a temporary
        memory-mapped file, ``"auto"`` (default) for shm with a file
        fallback when the platform refuses shared memory.
        """
        if transport not in ("auto", "shm", "file"):
            raise TraceError(f"unknown shared-trace transport: {transport!r}")
        specs, size = self._column_specs()

        block = None
        if transport in ("auto", "shm"):
            try:
                from multiprocessing import shared_memory

                # PID-tagged names let the crash sweep attribute a
                # block to its (possibly dead) owner; see repro.trace.shm.
                for _attempt in range(8):
                    try:
                        block = shared_memory.SharedMemory(
                            create=True,
                            size=size,
                            name=shm_registry.block_name(),
                        )
                        break
                    except FileExistsError:
                        continue
                else:  # pragma: no cover - 8 token collisions
                    block = shared_memory.SharedMemory(create=True, size=size)
            except (ImportError, OSError) as error:
                if transport == "shm":
                    raise TraceError(
                        f"cannot create shared memory for trace "
                        f"'{self.name}': {error}"
                    ) from error
        if block is not None:
            shm_registry.register_resource("shm", block.name)
            for column, _, start, _ in specs:
                data = np.ascontiguousarray(getattr(self, column)).tobytes()
                block.buf[start : start + len(data)] = data
            handle = SharedTraceHandle(
                trace_name=self.name,
                structs=self.structs,
                fingerprint=self.fingerprint(),
                transport="shm",
                block=block.name,
                size=size,
                columns=tuple(specs),
            )
            return SharedTraceExport(handle, block)

        descriptor, path = tempfile.mkstemp(prefix="repro-trace-", suffix=".bin")
        try:
            with os.fdopen(descriptor, "wb") as stream:
                position = 0
                for column, _, start, _ in specs:
                    stream.write(b"\x00" * (start - position))
                    data = np.ascontiguousarray(getattr(self, column)).tobytes()
                    stream.write(data)
                    position = start + len(data)
                stream.write(b"\x00" * (size - position))
        except BaseException:
            os.unlink(path)
            raise
        shm_registry.register_resource("file", path)
        handle = SharedTraceHandle(
            trace_name=self.name,
            structs=self.structs,
            fingerprint=self.fingerprint(),
            transport="file",
            block=path,
            size=size,
            columns=tuple(specs),
        )
        return SharedTraceExport(handle, None)

    @classmethod
    def attach_shared(cls, handle: "SharedTraceHandle") -> "Trace":
        """Attach to an exported trace without copying or unpickling.

        The returned trace's columns are read-only views of the shared
        block; the mapping stays alive for the lifetime of the trace
        object. The exporter's fingerprint is adopted verbatim, so
        cache keys match the original trace without re-hashing
        megabytes of columns.
        """
        if handle.transport == "shm":
            buffer, keeper = _map_shared_block(handle.block, handle.size)
        elif handle.transport == "file":
            mapped = np.memmap(
                handle.block, dtype=np.uint8, mode="r", shape=(handle.size,)
            )
            buffer = mapped
            keeper = mapped
        else:
            raise TraceError(
                f"unknown shared-trace transport: {handle.transport!r}"
            )
        arrays = {
            column: np.frombuffer(
                buffer, dtype=np.dtype(dtype), count=count, offset=offset
            )
            for column, dtype, offset, count in handle.columns
        }
        trace = cls(
            name=handle.trace_name,
            structs=handle.structs,
            **arrays,
        )
        trace._fingerprint = handle.fingerprint
        trace._shared_block = keeper  # keep the mapping alive
        return trace

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace of accesses ``[start, stop)``, sharing storage."""
        if not 0 <= start < stop <= len(self):
            raise TraceError(
                f"bad slice [{start}, {stop}) for trace of length {len(self)}"
            )
        return Trace(
            name=f"{self.name}[{start}:{stop}]",
            addresses=self.addresses[start:stop],
            sizes=self.sizes[start:stop],
            kinds=self.kinds[start:stop],
            struct_ids=self.struct_ids[start:stop],
            ticks=self.ticks[start:stop],
            structs=self.structs,
        )


@dataclass(frozen=True)
class SharedTraceHandle:
    """Picklable recipe for attaching to an exported trace.

    Carries everything a worker needs to rebuild a :class:`Trace` from
    shared storage: identity (name, structure table, fingerprint), the
    backing block (``transport`` is ``"shm"`` or ``"file"``; ``block``
    is the shared-memory name or file path), and one
    ``(column, dtype, offset, count)`` spec per trace column. Handles
    are tiny — dispatching one per job costs bytes where pickling the
    trace itself costs megabytes.
    """

    trace_name: str
    structs: tuple[str, ...]
    fingerprint: str
    transport: str
    block: str
    size: int
    columns: tuple[tuple[str, str, int, int], ...]


class SharedTraceExport:
    """Owner side of one shared trace export.

    Holds the storage the handle points at; :meth:`close` releases and
    unlinks it. Attached consumers that mapped the block before the
    unlink keep working (POSIX semantics); new attaches fail.
    """

    def __init__(self, handle: SharedTraceHandle, block) -> None:
        self.handle = handle
        self._block = block
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the backing storage; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        if self._block is not None:
            try:
                self._block.close()
                self._block.unlink()
            except (OSError, FileNotFoundError):  # already gone
                pass
            self._block = None
        elif self.handle.transport == "file":
            try:
                os.unlink(self.handle.block)
            except OSError:
                pass
        shm_registry.unregister_resource(self.handle.block)

    def __enter__(self) -> "SharedTraceExport":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"<SharedTraceExport {self.handle.trace_name} "
            f"({self.handle.transport}, {state})>"
        )


def _map_shared_block(name: str, size: int) -> tuple[object, object]:
    """Read-only mapping of a named shared-memory segment.

    Returns ``(buffer, keeper)``: a buffer exposing ``size`` bytes and
    the object that must stay referenced for the mapping to stay
    valid. POSIX platforms map the segment directly so the attach
    neither registers with the ``multiprocessing`` resource tracker
    (whose per-attacher bookkeeping would unlink the exporter's block
    early) nor runs ``SharedMemory``'s close-on-del destructor (which
    raises ``BufferError`` if array views outlive it). Platforms
    without ``_posixshmem`` fall back to ``SharedMemory`` attach.
    """
    try:
        import _posixshmem
        import mmap as mmap_module

        descriptor = _posixshmem.shm_open("/" + name, os.O_RDONLY, mode=0o600)
        try:
            mapped = mmap_module.mmap(
                descriptor, size, access=mmap_module.ACCESS_READ
            )
        finally:
            os.close(descriptor)
        return mapped, mapped
    except ImportError:  # pragma: no cover - non-POSIX fallback
        from multiprocessing import shared_memory

        try:
            block = shared_memory.SharedMemory(
                name=name, create=False, track=False
            )
        except TypeError:  # Python < 3.13: no track parameter
            block = shared_memory.SharedMemory(name=name, create=False)
        return block.buf, block


def concatenate_traces(traces: "list[Trace] | tuple[Trace, ...]", name: str | None = None) -> Trace:
    """Concatenate traces end to end (multi-phase applications).

    Later traces' ticks are re-based to start one cycle after the
    previous trace ends; structure tables are merged by name (same
    name = same structure, so phases can share state).
    """
    if not traces:
        raise TraceError("nothing to concatenate")
    if len(traces) == 1:
        only = traces[0]
        return Trace(
            name=name or only.name,
            addresses=only.addresses,
            sizes=only.sizes,
            kinds=only.kinds,
            struct_ids=only.struct_ids,
            ticks=only.ticks,
            structs=only.structs,
        )
    structs: dict[str, int] = {}
    addresses, sizes, kinds, struct_ids, ticks = [], [], [], [], []
    offset = 0
    for trace in traces:
        remap = np.array(
            [structs.setdefault(s, len(structs)) for s in trace.structs],
            dtype=np.int32,
        )
        addresses.append(trace.addresses)
        sizes.append(trace.sizes)
        kinds.append(trace.kinds)
        struct_ids.append(remap[trace.struct_ids])
        ticks.append(trace.ticks + offset)
        offset += trace.duration
    return Trace(
        name=name or "+".join(t.name for t in traces),
        addresses=np.concatenate(addresses),
        sizes=np.concatenate(sizes),
        kinds=np.concatenate(kinds),
        struct_ids=np.concatenate(struct_ids),
        ticks=np.concatenate(ticks),
        structs=tuple(structs),
    )
