"""Memory-architecture description: modules, structure mapping, channels.

A :class:`MemoryArchitecture` is what APEX produces and ConEx consumes:
a set of instantiated on-chip memory modules plus the off-chip DRAM,
and a mapping from each application data structure to the module that
serves it. The architecture also derives its *communication channels* —
the arcs of the Bandwidth Requirement Graph — from that mapping
(Figure 2(a) of the paper: CPU↔module channels on-chip, module↔DRAM
channels crossing the chip boundary).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.channels import CPU, DRAM, Channel
from repro.errors import ConfigurationError
from repro.memory.dram import Dram
from repro.memory.module import MemoryModule
from repro.memory.sram import Sram
from repro.trace.events import Trace



class MemoryArchitecture:
    """A set of memory modules plus the structure→module mapping.

    Args:
        name: architecture label (e.g. ``arch3``).
        modules: on-chip module instances; at most one per name.
        dram: the off-chip DRAM instance.
        mapping: data-structure name → module name. Structures absent
            from the mapping fall back to ``default_module``.
        default_module: module serving unmapped structures — a cache
            name, or ``"dram"`` for the uncached baseline.
    """

    def __init__(
        self,
        name: str,
        modules: Iterable[MemoryModule],
        dram: Dram,
        mapping: Mapping[str, str],
        default_module: str = DRAM,
    ) -> None:
        self.name = name
        self.modules: dict[str, MemoryModule] = {}
        for module in modules:
            if module.name in self.modules:
                raise ConfigurationError(
                    f"duplicate module name '{module.name}' in '{name}'"
                )
            if module.name in (CPU, DRAM):
                raise ConfigurationError(
                    f"module name '{module.name}' is reserved"
                )
            self.modules[module.name] = module
        self.dram = dram
        self.mapping = dict(mapping)
        self.default_module = default_module
        known = set(self.modules) | {DRAM}
        if default_module not in known:
            raise ConfigurationError(
                f"default module '{default_module}' not in architecture '{name}'"
            )
        for struct, target in self.mapping.items():
            if target not in known:
                raise ConfigurationError(
                    f"structure '{struct}' mapped to unknown module '{target}'"
                )

    # -- queries -----------------------------------------------------

    def module_for(self, struct: str) -> str:
        """Name of the module serving accesses to ``struct``."""
        return self.mapping.get(struct, self.default_module)

    def module(self, name: str) -> MemoryModule:
        """Module instance by name (``dram`` returns the DRAM)."""
        if name == DRAM:
            return self.dram
        return self.modules[name]

    @property
    def area_gates(self) -> float:
        """Summed on-chip module area (the Figure 3 cost axis)."""
        return sum(m.area_gates for m in self.modules.values())

    def served_modules(self, trace: Trace) -> list[str]:
        """On-chip modules actually serving ``trace``, plus ``dram``
        when some structure bypasses all of them."""
        targets = {self.module_for(struct) for struct in trace.structs}
        ordered = [name for name in self.modules if name in targets]
        if DRAM in targets:
            ordered.append(DRAM)
        return ordered

    def channels(self, trace: Trace) -> list[Channel]:
        """The BRG arcs of this architecture under ``trace``.

        CPU↔module for every serving module; module↔DRAM for every
        on-chip module with backing traffic (everything except SRAMs,
        which hold their structures entirely); CPU↔DRAM when some
        structure is uncached.
        """
        result: list[Channel] = []
        for target in self.served_modules(trace):
            result.append(Channel(CPU, target))
            if target != DRAM and not isinstance(self.modules[target], Sram):
                result.append(Channel(target, DRAM))
        return result

    def validate(self, trace: Trace) -> None:
        """Check the mapping against the trace's structures.

        SRAM-mapped structures must fit their module (APEX only maps a
        structure on-chip when its footprint fits).
        """
        for struct in self.mapping:
            if struct not in trace.structs:
                raise ConfigurationError(
                    f"mapping mentions '{struct}' absent from trace '{trace.name}'"
                )
        footprints: dict[str, int] = {}
        for struct in trace.structs:
            mask = trace.struct_mask(struct)
            addresses = trace.addresses[mask]
            sizes = trace.sizes[mask]
            footprints[struct] = int(
                addresses.max() - addresses.min() + sizes.max()
            )
        demand: dict[str, int] = {}
        for struct, footprint in footprints.items():
            target = self.module_for(struct)
            if target != DRAM and isinstance(self.modules[target], Sram):
                demand[target] = demand.get(target, 0) + footprint
        for name, needed in demand.items():
            sram = self.modules[name]
            assert isinstance(sram, Sram)
            if needed > sram.capacity:
                raise ConfigurationError(
                    f"SRAM '{name}' of {sram.capacity} B cannot hold "
                    f"{needed} B of mapped structures"
                )

    def reset(self) -> None:
        """Reset all module state for a fresh simulation."""
        for module in self.modules.values():
            module.reset()
        self.dram.reset()

    def signature(self) -> tuple:
        """Content signature of the architecture (cache key component).

        Built from every module's configuration, the DRAM, the
        structure mapping, and the default module — deliberately *not*
        the architecture name, so two identically-configured candidates
        enumerated under different labels share simulation results in
        the :mod:`repro.exec` cache.
        """
        return (
            tuple(
                self.modules[name].config_signature()
                for name in sorted(self.modules)
            ),
            self.dram.config_signature(),
            tuple(sorted(self.mapping.items())),
            self.default_module,
        )

    def describe(self) -> str:
        """Multi-line human description used in reports."""
        lines = [f"{self.name}: {len(self.modules)} on-chip modules"]
        for module in self.modules.values():
            structs = sorted(
                s for s, t in self.mapping.items() if t == module.name
            )
            suffix = f" <- {', '.join(structs)}" if structs else ""
            lines.append(f"  {module.describe()}{suffix}")
        lines.append(f"  default -> {self.default_module}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<MemoryArchitecture {self.name} ({len(self.modules)} modules)>"
