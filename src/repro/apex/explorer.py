"""APEX: memory-modules exploration (the paper's starting substrate).

Reimplements the flow of Grun/Dutt/Nicolau's APEX (ISSS 2001) at the
level this paper consumes it: classify the application's access
patterns, enumerate memory-module architectures matching those patterns
from the memory IP library, evaluate each candidate's cost and miss
ratio under an *ideal connectivity* (the "simple connectivity model"
the paper says APEX assumes), and select the most promising
configurations along the cost/miss-ratio pareto curve (Figure 3).

Candidate generation follows APEX's pattern→module matching:

* a cache choice serves the RANDOM / unmapped structures (or no cache —
  the uncached baseline that anchors the high-latency end of Table 1);
* STREAM structures optionally get stream buffers;
* SELF_INDIRECT structures optionally share a DMA-like module;
* INDEXED / SCALAR structures optionally move into the smallest SRAM
  that fits their combined footprint.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro import obs
from repro.apex.architectures import DRAM, MemoryArchitecture
from repro.errors import ExplorationError
from repro.exec.cache import SimulationCache
from repro.exec.engine import SimulationJob, simulate_batch
from repro.exec.runtime import ExecutionRuntime
from repro.memory.dram import Dram
from repro.memory.library import MemoryLibrary
from repro.memory.module import MemoryModule
from repro.sim.metrics import SimulationResult
from repro.sim.sampling import SamplingConfig
from repro.stats import BatchStats, StatsReport, deprecated_stat
from repro.trace.events import Trace
from repro.trace.patterns import AccessPattern, PatternProfile, profile_patterns
from repro.util.pareto import pareto_front


@dataclass(frozen=True)
class ApexConfig:
    """Knobs of the APEX candidate enumeration.

    Empty option lists mean "only the None option" for that feature.
    ``select_count`` bounds how many pareto designs continue to ConEx
    (the paper's Figure 3 carries five forward).
    """

    cache_options: tuple[str | None, ...] = (
        None,
        "cache_4k_16b_1w",
        "cache_8k_32b_1w",
        "cache_8k_32b_2w",
        "cache_16k_32b_2w",
        "cache_32k_32b_2w",
    )
    stream_buffer_options: tuple[str | None, ...] = (
        None,
        "stream_buffer_2",
        "stream_buffer_4",
        "stream_buffer_8",
    )
    dma_options: tuple[str | None, ...] = (
        None,
        "si_dma_16",
        "si_dma_32",
        "si_dma_64",
        "ll_dma_32",
    )
    map_indexed_to_sram: tuple[bool, ...] = (False, True)
    #: Off-chip DRAM preset used by every candidate (DRAM banking is a
    #: board-level choice, not a per-candidate exploration axis).
    dram_preset: str = "dram"
    #: When non-empty, the DRAM *is* a per-candidate exploration axis:
    #: each named preset (e.g. ``mcdram_2ch``) multiplies the product
    #: and ``dram_preset`` is ignored. Empty keeps the single-preset
    #: behaviour above.
    dram_options: tuple[str, ...] = ()
    #: Module kinds eligible as the local-structure scratchpad. The
    #: smallest fitting preset of each kind becomes one enumeration
    #: option (``multiport_sram`` adds the arbitrated variants).
    sram_kinds: tuple[str, ...] = ("sram",)
    select_count: int = 5
    sampling: SamplingConfig | None = None


@dataclass(frozen=True)
class EvaluatedMemoryArchitecture:
    """One APEX candidate with its ideal-connectivity evaluation."""

    architecture: MemoryArchitecture
    cost_gates: float
    miss_ratio: float
    avg_latency: float
    result: SimulationResult = field(repr=False)

    @property
    def objectives(self) -> tuple[float, float]:
        """(cost, miss ratio) — the Figure 3 axes, both minimized."""
        return (self.cost_gates, self.miss_ratio)


@dataclass(frozen=True)
class ApexResult(StatsReport):
    """All evaluated candidates plus the pareto selection.

    ``stats`` bundles the evaluation batch's accounting (cache
    hits/misses, dedup, retries, pool rebuilds, degraded flag) as a
    :class:`repro.stats.BatchStats`; the old flat ``pool_rebuilds`` /
    ``degraded`` attribute names still read, with a
    :class:`DeprecationWarning`.
    """

    trace_name: str
    evaluated: tuple[EvaluatedMemoryArchitecture, ...]
    selected: tuple[EvaluatedMemoryArchitecture, ...]
    #: Evaluation-batch accounting (see :class:`repro.stats.BatchStats`).
    stats: BatchStats = field(default_factory=BatchStats)

    _STATS_EXCLUDE = ("evaluated", "selected")

    # Deprecated flat names (pre-1.1) for the bundled batch stats.
    pool_rebuilds = deprecated_stat(
        "ApexResult", "pool_rebuilds", "stats.pool_rebuilds"
    )
    degraded = deprecated_stat("ApexResult", "degraded", "stats.degraded")

    def architecture_names(self) -> tuple[str, ...]:
        return tuple(e.architecture.name for e in self.selected)


def _sram_preset_for(
    library: MemoryLibrary, footprint: int, kind: str = "sram"
) -> str | None:
    """Smallest ``kind`` preset holding ``footprint`` bytes, if any."""
    best_name: str | None = None
    best_capacity: int | None = None
    for preset in library.of_kind(kind):
        sram = preset.build()
        capacity = getattr(sram, "capacity", 0)
        if capacity >= footprint and (
            best_capacity is None or capacity < best_capacity
        ):
            best_name = preset.name
            best_capacity = capacity
    return best_name


def enumerate_architectures(
    trace: Trace,
    library: MemoryLibrary,
    profiles: Mapping[str, PatternProfile],
    config: ApexConfig,
) -> list[MemoryArchitecture]:
    """Build the APEX candidate architectures for ``trace``."""
    stream_structs = [
        p.struct for p in profiles.values() if p.pattern is AccessPattern.STREAM
    ]
    si_structs = [
        p.struct
        for p in profiles.values()
        if p.pattern is AccessPattern.SELF_INDIRECT
    ]
    local_structs = [
        p.struct
        for p in profiles.values()
        if p.pattern in (AccessPattern.INDEXED, AccessPattern.SCALAR)
    ]
    local_footprint = sum(profiles[s].footprint for s in local_structs)
    sram_presets: tuple[str, ...] = ()
    if local_structs:
        sram_presets = tuple(
            name
            for kind in config.sram_kinds
            for name in (_sram_preset_for(library, local_footprint, kind),)
            if name is not None
        )

    stream_options = config.stream_buffer_options if stream_structs else (None,)
    dma_options = config.dma_options if si_structs else (None,)
    # The scratchpad axis enumerates concrete presets (one per eligible
    # kind); ``map_indexed_to_sram`` keeps its historical booleans, so
    # (False, True) with one kind is exactly the old (no-sram, sram)
    # pair in the old order.
    sram_options: tuple[str | None, ...] = (None,)
    if sram_presets:
        sram_options = tuple(
            name
            for flag in config.map_indexed_to_sram
            for name in ((sram_presets if flag else (None,)))
        )
    dram_axis = config.dram_options or (config.dram_preset,)

    architectures: list[MemoryArchitecture] = []
    index = 0
    for cache_name, stream_name, dma_name, sram_name, dram_name in (
        itertools.product(
            config.cache_options,
            stream_options,
            dma_options,
            sram_options,
            dram_axis,
        )
    ):
        modules: list[MemoryModule] = []
        mapping: dict[str, str] = {}
        if cache_name is not None:
            modules.append(library.get(cache_name).instantiate("cache"))
        if stream_name is not None:
            for position, struct in enumerate(stream_structs):
                buffer_name = f"sb{position}"
                modules.append(
                    library.get(stream_name).instantiate(buffer_name)
                )
                mapping[struct] = buffer_name
        if dma_name is not None:
            modules.append(library.get(dma_name).instantiate("si_dma"))
            for struct in si_structs:
                mapping[struct] = "si_dma"
        if sram_name is not None:
            modules.append(library.get(sram_name).instantiate("sram"))
            for struct in local_structs:
                mapping[struct] = "sram"
        dram = library.get(dram_name).instantiate()
        assert isinstance(dram, Dram)
        default = "cache" if cache_name is not None else DRAM
        architecture = MemoryArchitecture(
            name=f"mem{index}",
            modules=modules,
            dram=dram,
            mapping=mapping,
            default_module=default,
        )
        architectures.append(architecture)
        index += 1
    return architectures


def _thin_selection(
    front: Sequence[EvaluatedMemoryArchitecture], count: int
) -> list[EvaluatedMemoryArchitecture]:
    """Spread ``count`` picks along the cost axis of the front."""
    ordered = sorted(front, key=lambda e: e.cost_gates)
    if len(ordered) <= count:
        return list(ordered)
    if count <= 1:
        return [ordered[0]]
    picks = {0, len(ordered) - 1}
    step = (len(ordered) - 1) / (count - 1)
    for i in range(1, count - 1):
        picks.add(round(i * step))
    return [ordered[i] for i in sorted(picks)]


def explore_memory_architectures(
    trace: Trace,
    library: MemoryLibrary,
    config: ApexConfig | None = None,
    hints: Mapping[str, AccessPattern] | None = None,
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> ApexResult:
    """Run the APEX exploration on ``trace``.

    Evaluates every candidate under ideal connectivity and selects the
    cost/miss-ratio pareto front, thinned to ``config.select_count``
    points spread along the cost axis. Candidate evaluations run
    through :func:`repro.exec.simulate_batch` — parallel when
    ``workers`` (or ``REPRO_WORKERS``) asks for it, cached so the
    strategy comparisons re-profile each architecture only once, and
    dispatched through ``runtime`` when a persistent pool is supplied
    or through ``backend`` when an execution backend (or
    ``REPRO_BACKEND``) selects one.
    """
    config = config or ApexConfig()
    if config.select_count < 1:
        raise ExplorationError(
            f"select_count must be >= 1: {config.select_count}"
        )
    profiles = profile_patterns(trace, hints)
    with obs.span("apex.evaluate"):
        candidates = enumerate_architectures(trace, library, profiles, config)
        report = simulate_batch(
            trace,
            [
                SimulationJob(
                    memory=architecture,
                    connectivity=None,
                    sampling=config.sampling,
                )
                for architecture in candidates
            ],
            workers=workers,
            cache=cache,
            runtime=runtime,
            backend=backend,
        )
        evaluated = [
            EvaluatedMemoryArchitecture(
                architecture=architecture,
                cost_gates=result.memory_cost_gates,
                miss_ratio=result.miss_ratio,
                avg_latency=result.avg_latency,
                result=result,
            )
            for architecture, result in zip(candidates, report.results)
        ]
        front = pareto_front(evaluated, key=lambda e: e.objectives)
        selected = _thin_selection(front, config.select_count)
    if obs.enabled():
        obs.incr("apex.candidates", len(candidates))
        obs.incr("apex.selected", len(selected))
    return ApexResult(
        trace_name=trace.name,
        evaluated=tuple(evaluated),
        selected=tuple(selected),
        stats=report.stats,
    )
