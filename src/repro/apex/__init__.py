"""APEX: Access Pattern-based memory-modules EXploration.

Reimplementation of the paper's prior-work substrate (Grun/Dutt/Nicolau,
ISSS 2001): classify each data structure's access pattern, enumerate
memory-module architectures matching those patterns from the memory IP
library, evaluate their cost and miss ratio, and keep the pareto-like
most promising configurations — the starting points for ConEx.
"""

from repro.apex.architectures import Channel, MemoryArchitecture
from repro.apex.explorer import (
    ApexConfig,
    ApexResult,
    EvaluatedMemoryArchitecture,
    explore_memory_architectures,
)

__all__ = [
    "ApexConfig",
    "ApexResult",
    "Channel",
    "EvaluatedMemoryArchitecture",
    "MemoryArchitecture",
    "explore_memory_architectures",
]
