"""Connectivity-component base class and transfer timing."""

from __future__ import annotations

import math
from abc import ABC
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memory.area import controller_area_gates
from repro.connectivity.wire import WireModel
from repro.timing.reservation import ReservationTable


@dataclass(frozen=True, slots=True)
class TransferTiming:
    """Timing of one transaction over a connectivity component.

    Attributes:
        latency: cycles from request to last byte delivered (what the
            requester waits).
        occupancy: cycles the component is unavailable to other
            transactions. Pipelined components overlap the setup of the
            next transfer with the data of this one, so occupancy can
            be below latency; split-transaction buses release the bus
            while the slave is busy, which the simulator exploits on
            the DRAM path.
    """

    latency: int
    occupancy: int


class ConnectivityComponent(ABC):
    """One entry of the connectivity IP library.

    The constructor parameters are exactly the properties the paper
    lists for its library: bitwidth, latency, pipelining, split
    transaction support, and resource usage (ports, protocol
    complexity feeding the controller-area model).
    """

    kind: str = "connection"

    def __init__(
        self,
        name: str,
        width_bytes: int,
        base_latency: int,
        cycles_per_beat: int,
        pipelined: bool,
        split_transactions: bool,
        max_ports: int,
        protocol_complexity: float,
        on_chip: bool = True,
        point_to_point: bool = False,
        energy_scale: float = 1.0,
    ) -> None:
        if width_bytes <= 0:
            raise ConfigurationError(f"width must be positive: {width_bytes}")
        if base_latency < 0 or cycles_per_beat < 1:
            raise ConfigurationError(
                f"bad timing: base={base_latency} beat={cycles_per_beat}"
            )
        if max_ports < 1:
            raise ConfigurationError(f"max_ports must be >= 1: {max_ports}")
        self.name = name
        self.width_bytes = width_bytes
        self.base_latency = base_latency
        self.cycles_per_beat = cycles_per_beat
        self.pipelined = pipelined
        self.split_transactions = split_transactions
        self.max_ports = max_ports
        self.protocol_complexity = protocol_complexity
        self.on_chip = on_chip
        self.point_to_point = point_to_point
        self.energy_scale = energy_scale

    # -- timing --------------------------------------------------------

    def beats(self, size_bytes: int) -> int:
        """Data beats needed to move ``size_bytes``."""
        if size_bytes <= 0:
            raise ConfigurationError(f"transfer size must be positive: {size_bytes}")
        return math.ceil(size_bytes / self.width_bytes)

    def timing(self, size_bytes: int) -> TransferTiming:
        """Latency and occupancy of one ``size_bytes`` transaction."""
        beats = self.beats(size_bytes)
        data_cycles = beats * self.cycles_per_beat
        latency = self.base_latency + data_cycles
        if self.pipelined:
            # Setup of the next transaction overlaps this one's data.
            occupancy = data_cycles
        else:
            occupancy = latency
        return TransferTiming(latency=latency, occupancy=occupancy)

    def timing_columns(self, sizes) -> tuple:
        """Vectorized :meth:`timing` over a numpy size column.

        Returns ``(latency, occupancy)`` ``int64`` arrays matching the
        scalar results element-for-element; the simulation kernel uses
        this to price whole access columns in one pass. Sizes must be
        positive, as for :meth:`beats`.
        """
        from repro.timing.batch import transfer_timing_columns

        return transfer_timing_columns(self, sizes)

    def reservation_table(self, size_bytes: int) -> ReservationTable:
        """RTGEN-style reservation table of one transaction.

        A non-pipelined component holds its single ``bus`` resource for
        the whole transaction; a pipelined one splits into an ``arb``
        stage and a ``data`` stage so back-to-back transactions overlap.
        """
        beats = self.beats(size_bytes)
        data_cycles = beats * self.cycles_per_beat
        if not self.pipelined:
            cycles = self.base_latency + data_cycles
            return ReservationTable({f"{self.name}.bus": range(cycles)})
        usage = {}
        if self.base_latency:
            usage[f"{self.name}.arb"] = range(self.base_latency)
        usage[f"{self.name}.data"] = range(
            self.base_latency, self.base_latency + data_cycles
        )
        return ReservationTable(usage)

    # -- cost / energy ---------------------------------------------------

    def wire_model(self, ports: int, attached_area_gates: float) -> WireModel:
        """Wire figures for an instance with ``ports`` attachments."""
        if ports < 1:
            raise ConfigurationError(f"ports must be >= 1: {ports}")
        if ports > self.max_ports:
            raise ConfigurationError(
                f"{self.name} supports {self.max_ports} ports, asked for {ports}"
            )
        return WireModel.for_connection(
            attached_area_gates=attached_area_gates,
            fanout=ports,
            data_lanes=self.width_bytes * 8,
            point_to_point=self.point_to_point,
            off_chip=not self.on_chip,
        )

    def cost_gates(self, ports: int, attached_area_gates: float) -> float:
        """Instance cost: protocol controller plus wire area."""
        controller = controller_area_gates(ports, self.protocol_complexity)
        return controller + self.wire_model(ports, attached_area_gates).area_gates

    def energy_nj_per_byte(self, ports: int, attached_area_gates: float) -> float:
        """Transfer energy per byte for an instance."""
        wire = self.wire_model(ports, attached_area_gates)
        return wire.energy_nj_per_byte * self.energy_scale

    def config_signature(self) -> tuple:
        """Hashable summary of the component's configuration.

        Scalar public attributes only — components carry no mutable
        simulation state, so this is the full behavioural identity.
        Used by the :mod:`repro.exec` result cache.
        """
        items: list[tuple[str, object]] = []
        for key in sorted(vars(self)):
            if key.startswith("_"):
                continue
            value = vars(self)[key]
            if value is None or isinstance(value, (str, int, float, bool)):
                items.append((key, value))
        return (type(self).__name__, tuple(items))

    def describe(self) -> str:
        """One-line description used in reports."""
        feature = []
        if self.pipelined:
            feature.append("pipelined")
        if self.split_transactions:
            feature.append("split")
        if not self.on_chip:
            feature.append("off-chip")
        extras = f" ({', '.join(feature)})" if feature else ""
        return f"{self.name}: {self.width_bytes * 8}-bit {self.kind}{extras}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
