"""Off-chip bus model.

Channels that cross the chip boundary (anything reaching the off-chip
DRAM) must be mapped to an off-chip bus: pad-limited width, slow
multi-cycle beats, and pad capacitance dominating the transfer energy.
"""

from __future__ import annotations

from repro.connectivity.component import ConnectivityComponent


class OffChipBus(ConnectivityComponent):
    """Off-chip bus through the I/O pads to the DRAM."""

    kind = "offchip"

    def __init__(self, name: str = "offchip", width_bytes: int = 2) -> None:
        super().__init__(
            name=name,
            width_bytes=width_bytes,
            base_latency=3,  # pad turnaround + DRAM command
            cycles_per_beat=2,  # I/O timing is slower than core clock
            pipelined=False,
            split_transactions=False,
            max_ports=8,
            protocol_complexity=0.8 * (width_bytes / 2),
            on_chip=False,
            point_to_point=False,
            energy_scale=1.0,
        )
