"""Connectivity-architecture description: channel clusters on components.

A :class:`ConnectivityArchitecture` implements the channels of a memory
architecture by grouping them into clusters and instantiating one
connectivity component per cluster (Figure 2(b) of the paper: two
on-chip buses, a dedicated connection, and an off-chip bus implementing
six channels). The ConEx allocation step builds these; the simulator
and estimators consume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from typing import TYPE_CHECKING

from repro.channels import CPU, DRAM, Channel
from repro.connectivity.component import ConnectivityComponent
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.apex.architectures import MemoryArchitecture

#: CPU block area used for wire-length estimation only (the CPU is not
#: part of the memory-system cost the paper reports).
CPU_BLOCK_GATES = 120_000.0

#: Pad-ring / I/O block stand-in area for the DRAM endpoint of
#: off-chip runs, again only for wire length.
DRAM_IO_BLOCK_GATES = 30_000.0


def cluster_ports(
    endpoints: Iterable[str], memory: MemoryArchitecture | None
) -> int:
    """Component ports needed to attach ``endpoints``.

    Single-ported modules, the CPU, and the DRAM each take one port; a
    multi-port module (``ports`` attribute > 1, e.g.
    :class:`~repro.memory.multiport.MultiPortSram`) needs one component
    port per access port, so its presence can make a small preset
    (dedicated, mux) infeasible. With no ``memory`` to consult, every
    endpoint counts one port — the pre-multi-port behaviour.
    """
    total = 0
    for endpoint in endpoints:
        if memory is None or endpoint == CPU or endpoint == DRAM:
            total += 1
        else:
            total += int(getattr(memory.module(endpoint), "ports", 1))
    return total


def attached_area_gates(
    endpoints: Iterable[str], memory: MemoryArchitecture
) -> float:
    """Summed block area of ``endpoints`` (the wire-length proxy).

    Shared by :meth:`ConnectivityArchitecture.cost_gates` /
    ``energy_nj_per_byte`` and the columnar Phase-I estimator, which
    prices clusters without materializing architecture objects; the
    fold order over the (sorted) endpoints is part of the bit-identity
    contract between the two.
    """
    area = 0.0
    for endpoint in endpoints:
        if endpoint == CPU:
            area += CPU_BLOCK_GATES
        elif endpoint == DRAM:
            area += DRAM_IO_BLOCK_GATES
        else:
            area += memory.module(endpoint).area_gates
    return area


@dataclass(frozen=True)
class ClusterAssignment:
    """One cluster of channels implemented by one component instance."""

    channels: tuple[Channel, ...]
    preset_name: str
    component: ConnectivityComponent

    @property
    def endpoints(self) -> tuple[str, ...]:
        """Distinct endpoints attached to the component, sorted."""
        names: set[str] = set()
        for channel in self.channels:
            names.update(channel.endpoints())
        return tuple(sorted(names))

    @property
    def crosses_chip(self) -> bool:
        """True when the cluster carries chip-boundary channels."""
        return any(c.crosses_chip for c in self.channels)


class ConnectivityArchitecture:
    """An assignment of every channel to a connectivity component."""

    def __init__(self, name: str, clusters: Iterable[ClusterAssignment]) -> None:
        self.name = name
        self.clusters = tuple(clusters)
        if not self.clusters:
            raise ConfigurationError(f"connectivity '{name}' has no clusters")
        self._by_channel: dict[Channel, ClusterAssignment] = {}
        for cluster in self.clusters:
            if not cluster.channels:
                raise ConfigurationError(
                    f"empty cluster in connectivity '{name}'"
                )
            crossing = [c.crosses_chip for c in cluster.channels]
            if any(crossing) and not all(crossing):
                raise ConfigurationError(
                    f"cluster {cluster.preset_name} mixes on-chip and "
                    f"chip-boundary channels"
                )
            if any(crossing) and cluster.component.on_chip:
                raise ConfigurationError(
                    f"on-chip component '{cluster.component.name}' cannot "
                    f"implement chip-boundary channels"
                )
            if not any(crossing) and not cluster.component.on_chip:
                raise ConfigurationError(
                    f"off-chip component '{cluster.component.name}' wasted "
                    f"on on-chip channels"
                )
            ports = len(cluster.endpoints)
            if ports > cluster.component.max_ports:
                raise ConfigurationError(
                    f"component '{cluster.component.name}' supports "
                    f"{cluster.component.max_ports} ports, cluster needs {ports}"
                )
            for channel in cluster.channels:
                if channel in self._by_channel:
                    raise ConfigurationError(
                        f"channel {channel.name} assigned twice in '{name}'"
                    )
                self._by_channel[channel] = cluster

    # -- queries -----------------------------------------------------

    def channels(self) -> tuple[Channel, ...]:
        """All implemented channels."""
        return tuple(self._by_channel)

    def cluster_for(self, channel: Channel) -> ClusterAssignment:
        """The cluster implementing ``channel``."""
        try:
            return self._by_channel[channel]
        except KeyError:
            raise ConfigurationError(
                f"connectivity '{self.name}' does not implement {channel.name}"
            ) from None

    def component_for(self, channel: Channel) -> ConnectivityComponent:
        """The component instance carrying ``channel``."""
        return self.cluster_for(channel).component

    def _attached_area(
        self, cluster: ClusterAssignment, memory: MemoryArchitecture
    ) -> float:
        return attached_area_gates(cluster.endpoints, memory)

    def cost_gates(self, memory: MemoryArchitecture) -> float:
        """Total connectivity cost: controllers plus wire area."""
        total = 0.0
        for cluster in self.clusters:
            total += cluster.component.cost_gates(
                ports=cluster_ports(cluster.endpoints, memory),
                attached_area_gates=self._attached_area(cluster, memory),
            )
        return total

    def energy_nj_per_byte(
        self, channel: Channel, memory: MemoryArchitecture
    ) -> float:
        """Per-byte transfer energy on ``channel``'s component."""
        cluster = self.cluster_for(channel)
        return cluster.component.energy_nj_per_byte(
            ports=cluster_ports(cluster.endpoints, memory),
            attached_area_gates=self._attached_area(cluster, memory),
        )

    def describe(self) -> str:
        """Multi-line human description used in reports."""
        lines = [f"{self.name}: {len(self.clusters)} connections"]
        for cluster in self.clusters:
            channel_names = ", ".join(c.name for c in cluster.channels)
            lines.append(f"  {cluster.component.describe()} <- {channel_names}")
        return "\n".join(lines)

    def preset_signature(self) -> tuple[tuple[tuple[str, ...], str], ...]:
        """Hashable summary used to deduplicate equivalent assignments."""
        return tuple(
            sorted(
                (tuple(sorted(c.name for c in cluster.channels)), cluster.preset_name)
                for cluster in self.clusters
            )
        )

    def full_signature(self) -> tuple:
        """Content signature including component configurations.

        :meth:`preset_signature` identifies an assignment *within one
        library*; this variant additionally hashes each component's
        timing/width/protocol configuration, so custom components that
        reuse a preset label (e.g. the ``custom_protocol_timing``
        example) cannot collide in the :mod:`repro.exec` result cache.
        """
        return tuple(
            sorted(
                (
                    tuple(sorted(c.name for c in cluster.channels)),
                    cluster.preset_name,
                    cluster.component.config_signature(),
                )
                for cluster in self.clusters
            )
        )

    def __repr__(self) -> str:
        return f"<ConnectivityArchitecture {self.name} ({len(self.clusters)} clusters)>"


def dram_backing_latency(
    connectivity: "ConnectivityArchitecture",
    memory: MemoryArchitecture,
    channel: Channel,
    burst_bytes: int,
) -> int:
    """Round-trip latency hint of a backing fetch over ``channel``.

    Used to parameterize prefetch-timeliness in DMA-like modules: the
    off-chip transfer latency plus the DRAM core latency.
    """
    component = connectivity.component_for(channel)
    return component.timing(burst_bytes).latency + memory.dram.core_latency


def build_cluster(
    channels: Iterable[Channel],
    preset_name: str,
    component: ConnectivityComponent,
) -> ClusterAssignment:
    """Convenience constructor keeping tuple conversion in one place."""
    return ClusterAssignment(
        channels=tuple(channels), preset_name=preset_name, component=component
    )
