"""High-level wire length, area, and energy models.

The paper drives its connectivity exploration with the interconnect
models of Chen et al. (integrated floorplanning + interconnect
planning, ICCAD'99) and Deng/Maly (2.5-D integration, ISPD'01). At the
abstraction level of this exploration those reduce to:

* wire *length* grows with the linear dimension of the attached blocks
  (bigger memories → longer runs) and with fanout (more taps → longer
  trunks);
* wire *area* (hence gate-equivalent cost) is length × lane count ×
  pitch;
* wire *energy* is the CV² switching cost of the run, with a large
  additive pad term for off-chip crossings — which is why "the
  connectivity consumes a small amount of power compared to the memory
  modules" yet dedicated wires still show up in the cost axis.

Process constants approximate a 0.25 µm embedded process (the paper's
era); only relative ordering matters to the exploration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Silicon area of one basic gate, in mm^2 (0.25 µm standard cell).
GATE_AREA_MM2 = 1.0e-5

#: Routed wire pitch (one lane), in mm.
WIRE_PITCH_MM = 1.0e-3

#: Wire capacitance per mm, in pF.
WIRE_CAP_PF_PER_MM = 0.21

#: Package pad + trace capacitance for one off-chip lane, in pF.
PAD_CAP_PF = 9.0

#: Supply voltage, volts.
VDD = 2.5

#: Control lanes routed alongside the data lanes (addr/req/grant...).
CONTROL_LANES = 12


def wire_length_mm(
    attached_area_gates: float,
    fanout: int,
    point_to_point: bool = False,
) -> float:
    """Estimated routed length of one connection's wire run.

    ``attached_area_gates`` is the summed area of the blocks the wire
    must visit; its square root is the floorplan's linear dimension.
    Shared trunks grow with fanout; point-to-point (dedicated/mux spoke)
    runs pay the full block-to-block distance per channel, which is the
    paper's "longer connection wires" cost of dedicated connections.
    """
    if attached_area_gates < 0:
        raise ConfigurationError(
            f"negative attached area: {attached_area_gates}"
        )
    if fanout < 1:
        raise ConfigurationError(f"fanout must be >= 1: {fanout}")
    span_mm = math.sqrt(max(attached_area_gates, 1.0) * GATE_AREA_MM2)
    if point_to_point:
        # Each endpoint pair routed individually across the floorplan.
        return span_mm * (0.8 + 0.45 * fanout)
    # A shared trunk with short taps.
    return span_mm * (1.0 + 0.18 * (fanout - 1))


def wire_area_gates(length_mm: float, data_lanes: int) -> float:
    """Gate-equivalent cost of a wire run (routing area displaced)."""
    if length_mm < 0 or data_lanes <= 0:
        raise ConfigurationError(
            f"bad wire geometry: {length_mm} mm x {data_lanes} lanes"
        )
    lanes = data_lanes + CONTROL_LANES
    return length_mm * lanes * WIRE_PITCH_MM / GATE_AREA_MM2


def wire_energy_nj_per_byte(length_mm: float, off_chip: bool = False) -> float:
    """Switching energy of moving one byte over the run, in nJ.

    E = 8 lanes × ½ C V² with C the per-lane capacitance (wire, plus
    pads when the run crosses the chip boundary). An activity factor of
    one transition per bit is assumed — pessimistic but uniform.
    """
    if length_mm < 0:
        raise ConfigurationError(f"negative length: {length_mm}")
    cap_pf = WIRE_CAP_PF_PER_MM * length_mm
    if off_chip:
        cap_pf += PAD_CAP_PF
    joules_per_bit = 0.5 * cap_pf * 1e-12 * VDD * VDD
    return joules_per_bit * 8 * 1e9


@dataclass(frozen=True)
class WireModel:
    """Resolved wire figures for one instantiated connection."""

    length_mm: float
    area_gates: float
    energy_nj_per_byte: float

    @staticmethod
    def for_connection(
        attached_area_gates: float,
        fanout: int,
        data_lanes: int,
        point_to_point: bool = False,
        off_chip: bool = False,
    ) -> "WireModel":
        """Build the wire model of a connection instance."""
        length = wire_length_mm(attached_area_gates, fanout, point_to_point)
        return WireModel(
            length_mm=length,
            area_gates=wire_area_gates(length, data_lanes),
            energy_nj_per_byte=wire_energy_nj_per_byte(length, off_chip),
        )
