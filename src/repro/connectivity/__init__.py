"""Connectivity IP library: buses, muxes, dedicated links, wire models.

Mirrors the paper's connectivity library: "standard on-chip busses
(e.g., AMBA busses), MUX-based connections, and off-chip busses". Each
component carries the architectural parameters the exploration consumes
— "resource usage, latency, pipelining, parallelism, split transaction
model, and bitwidth" — plus analytic cost (controller gates + wire
area) and energy-per-byte models driven by the wire-length estimates of
Chen et al. (floorplan-aware) and Deng/Maly (2.5-D) that the paper
cites.
"""

from repro.connectivity.amba import AhbBus, ApbBus, AsbBus
from repro.connectivity.component import ConnectivityComponent, TransferTiming
from repro.connectivity.dedicated import DedicatedConnection
from repro.connectivity.library import (
    ComponentFamily,
    ConnectivityLibrary,
    ConnectivityPreset,
    component_families,
    component_family,
    default_connectivity_library,
    register_component_family,
)
from repro.connectivity.mesh import MeshConnection
from repro.connectivity.mux import MuxConnection
from repro.connectivity.offchip import OffChipBus
from repro.connectivity.wire import (
    WireModel,
    wire_energy_nj_per_byte,
    wire_length_mm,
)

__all__ = [
    "AhbBus",
    "ApbBus",
    "AsbBus",
    "ComponentFamily",
    "ConnectivityComponent",
    "ConnectivityLibrary",
    "ConnectivityPreset",
    "DedicatedConnection",
    "MeshConnection",
    "MuxConnection",
    "OffChipBus",
    "TransferTiming",
    "WireModel",
    "component_families",
    "component_family",
    "default_connectivity_library",
    "register_component_family",
    "wire_energy_nj_per_byte",
    "wire_length_mm",
]
