"""2D mesh (NoC) connectivity: XY-routed packet links.

A :class:`MeshConnection` models a ``rows`` x ``cols`` grid of
wormhole routers with dimension-ordered (XY) routing, folded into the
library's closed-form transfer model:

* **per-hop latency** — the head flit crosses one router plus one
  link per hop; ``base_latency`` is ``per_hop_latency`` times the
  expected XY route length between two uniformly placed endpoints
  (mean Manhattan distance, plus the ejection hop).
* **link contention** — wormhole switching streams body flits behind
  the head, so the component is ``pipelined``: its occupancy is the
  data cycles only, and concurrent transactions serialize on the
  shared fabric through the cluster occupancy timeline exactly like a
  pipelined bus. Packets release the fabric while a slave (e.g. the
  DRAM core) is busy, hence ``split_transactions``.
* **per-hop energy** — each hop charges its link and router crossbar;
  ``energy_scale`` grows with the expected hop count.
* **cost** — every router carries an arbiter + crossbar, so protocol
  complexity scales with the router count; ``max_ports`` is the
  router count (one attachment per tile).
"""

from __future__ import annotations

import math

from repro.connectivity.component import ConnectivityComponent
from repro.errors import ConfigurationError

__all__ = ["MeshConnection", "mean_xy_hops"]

#: Fractional energy added per expected hop beyond the first (link +
#: router crossbar traversal relative to a single shared-bus hop).
HOP_ENERGY_OVERHEAD = 0.2

#: Protocol-complexity contribution of one router's arbiter/crossbar,
#: relative to a simple arbitrated bus controller.
ROUTER_COMPLEXITY = 0.35


def mean_xy_hops(rows: int, cols: int) -> int:
    """Expected XY route length on a ``rows`` x ``cols`` mesh.

    Mean Manhattan distance between two independently uniform tiles —
    ``(n^2 - 1) / 3n`` per dimension — plus one ejection hop, rounded
    up to a whole number of cycles-worth of hops.
    """
    if rows < 1 or cols < 1:
        raise ConfigurationError(f"mesh must be at least 1x1: {rows}x{cols}")
    mean_distance = (rows * rows - 1) / (3 * rows) + (cols * cols - 1) / (
        3 * cols
    )
    return math.ceil(mean_distance) + 1


class MeshConnection(ConnectivityComponent):
    """Wormhole-routed 2D mesh fabric, XY dimension-ordered."""

    kind = "mesh"

    def __init__(
        self,
        name: str = "mesh",
        rows: int = 2,
        cols: int = 2,
        width_bytes: int = 4,
        per_hop_latency: int = 1,
        cycles_per_beat: int = 1,
    ) -> None:
        if per_hop_latency < 1:
            raise ConfigurationError(
                f"per-hop latency must be >= 1: {per_hop_latency}"
            )
        hops = mean_xy_hops(rows, cols)
        routers = rows * cols
        super().__init__(
            name=name,
            width_bytes=width_bytes,
            base_latency=per_hop_latency * hops,
            cycles_per_beat=cycles_per_beat,
            pipelined=True,  # wormhole: body flits stream behind the head
            split_transactions=True,
            max_ports=routers,
            protocol_complexity=ROUTER_COMPLEXITY
            * routers
            * (width_bytes / 4),
            on_chip=True,
            point_to_point=False,
            energy_scale=1.0 + HOP_ENERGY_OVERHEAD * (hops - 1),
        )
        self.rows = rows
        self.cols = cols
        self.per_hop_latency = per_hop_latency

    def describe(self) -> str:
        return (
            f"{self.name}: {self.width_bytes * 8}-bit {self.rows}x{self.cols} "
            f"XY mesh ({self.per_hop_latency}cyc/hop, wormhole)"
        )
