"""AMBA bus models: AHB, ASB, APB.

Architectural parameters follow the public AMBA specification the
paper's library is built from:

* **AHB** (Advanced High-performance Bus) — pipelined address/data
  phases, burst transfers, split transactions; the highest-performance
  and highest-cost option ("the wiring and bus controller area
  increases further").
* **ASB** (Advanced System Bus) — the earlier system bus: arbitrated,
  not pipelined, no split transactions.
* **APB** (Advanced Peripheral Bus) — the low-power peripheral bus:
  two-cycle unpipelined accesses, minimal controller, lowest energy.
"""

from __future__ import annotations

from repro.connectivity.component import ConnectivityComponent


class AhbBus(ConnectivityComponent):
    """AMBA AHB: pipelined, split-transaction, optionally wide."""

    kind = "ahb"

    def __init__(self, name: str = "ahb", width_bytes: int = 4) -> None:
        super().__init__(
            name=name,
            width_bytes=width_bytes,
            base_latency=2,  # arbitration + address phase
            cycles_per_beat=1,
            pipelined=True,
            split_transactions=True,
            max_ports=16,
            protocol_complexity=1.8 * (width_bytes / 4),
            on_chip=True,
            point_to_point=False,
            energy_scale=1.0,
        )


class AsbBus(ConnectivityComponent):
    """AMBA ASB: arbitrated system bus, unpipelined, no split."""

    kind = "asb"

    def __init__(self, name: str = "asb") -> None:
        super().__init__(
            name=name,
            width_bytes=4,
            base_latency=2,
            cycles_per_beat=1,
            pipelined=False,
            split_transactions=False,
            max_ports=16,
            protocol_complexity=1.0,
            on_chip=True,
            point_to_point=False,
            energy_scale=1.0,
        )


class ApbBus(ConnectivityComponent):
    """AMBA APB: two-cycle peripheral bus, minimal cost and energy."""

    kind = "apb"

    def __init__(self, name: str = "apb") -> None:
        super().__init__(
            name=name,
            width_bytes=4,
            base_latency=1,  # setup phase
            cycles_per_beat=2,  # setup+enable per beat, unpipelined
            pipelined=False,
            split_transactions=False,
            max_ports=16,
            protocol_complexity=0.5,
            on_chip=True,
            point_to_point=False,
            energy_scale=0.75,  # low-activity peripheral signalling
        )
