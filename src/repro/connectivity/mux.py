"""MUX-based connection model.

A multiplexer tree steering the CPU port across a few memory modules:
single-cycle select, no arbitration protocol, but point-to-point spokes
from every module to the mux — so the wire cost grows quickly with
fanout ("the latency of the accesses is small, at the expense of
longer connection wires").
"""

from __future__ import annotations

from repro.connectivity.component import ConnectivityComponent


class MuxConnection(ConnectivityComponent):
    """MUX-based connection: fast, cheap control, expensive wires."""

    kind = "mux"

    def __init__(self, name: str = "mux", max_ports: int = 4) -> None:
        super().__init__(
            name=name,
            width_bytes=4,
            base_latency=1,  # select settling
            cycles_per_beat=1,
            pipelined=True,  # pure datapath, no protocol turnaround
            split_transactions=False,
            max_ports=max_ports,
            protocol_complexity=0.35,
            on_chip=True,
            point_to_point=True,
            energy_scale=1.0,
        )
