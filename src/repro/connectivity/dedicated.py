"""Dedicated point-to-point connection model.

A private link between exactly two endpoints: zero protocol latency
and full bandwidth, but the wires are exclusive to one channel — the
most expensive way to implement a channel per byte moved, and the
paper's example of the "naive implementation [whose] cost is
prohibitive" when used for everything.
"""

from __future__ import annotations

from repro.connectivity.component import ConnectivityComponent


class DedicatedConnection(ConnectivityComponent):
    """Dedicated link: no arbitration, exclusive wiring."""

    kind = "dedicated"

    def __init__(self, name: str = "dedicated", width_bytes: int = 4) -> None:
        super().__init__(
            name=name,
            width_bytes=width_bytes,
            base_latency=0,
            cycles_per_beat=1,
            pipelined=True,
            split_transactions=False,
            max_ports=2,
            protocol_complexity=0.2,
            on_chip=True,
            point_to_point=True,
            energy_scale=1.0,
        )
