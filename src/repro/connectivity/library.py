"""The connectivity IP library: named presets of connection components."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Iterable

from repro.connectivity.amba import AhbBus, ApbBus, AsbBus
from repro.connectivity.component import ConnectivityComponent
from repro.connectivity.dedicated import DedicatedConnection
from repro.connectivity.mesh import MeshConnection
from repro.connectivity.mux import MuxConnection
from repro.connectivity.offchip import OffChipBus
from repro.errors import LibraryError, UnknownPresetError


@dataclass(frozen=True)
class ComponentFamily:
    """One registered connectivity-component family.

    The mirror of :class:`repro.memory.library.ModuleType` for the
    connectivity side: a stable string name, the component class, and
    an ``example`` factory feeding the contract tests.
    """

    name: str
    cls: type[ConnectivityComponent]
    off_chip_capable: bool
    example: Callable[[], ConnectivityComponent] = field(compare=False)


_COMPONENT_FAMILIES: dict[str, ComponentFamily] = {}


def register_component_family(
    name: str,
    cls: type[ConnectivityComponent],
    example: Callable[[], ConnectivityComponent],
    off_chip_capable: bool = False,
) -> ComponentFamily:
    """Register a connectivity family under a stable string name."""
    if not (isinstance(cls, type) and issubclass(cls, ConnectivityComponent)):
        raise LibraryError(
            f"component family '{name}' is not a ConnectivityComponent: {cls!r}"
        )
    existing = _COMPONENT_FAMILIES.get(name)
    if existing is not None:
        if existing.cls is cls:
            return existing
        raise LibraryError(
            f"component family '{name}' already registered for "
            f"{existing.cls.__name__}"
        )
    entry = ComponentFamily(
        name=name, cls=cls, off_chip_capable=off_chip_capable, example=example
    )
    _COMPONENT_FAMILIES[name] = entry
    return entry


def component_families() -> tuple[ComponentFamily, ...]:
    """All registered connectivity families, sorted by name."""
    return tuple(_COMPONENT_FAMILIES[name] for name in sorted(_COMPONENT_FAMILIES))


def component_family(name: str) -> ComponentFamily:
    """Look up one registered connectivity family by name."""
    try:
        return _COMPONENT_FAMILIES[name]
    except KeyError:
        raise UnknownPresetError(
            f"no component family '{name}'; "
            f"known: {', '.join(sorted(_COMPONENT_FAMILIES))}"
        ) from None


@dataclass(frozen=True)
class ConnectivityPreset:
    """A named factory for one connectivity-library entry.

    ``off_chip_capable`` marks the presets allowed to implement
    channels that cross the chip boundary.
    """

    name: str
    kind: str
    off_chip_capable: bool
    build: Callable[[], ConnectivityComponent] = field(compare=False)

    @cached_property
    def max_ports(self) -> int:
        """Port capacity of the preset's component, built once.

        Compatibility filtering queries this for every (cluster,
        preset) pair during allocation; memoizing it avoids
        constructing a throwaway component per query. (``cached_property``
        writes to the instance ``__dict__``, which a frozen dataclass
        permits — only ``__setattr__`` is blocked.)
        """
        return self.build().max_ports

    def instantiate(self, instance_name: str | None = None) -> ConnectivityComponent:
        """Create a fresh component, optionally renaming the instance."""
        component = self.build()
        if instance_name is not None:
            component.name = instance_name
        return component


class ConnectivityLibrary:
    """A collection of connectivity presets, queryable by capability."""

    def __init__(self, presets: Iterable[ConnectivityPreset] = ()) -> None:
        self._presets: dict[str, ConnectivityPreset] = {}
        for preset in presets:
            self.add(preset)

    def add(self, preset: ConnectivityPreset) -> None:
        """Register a preset; names must be unique."""
        if preset.name in self._presets:
            raise LibraryError(f"duplicate connectivity preset '{preset.name}'")
        self._presets[preset.name] = preset

    def get(self, name: str) -> ConnectivityPreset:
        """Look up a preset by name."""
        try:
            return self._presets[name]
        except KeyError:
            raise UnknownPresetError(
                f"no connectivity preset '{name}'; "
                f"known: {', '.join(sorted(self._presets))}"
            ) from None

    def on_chip_choices(self) -> list[ConnectivityPreset]:
        """Presets usable for channels between on-chip endpoints."""
        return [p for p in self._presets.values() if not p.off_chip_capable]

    def off_chip_choices(self) -> list[ConnectivityPreset]:
        """Presets usable for channels crossing the chip boundary."""
        return [p for p in self._presets.values() if p.off_chip_capable]

    def names(self) -> tuple[str, ...]:
        """All preset names, in registration order."""
        return tuple(self._presets)

    def __len__(self) -> int:
        return len(self._presets)

    def __contains__(self, name: str) -> bool:
        return name in self._presets


def default_connectivity_library() -> ConnectivityLibrary:
    """The connectivity library of the paper's experiments.

    On-chip: dedicated links, MUX-based connections, AMBA APB / ASB /
    AHB (narrow and wide). Off-chip: 16- and 32-bit pad buses.
    """
    library = ConnectivityLibrary()
    entries: list[tuple[str, str, bool, Callable[[], ConnectivityComponent]]] = [
        ("dedicated", "dedicated", False, lambda: DedicatedConnection("dedicated")),
        ("mux", "mux", False, lambda: MuxConnection("mux")),
        ("apb", "apb", False, lambda: ApbBus("apb")),
        ("asb", "asb", False, lambda: AsbBus("asb")),
        ("ahb", "ahb", False, lambda: AhbBus("ahb", width_bytes=4)),
        ("ahb_wide", "ahb", False, lambda: AhbBus("ahb_wide", width_bytes=8)),
        ("mesh_2x2", "mesh", False, lambda: MeshConnection("mesh_2x2", 2, 2)),
        (
            "mesh_4x4",
            "mesh",
            False,
            lambda: MeshConnection("mesh_4x4", 4, 4, width_bytes=8),
        ),
        ("offchip_16", "offchip", True, lambda: OffChipBus("offchip_16", 2)),
        ("offchip_32", "offchip", True, lambda: OffChipBus("offchip_32", 4)),
    ]
    for name, kind, off_chip, build in entries:
        library.add(
            ConnectivityPreset(
                name=name, kind=kind, off_chip_capable=off_chip, build=build
            )
        )
    return library


# The built-in connectivity families, mirroring the memory-side
# register_module_type() calls.
register_component_family(
    "dedicated", DedicatedConnection, lambda: DedicatedConnection("dedicated")
)
register_component_family("mux", MuxConnection, lambda: MuxConnection("mux"))
register_component_family("apb", ApbBus, lambda: ApbBus("apb"))
register_component_family("asb", AsbBus, lambda: AsbBus("asb"))
register_component_family("ahb", AhbBus, lambda: AhbBus("ahb", width_bytes=4))
register_component_family(
    "mesh", MeshConnection, lambda: MeshConnection("mesh", 2, 2)
)
register_component_family(
    "offchip",
    OffChipBus,
    lambda: OffChipBus("offchip", 4),
    off_chip_capable=True,
)
