"""Instrumented blocked matrix multiply (scientific-kernel workload).

The paper evaluates on "large multimedia and scientific applications";
this workload supplies the scientific side: a cache-blocked
``C = A × B`` with the canonical three-matrix traffic mix —

* ``matrix_a`` — row-panel reads, sequential within a tile row
  (STREAM at the panel level);
* ``matrix_b`` — column-panel reads re-visited once per A-panel: the
  structure whose reuse a blocked schedule (and a sufficiently large
  cache) captures (INDEXED);
* ``matrix_c`` — accumulator tile, read-modify-write (INDEXED: small,
  very hot);
* ``misc`` — whole-process background traffic (RANDOM).

Element traffic is recorded at a configurable stride so traces stay
laptop-sized while the tile-level locality structure — the part the
exploration exploits — is preserved exactly.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.trace.events import TraceBuilder
from repro.trace.patterns import AccessPattern
from repro.util.rng import make_rng
from repro.workloads.base import (
    AddressMap,
    MiscTraffic,
    Workload,
    register_workload,
)

ELEMENT_BYTES = 4
TILE = 8

#: Record every Nth element access (see module docstring).
RECORD_STRIDE = 2


@register_workload
class MatmulWorkload(Workload):
    """Blocked matrix multiply over synthetic matrices.

    ``scale`` multiplies the matrix area (default 32×32 at scale 1.0,
    about 30k recorded accesses).
    """

    name = "matmul"

    base_side = 32

    @property
    def pattern_hints(self) -> Mapping[str, AccessPattern]:
        return {
            "matrix_a": AccessPattern.STREAM,
            "matrix_b": AccessPattern.INDEXED,
            "matrix_c": AccessPattern.INDEXED,
            "misc": AccessPattern.RANDOM,
        }

    def run(self, builder: TraceBuilder) -> None:
        rng = make_rng(f"matmul-{self.seed}")
        side = max(
            TILE, int(self.base_side * np.sqrt(self.scale)) // TILE * TILE
        )
        layout = AddressMap()
        matrix_bytes = side * side * ELEMENT_BYTES
        a_base = layout.allocate("matrix_a", matrix_bytes)
        b_base = layout.allocate("matrix_b", matrix_bytes)
        c_base = layout.allocate("matrix_c", matrix_bytes)
        misc_footprint = 16_384
        misc_base = layout.allocate("misc", misc_footprint)
        misc = MiscTraffic(builder, rng, misc_base, misc_footprint)

        a = rng.standard_normal((side, side))
        b = rng.standard_normal((side, side))
        c = np.zeros((side, side))

        def element(base: int, row: int, col: int) -> int:
            return base + (row * side + col) * ELEMENT_BYTES

        for i0 in range(0, side, TILE):
            for j0 in range(0, side, TILE):
                for k0 in range(0, side, TILE):
                    # One TILE^3 inner block: C[i0:,j0:] += A[i0:,k0:] @ B[k0:,j0:]
                    c[i0 : i0 + TILE, j0 : j0 + TILE] += (
                        a[i0 : i0 + TILE, k0 : k0 + TILE]
                        @ b[k0 : k0 + TILE, j0 : j0 + TILE]
                    )
                    for i in range(0, TILE, 1):
                        for k in range(0, TILE, RECORD_STRIDE):
                            builder.read(
                                element(a_base, i0 + i, k0 + k),
                                ELEMENT_BYTES,
                                "matrix_a",
                            )
                            builder.read(
                                element(b_base, k0 + k, j0 + i % TILE),
                                ELEMENT_BYTES,
                                "matrix_b",
                            )
                            builder.compute(1)
                        builder.read(
                            element(c_base, i0 + i, j0 + i % TILE),
                            ELEMENT_BYTES,
                            "matrix_c",
                        )
                        builder.write(
                            element(c_base, i0 + i, j0 + i % TILE),
                            ELEMENT_BYTES,
                            "matrix_c",
                        )
                        builder.compute(2)
                    misc.access()
        # Keep the numerics honest: the recorded kernel must match
        # the reference product.
        assert np.allclose(c, a @ b)
