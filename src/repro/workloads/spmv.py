"""Instrumented CSR sparse matrix-vector multiply (scientific kernel).

Sparse matrix-vector products dominate iterative solvers and graph
analytics; their traffic mix — long sequential sweeps over the CSR
arrays punctuated by data-dependent gathers into the dense vector —
is exactly the memory-bound pattern multi-channel DRAM targets, so
this workload anchors the channel-scaling experiments
(``benchmarks/bench_channels.py``).

The matrix is the adjacency structure of a synthetic power-law graph
(preferential attachment), giving a realistic skewed row-degree
distribution: a few hub columns are gathered constantly while the
tail is touched rarely.

* ``row_ptr`` — CSR row offsets, one sequential read per row (STREAM).
* ``col_idx`` — column indices, swept in order (STREAM).
* ``values`` — matrix non-zeros, swept in lockstep (STREAM).
* ``x_vec`` — the dense source vector, gathered per non-zero at
  data-dependent offsets (INDEXED: power-law hot hubs).
* ``y_vec`` — the dense result vector, streamed out (STREAM).
* ``misc`` — whole-process background traffic (RANDOM).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.trace.events import TraceBuilder
from repro.trace.patterns import AccessPattern
from repro.util.rng import make_rng
from repro.workloads.base import (
    AddressMap,
    MiscTraffic,
    Workload,
    register_workload,
)

INDEX_BYTES = 4
VALUE_BYTES = 8


def _power_law_graph(
    rows: int, mean_degree: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """CSR structure of a preferential-attachment digraph.

    Returns ``(row_ptr, col_idx)``. Each row's out-edges pick targets
    with probability proportional to current in-degree (plus one), so
    column popularity follows a power law — the gather hot-set the
    workload is built around.
    """
    degrees = np.ones(rows, dtype=np.float64)
    row_ptr = np.zeros(rows + 1, dtype=np.int64)
    columns: list[np.ndarray] = []
    for row in range(rows):
        fanout = 1 + int(rng.integers(0, 2 * mean_degree))
        targets = rng.choice(rows, size=fanout, p=degrees / degrees.sum())
        targets = np.unique(targets)
        degrees[targets] += 1.0
        columns.append(np.sort(targets))
        row_ptr[row + 1] = row_ptr[row] + len(targets)
    return row_ptr, np.concatenate(columns)


@register_workload
class SpmvWorkload(Workload):
    """CSR SpMV over a synthetic power-law graph.

    ``scale`` multiplies the row count (default 600 rows at scale 1.0,
    roughly 25k recorded accesses over two multiply passes).
    """

    name = "spmv"

    base_rows = 600
    mean_degree = 4
    passes = 2

    @property
    def pattern_hints(self) -> Mapping[str, AccessPattern]:
        return {
            "row_ptr": AccessPattern.STREAM,
            "col_idx": AccessPattern.STREAM,
            "values": AccessPattern.STREAM,
            "x_vec": AccessPattern.INDEXED,
            "y_vec": AccessPattern.STREAM,
            "misc": AccessPattern.RANDOM,
        }

    def run(self, builder: TraceBuilder) -> None:
        rng = make_rng(f"spmv-{self.seed}")
        rows = max(16, int(self.base_rows * self.scale))
        row_ptr, col_idx = _power_law_graph(rows, self.mean_degree, rng)
        values = rng.standard_normal(len(col_idx))
        x = rng.standard_normal(rows)

        layout = AddressMap()
        ptr_base = layout.allocate("row_ptr", (rows + 1) * INDEX_BYTES)
        idx_base = layout.allocate("col_idx", max(1, len(col_idx)) * INDEX_BYTES)
        val_base = layout.allocate("values", max(1, len(col_idx)) * VALUE_BYTES)
        x_base = layout.allocate("x_vec", rows * VALUE_BYTES)
        y_base = layout.allocate("y_vec", rows * VALUE_BYTES)
        misc_footprint = 16_384
        misc_base = layout.allocate("misc", misc_footprint)
        misc = MiscTraffic(builder, rng, misc_base, misc_footprint)

        y = np.zeros(rows)
        for _ in range(self.passes):
            builder.read(ptr_base, INDEX_BYTES, "row_ptr")
            for row in range(rows):
                start = int(row_ptr[row])
                end = int(row_ptr[row + 1])
                builder.read(
                    ptr_base + (row + 1) * INDEX_BYTES, INDEX_BYTES, "row_ptr"
                )
                acc = 0.0
                for k in range(start, end):
                    column = int(col_idx[k])
                    builder.read(idx_base + k * INDEX_BYTES, INDEX_BYTES, "col_idx")
                    builder.read(val_base + k * VALUE_BYTES, VALUE_BYTES, "values")
                    builder.read(
                        x_base + column * VALUE_BYTES, VALUE_BYTES, "x_vec"
                    )
                    acc += values[k] * x[column]
                    builder.compute(2)
                y[row] = acc
                builder.write(y_base + row * VALUE_BYTES, VALUE_BYTES, "y_vec")
                if row % 8 == 0:
                    misc.access()
            # The next pass multiplies by the updated vector (a power
            # iteration), so the gather targets stay hot.
            x = y / max(1e-9, float(np.abs(y).max()))
            y = np.zeros(rows)
