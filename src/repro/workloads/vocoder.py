"""Instrumented LPC speech encoder (stand-in for the GSM *vocoder*).

GSM voice encoding is frame-based linear-predictive coding: each 20 ms
frame of PCM samples is windowed, autocorrelated, fitted with LPC
coefficients (Levinson-Durbin), residual-filtered, quantized, and
emitted. The traffic is dominated by sample streams and small, hot
coefficient arrays — exactly the stream/scalar mix the paper exploits
with stream buffers and small SRAMs.

Data structures and their patterns:

* ``speech_in`` — 16-bit PCM input samples (STREAM).
* ``frame_buf`` — the working frame after windowing (INDEXED: small,
  re-read by the autocorrelation's nested loops).
* ``autocorr`` — autocorrelation lags r[0..ORDER] (SCALAR).
* ``lpc_coeffs`` — LPC coefficient vector (SCALAR).
* ``encoded_out`` — packed output frames (STREAM).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.trace.events import TraceBuilder
from repro.trace.patterns import AccessPattern
from repro.util.rng import make_rng
from repro.workloads.base import (
    AddressMap,
    MiscTraffic,
    Workload,
    register_workload,
)

FRAME_SAMPLES = 160
SAMPLE_BYTES = 2
LPC_ORDER = 8
COEFF_BYTES = 4
ENCODED_FRAME_BYTES = 36

#: Stride of the recorded inner-loop sample reads. The real kernels
#: touch every sample; recording every 4th keeps traces bounded while
#: preserving the stream/array traffic ratio.
SAMPLE_STRIDE = 4


@register_workload
class VocoderWorkload(Workload):
    """LPC encoding of synthetic voiced speech frames.

    ``scale`` multiplies the number of frames (default 24 frames at
    scale 1.0, about 35k recorded accesses).
    """

    name = "vocoder"

    base_frames = 24

    @property
    def pattern_hints(self) -> Mapping[str, AccessPattern]:
        return {
            "speech_in": AccessPattern.STREAM,
            "frame_buf": AccessPattern.INDEXED,
            "autocorr": AccessPattern.SCALAR,
            "lpc_coeffs": AccessPattern.SCALAR,
            "encoded_out": AccessPattern.STREAM,
            "misc": AccessPattern.RANDOM,
        }

    def run(self, builder: TraceBuilder) -> None:
        rng = make_rng(f"vocoder-{self.seed}")
        frames = max(1, int(self.base_frames * self.scale))
        total_samples = frames * FRAME_SAMPLES

        layout = AddressMap()
        in_base = layout.allocate("speech_in", total_samples * SAMPLE_BYTES)
        frame_base = layout.allocate("frame_buf", FRAME_SAMPLES * COEFF_BYTES)
        autocorr_base = layout.allocate("autocorr", (LPC_ORDER + 1) * COEFF_BYTES)
        lpc_base = layout.allocate("lpc_coeffs", LPC_ORDER * COEFF_BYTES)
        out_base = layout.allocate("encoded_out", frames * ENCODED_FRAME_BYTES)
        misc_footprint = 24_576
        misc_base = layout.allocate("misc", misc_footprint)
        misc = MiscTraffic(builder, rng, misc_base, misc_footprint)

        # Synthetic voiced speech: a pitch harmonic plus noise.
        t = np.arange(total_samples)
        pitch = 80 + 40 * rng.random()
        speech = (
            6000 * np.sin(2 * np.pi * t / pitch)
            + 2000 * np.sin(2 * np.pi * t / (pitch / 3.1))
            + 500 * rng.standard_normal(total_samples)
        ).astype(np.int32)

        for frame_index in range(frames):
            start = frame_index * FRAME_SAMPLES
            frame = speech[start : start + FRAME_SAMPLES].astype(np.float64)

            # Windowing: stream in samples, write the working frame.
            for i in range(0, FRAME_SAMPLES, SAMPLE_STRIDE):
                builder.read(
                    in_base + (start + i) * SAMPLE_BYTES, SAMPLE_BYTES, "speech_in"
                )
                builder.write(frame_base + i * COEFF_BYTES, COEFF_BYTES, "frame_buf")
                builder.compute(1)
                if i % (SAMPLE_STRIDE * 4) == 0:
                    misc.access()
            window = np.hamming(FRAME_SAMPLES)
            frame *= window

            # Autocorrelation r[k] = sum frame[i] * frame[i+k]: the
            # nested loops re-read the frame once per lag.
            r = np.empty(LPC_ORDER + 1)
            for lag in range(LPC_ORDER + 1):
                r[lag] = float(np.dot(frame[: FRAME_SAMPLES - lag], frame[lag:]))
                for i in range(0, FRAME_SAMPLES - lag, SAMPLE_STRIDE * 2):
                    builder.read(
                        frame_base + i * COEFF_BYTES, COEFF_BYTES, "frame_buf"
                    )
                builder.compute(2)
                builder.write(
                    autocorr_base + lag * COEFF_BYTES, COEFF_BYTES, "autocorr"
                )

            # Levinson-Durbin recursion over the small lag/coeff arrays.
            lpc = self._levinson_durbin(builder, r, autocorr_base, lpc_base)

            # Residual energy + quantization, then emit the frame.
            for i in range(0, FRAME_SAMPLES, SAMPLE_STRIDE * 2):
                builder.read(frame_base + i * COEFF_BYTES, COEFF_BYTES, "frame_buf")
                builder.compute(1)
            for k in range(LPC_ORDER):
                builder.read(lpc_base + k * COEFF_BYTES, COEFF_BYTES, "lpc_coeffs")
                misc.access()
            for b in range(0, ENCODED_FRAME_BYTES, 4):
                builder.write(
                    out_base + frame_index * ENCODED_FRAME_BYTES + b,
                    4,
                    "encoded_out",
                )
            builder.compute(4)
            # Quantized coefficients feed the next frame's predictor.
            _ = lpc

    @staticmethod
    def _levinson_durbin(
        builder: TraceBuilder,
        r: np.ndarray,
        autocorr_base: int,
        lpc_base: int,
    ) -> np.ndarray:
        """Levinson-Durbin with recorded coefficient-array traffic."""
        a = np.zeros(LPC_ORDER + 1)
        error = r[0] if r[0] > 0 else 1.0
        for order in range(1, LPC_ORDER + 1):
            builder.read(autocorr_base + order * COEFF_BYTES, COEFF_BYTES, "autocorr")
            acc = r[order]
            for j in range(1, order):
                builder.read(lpc_base + (j - 1) * COEFF_BYTES, COEFF_BYTES, "lpc_coeffs")
                acc -= a[j] * r[order - j]
            k = acc / error if error else 0.0
            new_a = a.copy()
            new_a[order] = k
            for j in range(1, order):
                new_a[j] = a[j] - k * a[order - j]
                builder.write(
                    lpc_base + (j - 1) * COEFF_BYTES, COEFF_BYTES, "lpc_coeffs"
                )
            builder.write(
                lpc_base + (order - 1) * COEFF_BYTES, COEFF_BYTES, "lpc_coeffs"
            )
            builder.compute(2)
            a = new_a
            error *= 1.0 - k * k
            if error <= 0:
                error = 1e-9
        return a[1:]
