"""Instrumented 2-D DCT image kernel (an extra multimedia workload).

The paper's experiments target "large multimedia and scientific
applications"; this workload adds a classic image-compression front
end — blockwise 8×8 two-dimensional DCT with zig-zag quantization, the
core of JPEG/MPEG — to exercise the exploration on a tiled-array
traffic mix the three paper benchmarks lack:

* ``image_in`` — raster-order pixel reads, but *blocked*: within each
  8×8 tile the row stride is the image width, so plain stream buffers
  only help partially and tile-sized SRAM blocks shine (STREAM at the
  tile level).
* ``block_buf`` — the working 8×8 tile, read repeatedly by the row and
  column DCT passes (INDEXED: tiny, very hot).
* ``coeff_table`` — the 8×8 cosine basis, read in both passes
  (SCALAR-sized constant table).
* ``quant_table`` — quantization divisors read per coefficient
  (SCALAR).
* ``coded_out`` — zig-zag run-length output stream (STREAM).
* ``misc`` — whole-process background traffic (RANDOM).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.trace.events import TraceBuilder
from repro.trace.patterns import AccessPattern
from repro.util.rng import make_rng
from repro.workloads.base import (
    AddressMap,
    MiscTraffic,
    Workload,
    register_workload,
)

BLOCK = 8
PIXEL_BYTES = 1
COEFF_BYTES = 4

#: Zig-zag scan order of an 8x8 block (JPEG's).
ZIGZAG = [
    (i, j)
    for s in range(2 * BLOCK - 1)
    for (i, j) in (
        [(s - j, j) for j in range(max(0, s - BLOCK + 1), min(s, BLOCK - 1) + 1)]
        if s % 2
        else [(j, s - j) for j in range(max(0, s - BLOCK + 1), min(s, BLOCK - 1) + 1)]
    )
]


def _dct_basis() -> np.ndarray:
    """The 8-point DCT-II basis matrix."""
    k = np.arange(BLOCK)
    basis = np.cos((2 * k[None, :] + 1) * k[:, None] * np.pi / (2 * BLOCK))
    basis[0, :] *= 1 / np.sqrt(2)
    return basis * np.sqrt(2 / BLOCK)


@register_workload
class DctWorkload(Workload):
    """Blockwise 8×8 2-D DCT over a synthetic image.

    ``scale`` multiplies the image area (default 48×48 pixels at scale
    1.0, about 30k recorded accesses).
    """

    name = "dct"

    base_side = 48

    @property
    def pattern_hints(self) -> Mapping[str, AccessPattern]:
        return {
            "image_in": AccessPattern.STREAM,
            "block_buf": AccessPattern.INDEXED,
            "coeff_table": AccessPattern.SCALAR,
            "quant_table": AccessPattern.SCALAR,
            "coded_out": AccessPattern.STREAM,
            "misc": AccessPattern.RANDOM,
        }

    def run(self, builder: TraceBuilder) -> None:
        rng = make_rng(f"dct-{self.seed}")
        side = max(BLOCK, int(self.base_side * np.sqrt(self.scale)) // BLOCK * BLOCK)

        layout = AddressMap()
        image_base = layout.allocate("image_in", side * side * PIXEL_BYTES)
        block_base = layout.allocate("block_buf", BLOCK * BLOCK * COEFF_BYTES)
        coeff_base = layout.allocate("coeff_table", BLOCK * BLOCK * COEFF_BYTES)
        quant_base = layout.allocate("quant_table", BLOCK * BLOCK)
        out_base = layout.allocate("coded_out", side * side * 2)
        misc_footprint = 16_384
        misc_base = layout.allocate("misc", misc_footprint)
        misc = MiscTraffic(builder, rng, misc_base, misc_footprint)

        # Synthetic image: smooth gradients plus texture, so DCT blocks
        # have realistic energy compaction.
        x = np.arange(side)
        image = (
            128
            + 60 * np.sin(2 * np.pi * x[None, :] / 37)
            + 40 * np.cos(2 * np.pi * x[:, None] / 23)
            + 12 * rng.standard_normal((side, side))
        ).astype(np.int32)

        basis = _dct_basis()
        quant = (1 + (np.arange(BLOCK)[:, None] + np.arange(BLOCK)[None, :])).astype(
            np.float64
        )
        out_cursor = 0

        for block_row in range(0, side, BLOCK):
            for block_col in range(0, side, BLOCK):
                # Load the tile: row-major pixel reads with image-width
                # stride between tile rows.
                tile = np.empty((BLOCK, BLOCK))
                for i in range(BLOCK):
                    for j in range(BLOCK):
                        address = (
                            image_base
                            + ((block_row + i) * side + block_col + j) * PIXEL_BYTES
                        )
                        builder.read(address, PIXEL_BYTES, "image_in")
                        tile[i, j] = image[block_row + i, block_col + j]
                    builder.write(
                        block_base + i * BLOCK * COEFF_BYTES,
                        BLOCK * COEFF_BYTES,
                        "block_buf",
                    )
                    builder.compute(2)
                misc.access()

                # Row pass then column pass; each re-reads the tile and
                # the cosine basis.
                transformed = basis @ (tile - 128.0) @ basis.T
                for passes in range(2):
                    for i in range(BLOCK):
                        builder.read(
                            block_base + i * BLOCK * COEFF_BYTES,
                            BLOCK * COEFF_BYTES,
                            "block_buf",
                        )
                        builder.read(
                            coeff_base + i * BLOCK * COEFF_BYTES,
                            BLOCK * COEFF_BYTES,
                            "coeff_table",
                        )
                        builder.compute(3)
                        builder.write(
                            block_base + i * BLOCK * COEFF_BYTES,
                            BLOCK * COEFF_BYTES,
                            "block_buf",
                        )
                misc.access()

                # Quantize and emit the non-zero coefficients in
                # zig-zag order (run-length style).
                emitted = 0
                for i, j in ZIGZAG:
                    builder.read(quant_base + (i * BLOCK + j), 1, "quant_table")
                    value = int(round(transformed[i, j] / quant[i, j]))
                    builder.compute(1)
                    if value:
                        builder.write(out_base + out_cursor, 2, "coded_out")
                        out_cursor = (out_cursor + 2) % (side * side * 2)
                        emitted += 1
                if emitted == 0:
                    builder.write(out_base + out_cursor, 2, "coded_out")
                    out_cursor = (out_cursor + 2) % (side * side * 2)
