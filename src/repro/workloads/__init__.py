"""Instrumented applications that generate tagged memory traces.

These stand in for the paper's benchmark programs: SPEC95 *compress*
and *li*, and the GSM *vocoder* — each reimplemented as a small but real
algorithmic kernel whose data structures are instrumented, so the trace
carries the same access-pattern mix the paper's exploration exploits
(see DESIGN.md section 2 for the substitution rationale). Two extra
workloads extend the evaluation beyond the paper's set: *dct*
(multimedia, blockwise 2-D DCT), *matmul* (scientific, blocked
matrix multiply) and *spmv* (scientific, CSR sparse matrix-vector
multiply over a power-law graph), plus a parametric *synthetic* mix
for controlled experiments.
"""

from repro.workloads.base import AddressMap, Workload, get_workload, workload_names
from repro.workloads.compress import CompressWorkload
from repro.workloads.dct import DctWorkload
from repro.workloads.li import LiWorkload
from repro.workloads.matmul import MatmulWorkload
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.vocoder import VocoderWorkload

__all__ = [
    "AddressMap",
    "CompressWorkload",
    "DctWorkload",
    "LiWorkload",
    "MatmulWorkload",
    "SpmvWorkload",
    "SyntheticWorkload",
    "VocoderWorkload",
    "Workload",
    "get_workload",
    "workload_names",
]
