"""Instrumented mini-Lisp interpreter (stand-in for SPEC95 *li*).

SPEC95 li (xlisp) exercises a cons-cell heap: programs, environments,
and data all live in cells linked by car/cdr pointers, so the dominant
pattern is pointer chasing (the paper's *self-indirect* class), plus
hash probing of the symbol table and stack traffic from the recursive
evaluator. This module is a genuine, small Lisp: an s-expression parser
that builds programs *in the instrumented heap*, and a recursive
evaluator with association-list environments — so variable lookup and
program traversal both chase pointers through recorded cells.

Data structures and their patterns:

* ``cons_heap`` — 16-byte cells (car, cdr); pointer-chased
  (SELF_INDIRECT).
* ``symbol_table`` — open-address interning table (INDEXED).
* ``eval_stack`` — evaluator activation frames (INDEXED: small, hot).
* ``globals`` — interpreter scalar state (SCALAR).
* ``misc`` — the interpreter's remaining whole-process traffic (string
  storage, runtime bookkeeping): zipf-placed accesses over a footprint
  only a cache can serve (RANDOM).

xlisp's GC is modelled at the *traffic* level: when the heap region
fills, a strided sweep read is recorded (the mark/sweep traffic) and
subsequent allocations reuse the region's addresses (as a compacting
collector would), while the interpreter's own cell storage is never
recycled — live data stays live, only the recorded addresses wrap.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import TraceError
from repro.trace.events import TraceBuilder
from repro.util.rng import make_rng
from repro.trace.patterns import AccessPattern
from repro.workloads.base import (
    AddressMap,
    MiscTraffic,
    Workload,
    register_workload,
)

CELL_BYTES = 16
HALF_CELL = 8
HEAP_CELLS = 8192
SYMBOL_SLOTS = 512
SYMBOL_ENTRY = 16
STACK_BYTES = 4096
FRAME_BYTES = 16


class Nil:
    """The empty list; a singleton."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "nil"


NIL = Nil()


@dataclass(frozen=True, slots=True)
class Symbol:
    """An interned symbol."""

    text: str


@dataclass(frozen=True, slots=True)
class CellRef:
    """Reference to a cons cell (index into the heap)."""

    index: int


@dataclass(frozen=True, slots=True)
class Closure:
    """A lambda value: parameter list and body are heap lists."""

    params: object
    body: object
    env: object


Value = object


MISC_FOOTPRINT = 40_960


class Machine:
    """The instrumented Lisp runtime: heap, symbols, stack."""

    def __init__(self, builder: TraceBuilder, layout: AddressMap, seed: int = 0) -> None:
        self.builder = builder
        self.heap_base = layout.allocate("cons_heap", HEAP_CELLS * CELL_BYTES)
        self.symtab_base = layout.allocate(
            "symbol_table", SYMBOL_SLOTS * SYMBOL_ENTRY
        )
        self.stack_base = layout.allocate("eval_stack", STACK_BYTES)
        self.globals_base = layout.allocate("globals", 128)
        misc_base = layout.allocate("misc", MISC_FOOTPRINT)
        self._misc = MiscTraffic(
            builder, make_rng(f"li-misc-{seed}"), misc_base, MISC_FOOTPRINT
        )
        self._frame_count = 0
        self._cars: list[Value] = [NIL] * HEAP_CELLS
        self._cdrs: list[Value] = [NIL] * HEAP_CELLS
        self._next_cell = 0
        self._symbols: dict[str, Symbol] = {}
        self._global_values: dict[Symbol, Value] = {}
        self._depth = 0
        self.gc_count = 0

    # -- cons heap ---------------------------------------------------

    def _cell_address(self, ref: CellRef) -> int:
        # Addresses wrap within the heap region: a compacting collector
        # reuses the same physical cells for successive generations.
        return self.heap_base + (ref.index % HEAP_CELLS) * CELL_BYTES

    def cons(self, car: Value, cdr: Value) -> CellRef:
        """Allocate a cell; two recorded writes (car and cdr fields)."""
        if self._next_cell and self._next_cell % HEAP_CELLS == 0:
            self._collect()
        ref = CellRef(self._next_cell)
        self._next_cell += 1
        if ref.index >= len(self._cars):
            self._cars.extend([NIL] * HEAP_CELLS)
            self._cdrs.extend([NIL] * HEAP_CELLS)
        self._cars[ref.index] = car
        self._cdrs[ref.index] = cdr
        address = self._cell_address(ref)
        self.builder.write(address, HALF_CELL, "cons_heap")
        self.builder.write(address + HALF_CELL, HALF_CELL, "cons_heap")
        return ref

    def car(self, ref: Value) -> Value:
        """Read the car field (one recorded heap read)."""
        if not isinstance(ref, CellRef):
            raise TraceError(f"car of non-pair: {ref!r}")
        self.builder.read(self._cell_address(ref), HALF_CELL, "cons_heap")
        return self._cars[ref.index]

    def cdr(self, ref: Value) -> Value:
        """Read the cdr field (one recorded heap read)."""
        if not isinstance(ref, CellRef):
            raise TraceError(f"cdr of non-pair: {ref!r}")
        self.builder.read(
            self._cell_address(ref) + HALF_CELL, HALF_CELL, "cons_heap"
        )
        return self._cdrs[ref.index]

    def _collect(self) -> None:
        """GC traffic stand-in: a strided sweep read over the region.

        xlisp's mark/sweep touches every heap cell; we record a sweep
        of every 4th cell to bound trace size. Recorded *addresses*
        then wrap around the region (compaction reuses physical cells)
        while the interpreter's cell storage keeps growing, so live
        data is never clobbered.
        """
        for index in range(0, HEAP_CELLS, 4):
            self.builder.read(
                self.heap_base + index * CELL_BYTES, HALF_CELL, "cons_heap"
            )
        self.gc_count += 1

    # -- symbols -----------------------------------------------------

    def intern(self, text: str) -> Symbol:
        """Intern a symbol, recording the hash-probe reads."""
        slot = zlib.crc32(text.encode()) % SYMBOL_SLOTS
        probes = 1 + (len(text) % 2)
        for i in range(probes):
            address = self.symtab_base + ((slot + i) % SYMBOL_SLOTS) * SYMBOL_ENTRY
            self.builder.read(address, SYMBOL_ENTRY, "symbol_table")
        if text not in self._symbols:
            self._symbols[text] = Symbol(text)
            address = self.symtab_base + (slot % SYMBOL_SLOTS) * SYMBOL_ENTRY
            self.builder.write(address, SYMBOL_ENTRY, "symbol_table")
        return self._symbols[text]

    def set_global(self, symbol: Symbol, value: Value) -> None:
        """Bind a global (a write to the symbol's value slot)."""
        slot = zlib.crc32(symbol.text.encode()) % SYMBOL_SLOTS
        self.builder.write(
            self.symtab_base + slot * SYMBOL_ENTRY + 8, 8, "symbol_table"
        )
        self._global_values[symbol] = value

    def get_global(self, symbol: Symbol) -> Value:
        """Read a global value slot; raises on unbound symbols."""
        slot = zlib.crc32(symbol.text.encode()) % SYMBOL_SLOTS
        self.builder.read(
            self.symtab_base + slot * SYMBOL_ENTRY + 8, 8, "symbol_table"
        )
        try:
            return self._global_values[symbol]
        except KeyError:
            raise TraceError(f"unbound symbol: {symbol.text}") from None

    # -- evaluator stack ----------------------------------------------

    def push_frame(self) -> None:
        """Record an activation-frame write at the current stack depth.

        Every few activations also touch the interpreter's background
        state (``misc``), as xlisp's evaluator does between cell
        operations.
        """
        offset = (self._depth * FRAME_BYTES) % STACK_BYTES
        self.builder.write(self.stack_base + offset, FRAME_BYTES, "eval_stack")
        self._depth += 1
        self._frame_count += 1
        if self._frame_count % 3 == 0:
            self._misc.access()

    def pop_frame(self) -> None:
        """Record the frame read on evaluator return."""
        self._depth -= 1
        offset = (self._depth * FRAME_BYTES) % STACK_BYTES
        self.builder.read(self.stack_base + offset, FRAME_BYTES, "eval_stack")


# -- parser -----------------------------------------------------------


def tokenize(source: str) -> list[str]:
    """Split an s-expression string into tokens."""
    return source.replace("(", " ( ").replace(")", " ) ").split()


def parse(machine: Machine, source: str) -> Value:
    """Parse one s-expression, building it as heap lists."""
    tokens = tokenize(source)
    expr, rest = _parse_tokens(machine, tokens)
    if rest:
        raise TraceError(f"trailing tokens after expression: {rest[:4]}")
    return expr


def _parse_tokens(machine: Machine, tokens: list[str]) -> tuple[Value, list[str]]:
    if not tokens:
        raise TraceError("unexpected end of input")
    token, rest = tokens[0], tokens[1:]
    if token == "(":
        items: list[Value] = []
        while rest and rest[0] != ")":
            item, rest = _parse_tokens(machine, rest)
            items.append(item)
        if not rest:
            raise TraceError("unbalanced parentheses")
        rest = rest[1:]
        result: Value = NIL
        for item in reversed(items):
            result = machine.cons(item, result)
        return result, rest
    if token == ")":
        raise TraceError("unexpected ')'")
    try:
        return int(token), rest
    except ValueError:
        return machine.intern(token), rest


# -- evaluator --------------------------------------------------------


def _lookup(machine: Machine, symbol: Symbol, env: Value) -> Value:
    """Look a symbol up: chase the env assoc list, then the globals."""
    cursor = env
    while isinstance(cursor, CellRef):
        binding = machine.car(cursor)
        if machine.car(binding) is symbol:
            return machine.cdr(binding)
        cursor = machine.cdr(cursor)
    return machine.get_global(symbol)


def _eval(machine: Machine, expr: Value, env: Value) -> Value:
    machine.push_frame()
    try:
        return _eval_inner(machine, expr, env)
    finally:
        machine.pop_frame()


def _eval_inner(machine: Machine, expr: Value, env: Value) -> Value:
    if isinstance(expr, int):
        return expr
    if isinstance(expr, Symbol):
        return _lookup(machine, expr, env)
    if expr is NIL:
        return NIL
    if not isinstance(expr, CellRef):
        return expr
    head = machine.car(expr)
    if isinstance(head, Symbol):
        if head.text == "quote":
            return machine.car(machine.cdr(expr))
        if head.text == "if":
            rest = machine.cdr(expr)
            test = _eval(machine, machine.car(rest), env)
            branch = machine.cdr(rest)
            if test is not NIL and test != 0:
                return _eval(machine, machine.car(branch), env)
            alternative = machine.cdr(branch)
            if alternative is NIL:
                return NIL
            return _eval(machine, machine.car(alternative), env)
        if head.text == "define":
            rest = machine.cdr(expr)
            target = machine.car(rest)
            if isinstance(target, CellRef):
                # (define (f a b) body) sugar.
                name = machine.car(target)
                params = machine.cdr(target)
                body = machine.car(machine.cdr(rest))
                machine.set_global(name, Closure(params, body, env))
                return name
            value = _eval(machine, machine.car(machine.cdr(rest)), env)
            machine.set_global(target, value)
            return target
        if head.text == "lambda":
            rest = machine.cdr(expr)
            params = machine.car(rest)
            body = machine.car(machine.cdr(rest))
            return Closure(params, body, env)
    function = _eval(machine, head, env)
    arguments: list[Value] = []
    cursor = machine.cdr(expr)
    while isinstance(cursor, CellRef):
        arguments.append(_eval(machine, machine.car(cursor), env))
        cursor = machine.cdr(cursor)
    return _apply(machine, function, arguments)


def _apply(machine: Machine, function: Value, arguments: list[Value]) -> Value:
    if callable(function) and not isinstance(function, Closure):
        return function(machine, arguments)
    if isinstance(function, Closure):
        env = function.env
        cursor = function.params
        index = 0
        while isinstance(cursor, CellRef):
            if index >= len(arguments):
                raise TraceError("too few arguments to closure")
            binding = machine.cons(machine.car(cursor), arguments[index])
            env = machine.cons(binding, env)
            cursor = machine.cdr(cursor)
            index += 1
        return _eval(machine, function.body, env)
    raise TraceError(f"not applicable: {function!r}")


def _builtin_numeric(
    op: Callable[[int, int], int],
) -> Callable[[Machine, list[Value]], Value]:
    def implementation(machine: Machine, arguments: list[Value]) -> Value:
        machine.builder.compute(1)
        result = arguments[0]
        for argument in arguments[1:]:
            result = op(result, argument)  # type: ignore[arg-type]
        # xlisp allocates a fixnum node for every numeric result.
        machine.cons(result, NIL)
        return result

    return implementation


def _install_builtins(machine: Machine) -> None:
    def compare(op: Callable[[int, int], bool]) -> Callable:
        def implementation(machine: Machine, arguments: list[Value]) -> Value:
            machine.builder.compute(1)
            return 1 if op(arguments[0], arguments[1]) else NIL

        return implementation

    builtins: dict[str, Callable] = {
        "+": _builtin_numeric(lambda a, b: a + b),
        "-": _builtin_numeric(lambda a, b: a - b),
        "*": _builtin_numeric(lambda a, b: a * b),
        "<": compare(lambda a, b: a < b),
        ">": compare(lambda a, b: a > b),
        "=": compare(lambda a, b: a == b),
        "cons": lambda m, a: m.cons(a[0], a[1]),
        "car": lambda m, a: m.car(a[0]),
        "cdr": lambda m, a: m.cdr(a[0]),
        "null?": lambda m, a: 1 if a[0] is NIL else NIL,
    }
    for name, implementation in builtins.items():
        machine.set_global(machine.intern(name), implementation)


_PROGRAMS = [
    "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
    "(define (iota n) (if (= n 0) (quote ()) (cons n (iota (- n 1)))))",
    "(define (rev l acc) (if (null? l) acc (rev (cdr l) (cons (car l) acc))))",
    "(define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))",
    "(define (assq k l) (if (null? l) (quote ()) "
    "(if (= k (car (car l))) (car l) (assq k (cdr l)))))",
    "(define (pairs n) (if (= n 0) (quote ()) "
    "(cons (cons n (* n n)) (pairs (- n 1)))))",
    "(define (append2 a b) (if (null? a) b "
    "(cons (car a) (append2 (cdr a) b))))",
    "(define (less l p) (if (null? l) (quote ()) "
    "(if (< (car l) p) (cons (car l) (less (cdr l) p)) (less (cdr l) p))))",
    "(define (geq l p) (if (null? l) (quote ()) "
    "(if (< (car l) p) (geq (cdr l) p) (cons (car l) (geq (cdr l) p)))))",
    "(define (qsort l) (if (null? l) (quote ()) "
    "(append2 (qsort (less (cdr l) (car l))) "
    "(cons (car l) (qsort (geq (cdr l) (car l)))))))",
    "(define (map1 f l) (if (null? l) (quote ()) "
    "(cons (f (car l)) (map1 f (cdr l)))))",
]


@register_workload
class LiWorkload(Workload):
    """Mini-Lisp interpreter running recursive list programs.

    ``scale`` multiplies the per-program problem sizes (fib depth grows
    logarithmically; list lengths linearly).
    """

    name = "li"

    @property
    def pattern_hints(self) -> Mapping[str, AccessPattern]:
        return {
            "cons_heap": AccessPattern.SELF_INDIRECT,
            "symbol_table": AccessPattern.INDEXED,
            "eval_stack": AccessPattern.INDEXED,
            "globals": AccessPattern.SCALAR,
            "misc": AccessPattern.RANDOM,
        }

    def run(self, builder: TraceBuilder) -> None:
        layout = AddressMap()
        machine = Machine(builder, layout, seed=self.seed)
        _install_builtins(machine)
        for source in _PROGRAMS:
            _eval(machine, parse(machine, source), NIL)

        list_len = max(4, int(80 * self.scale))
        fib_n = max(6, min(16, 11 + int(self.scale)))
        table_n = max(4, int(40 * self.scale))
        lookups = max(4, int(60 * self.scale))

        sort_len = max(4, int(24 * self.scale))
        runs = [
            f"(fib {fib_n})",
            f"(sum (rev (iota {list_len}) (quote ())))",
            f"(define table (pairs {table_n}))",
            # Worst-case quicksort of a descending list: heavy
            # append/partition pointer chasing.
            f"(sum (qsort (iota {sort_len})))",
            f"(sum (map1 (lambda (x) (* x x)) (iota {table_n})))",
        ]
        for source in runs:
            builder.read(machine.globals_base, 8, "globals")
            _eval(machine, parse(machine, source), NIL)
            builder.write(machine.globals_base + 8, 8, "globals")
        for i in range(lookups):
            key = 1 + (i * 7) % table_n
            _eval(machine, parse(machine, f"(assq {key} table)"), NIL)
