"""Workload base class, address-space layout, and the workload registry."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.trace.events import AccessKind, Trace, TraceBuilder
from repro.trace.patterns import AccessPattern


class AddressMap:
    """Allocates non-overlapping, aligned address regions to structures.

    Workload data structures live in one flat byte-address space (the
    application's virtual memory as SHADE would see it). Each structure
    gets its own region so pattern classification and cache-index
    behaviour are realistic.
    """

    def __init__(self, base: int = 0x1000_0000, alignment: int = 64) -> None:
        if alignment <= 0 or alignment & (alignment - 1):
            raise ConfigurationError(
                f"alignment must be a power of two, got {alignment}"
            )
        self._cursor = base
        self._alignment = alignment
        self._regions: dict[str, tuple[int, int]] = {}

    def allocate(self, name: str, size: int) -> int:
        """Reserve ``size`` bytes for structure ``name``; return its base."""
        if size <= 0:
            raise ConfigurationError(f"region '{name}' has size {size}")
        if name in self._regions:
            raise ConfigurationError(f"region '{name}' allocated twice")
        align = self._alignment
        base = (self._cursor + align - 1) // align * align
        self._regions[name] = (base, size)
        self._cursor = base + size
        return base

    def region(self, name: str) -> tuple[int, int]:
        """(base, size) of a previously allocated region."""
        return self._regions[name]

    @property
    def regions(self) -> Mapping[str, tuple[int, int]]:
        """All allocated regions, keyed by structure name."""
        return dict(self._regions)


class MiscTraffic:
    """Zipf-distributed background traffic over a large region.

    Whole-program tracers (SHADE in the paper) record *all* of a
    process's loads and stores, not only the named data structures:
    stack spills, runtime bookkeeping, library state. That residue has
    strong temporal locality (a few hot locations) over a footprint too
    large for a scratchpad — servable well only by a cache. Workloads
    interleave calls to :meth:`access` with their kernel accesses to
    reproduce it.
    """

    def __init__(
        self,
        builder: TraceBuilder,
        rng: np.random.Generator,
        base: int,
        footprint: int,
        struct: str = "misc",
        slot_bytes: int = 8,
        zipf_exponent: float = 0.9,
        write_fraction: float = 0.25,
    ) -> None:
        if footprint <= 0 or footprint < slot_bytes:
            raise ConfigurationError(f"bad misc footprint: {footprint}")
        if not 0.0 <= write_fraction <= 1.0:
            raise ConfigurationError(
                f"write fraction out of range: {write_fraction}"
            )
        self._builder = builder
        self._rng = rng
        self._base = base
        self._struct = struct
        self._slot_bytes = slot_bytes
        self._write_fraction = write_fraction
        slots = footprint // slot_bytes
        ranks = np.arange(1, slots + 1, dtype=np.float64)
        weights = 1.0 / ranks**zipf_exponent
        self._weights = weights / weights.sum()
        # Scatter the popularity ranking across the region so hot slots
        # do not all share cache sets.
        self._placement = rng.permutation(slots)
        self._pending: list[tuple[int, bool]] = []

    def _refill(self) -> None:
        slots = self._rng.choice(
            len(self._weights), size=1024, p=self._weights
        )
        writes = self._rng.random(1024) < self._write_fraction
        self._pending = [
            (int(self._placement[s]), bool(w))
            for s, w in zip(slots, writes)
        ]

    def access(self) -> None:
        """Record one zipf-placed background access."""
        if not self._pending:
            self._refill()
        slot, write = self._pending.pop()
        address = self._base + slot * self._slot_bytes
        kind = AccessKind.WRITE if write else AccessKind.READ
        self._builder.record(address, self._slot_bytes, kind, self._struct)


class Workload(ABC):
    """An instrumented application producing a tagged memory trace.

    Subclasses implement :meth:`run`, recording every load/store of
    their data structures into the supplied :class:`TraceBuilder`, and
    declare :attr:`pattern_hints` — the source-level access-pattern
    knowledge standing in for APEX's C front-end analysis.
    """

    #: Registry name; subclasses override.
    name: str = "workload"

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.seed = seed

    @property
    @abstractmethod
    def pattern_hints(self) -> Mapping[str, AccessPattern]:
        """Per-structure access-pattern hints (APEX source knowledge)."""

    @abstractmethod
    def run(self, builder: TraceBuilder) -> None:
        """Execute the workload, recording accesses into ``builder``."""

    def trace(self) -> Trace:
        """Execute the workload and return its frozen trace."""
        builder = TraceBuilder(self.name)
        self.run(builder)
        return builder.build()


_REGISTRY: dict[str, type[Workload]] = {}


def register_workload(cls: type[Workload]) -> type[Workload]:
    """Class decorator adding a workload to the name registry."""
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"workload '{cls.name}' registered twice")
    _REGISTRY[cls.name] = cls
    return cls


def workload_names() -> tuple[str, ...]:
    """Registered workload names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_workload(name: str, scale: float = 1.0, seed: int = 0) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload '{name}'; known: {', '.join(workload_names())}"
        ) from None
    return cls(scale=scale, seed=seed)
