"""Parametric synthetic workload for tests and controlled experiments.

Generates a trace mixing the four non-scalar APEX pattern classes in
caller-chosen proportions. Useful for unit tests (known ground truth),
property-based tests, and ablations where the benchmark workloads'
natural structure would confound the variable under study.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ConfigurationError
from repro.trace.events import TraceBuilder
from repro.trace.patterns import AccessPattern
from repro.util.rng import make_rng
from repro.workloads.base import AddressMap, Workload, register_workload

_STREAM_REGION = 64 * 1024
_TABLE_REGION = 8 * 1024
_POOL_REGION = 32 * 1024
_NODE_BYTES = 16


@register_workload
class SyntheticWorkload(Workload):
    """Mix of stream / self-indirect / indexed / random accesses.

    Args:
        scale: multiplies the total access count (base 20k).
        seed: RNG seed for the irregular components.
        mix: optional mapping from pattern to weight; defaults to an
            even mix of the four classes. Weights are normalized.
    """

    name = "synthetic"

    base_accesses = 20_000

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        mix: Mapping[AccessPattern, float] | None = None,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        default = {
            AccessPattern.STREAM: 1.0,
            AccessPattern.SELF_INDIRECT: 1.0,
            AccessPattern.INDEXED: 1.0,
            AccessPattern.RANDOM: 1.0,
        }
        self.mix = dict(mix) if mix is not None else default
        if not self.mix:
            raise ConfigurationError("synthetic mix must be non-empty")
        if any(w < 0 for w in self.mix.values()) or sum(self.mix.values()) <= 0:
            raise ConfigurationError(f"invalid mix weights: {self.mix}")

    @property
    def pattern_hints(self) -> Mapping[str, AccessPattern]:
        hints = {}
        if AccessPattern.STREAM in self.mix:
            hints["stream_data"] = AccessPattern.STREAM
        if AccessPattern.SELF_INDIRECT in self.mix:
            hints["node_pool"] = AccessPattern.SELF_INDIRECT
        if AccessPattern.INDEXED in self.mix:
            hints["lookup_table"] = AccessPattern.INDEXED
        if AccessPattern.RANDOM in self.mix:
            hints["scatter_data"] = AccessPattern.RANDOM
        return hints

    def run(self, builder: TraceBuilder) -> None:
        rng = make_rng(f"synthetic-{self.seed}")
        layout = AddressMap()
        bases: dict[AccessPattern, int] = {}
        if AccessPattern.STREAM in self.mix:
            bases[AccessPattern.STREAM] = layout.allocate(
                "stream_data", _STREAM_REGION
            )
        if AccessPattern.SELF_INDIRECT in self.mix:
            bases[AccessPattern.SELF_INDIRECT] = layout.allocate(
                "node_pool", _POOL_REGION
            )
        if AccessPattern.INDEXED in self.mix:
            bases[AccessPattern.INDEXED] = layout.allocate(
                "lookup_table", _TABLE_REGION
            )
        if AccessPattern.RANDOM in self.mix:
            bases[AccessPattern.RANDOM] = layout.allocate(
                "scatter_data", _STREAM_REGION
            )

        total = max(16, int(self.base_accesses * self.scale))
        weight_sum = sum(self.mix.values())
        patterns = list(self.mix)
        weights = [self.mix[p] / weight_sum for p in patterns]
        choices = rng.choice(len(patterns), size=total, p=weights)

        stream_pos = 0
        node = 0
        node_count = _POOL_REGION // _NODE_BYTES
        # A fixed random permutation makes the pointer chain genuinely
        # self-indirect: the next node is a function of the current one.
        successor = rng.permutation(node_count)
        hot_slots = rng.integers(0, _TABLE_REGION // 8, size=32)

        for choice in choices:
            pattern = patterns[int(choice)]
            base = bases[pattern]
            if pattern is AccessPattern.STREAM:
                builder.read(base + stream_pos, 4, "stream_data")
                stream_pos = (stream_pos + 4) % _STREAM_REGION
            elif pattern is AccessPattern.SELF_INDIRECT:
                builder.read(base + node * _NODE_BYTES, 8, "node_pool")
                node = int(successor[node])
            elif pattern is AccessPattern.INDEXED:
                slot = int(hot_slots[int(rng.integers(0, len(hot_slots)))])
                if rng.random() < 0.2:
                    builder.write(base + slot * 8, 8, "lookup_table")
                else:
                    builder.read(base + slot * 8, 8, "lookup_table")
            else:
                offset = int(rng.integers(0, _STREAM_REGION // 8)) * 8
                builder.read(base + offset, 8, "scatter_data")
            builder.compute(2)
