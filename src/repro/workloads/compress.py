"""Instrumented LZW compressor (stand-in for SPEC95 *compress*).

SPEC95 compress is an LZW coder whose dominant traffic is open-address
hash probing over ``htab``/``codetab`` — the canonical *self-indirect*
pattern APEX targets — plus sequential input/output streams. This
module implements the same algorithm (xor hashing with secondary-probe
displacement, exactly as in compress 4.0) over a synthetic zipfian text
and records every data-structure access.

Data structures and their patterns:

* ``input_stream`` — sequential byte reads (STREAM).
* ``output_stream`` — sequential 2-byte code writes (STREAM).
* ``hash_table`` — 8-byte ``fcode`` entries, probed self-indirectly
  (SELF_INDIRECT).
* ``code_table`` — 2-byte code entries parallel to the hash table
  (SELF_INDIRECT; probed at the same indices).
* ``globals`` — the coder's scalar state (SCALAR).
* ``misc`` — the rest of the process's traffic (stack spills, I/O
  bookkeeping, libc state) that a whole-program tracer like SHADE
  sees: zipf-distributed accesses over a footprint too large for any
  scratchpad, servable only by a cache (RANDOM).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.trace.events import TraceBuilder
from repro.trace.patterns import AccessPattern
from repro.util.rng import make_rng
from repro.workloads.base import (
    AddressMap,
    MiscTraffic,
    Workload,
    register_workload,
)

#: Hash table size: compress 4.0's 12-bit hsize (a prime, so the
#: secondary-probe displacement cycles through every slot).
TABLE_SIZE = 5003

#: Largest LZW code for 12-bit operation; reaching it triggers a
#: dictionary clear, as in compress.
MAX_CODE = 4096

#: Entry widths in bytes, as in compress (long fcode, short code).
HTAB_ENTRY = 8
CODETAB_ENTRY = 2

#: First available LZW code (256 byte literals + clear code).
FIRST_CODE = 257

_VOCABULARY_SIZE = 420
_MEAN_WORD_LEN = 6


def _zipf_text(rng: np.random.Generator, length: int) -> bytes:
    """Synthetic text with a zipfian word distribution.

    Natural text makes LZW's dictionary both hit (common words) and grow
    (novel juxtapositions), which is what drives the probe-chain lengths
    the exploration cares about.
    """
    word_lengths = rng.integers(2, 2 * _MEAN_WORD_LEN, size=_VOCABULARY_SIZE)
    vocabulary = [
        bytes(rng.integers(97, 123, size=int(n)).astype(np.uint8))
        for n in word_lengths
    ]
    ranks = np.arange(1, _VOCABULARY_SIZE + 1, dtype=np.float64)
    weights = 1.0 / ranks
    weights /= weights.sum()
    pieces: list[bytes] = []
    total = 0
    while total < length:
        word = vocabulary[int(rng.choice(_VOCABULARY_SIZE, p=weights))]
        pieces.append(word)
        pieces.append(b" ")
        total += len(word) + 1
    return b"".join(pieces)[:length]


@register_workload
class CompressWorkload(Workload):
    """LZW compression over synthetic zipfian text.

    ``scale`` multiplies the input length (default 8 KiB of text, about
    40k recorded accesses at scale 1.0).
    """

    name = "compress"

    #: Base input length in bytes at scale 1.0.
    base_input_length = 8192

    #: Footprint of the background (stack/runtime) traffic.
    misc_footprint = 49_152

    @property
    def pattern_hints(self) -> Mapping[str, AccessPattern]:
        return {
            "input_stream": AccessPattern.STREAM,
            "output_stream": AccessPattern.STREAM,
            "hash_table": AccessPattern.SELF_INDIRECT,
            "code_table": AccessPattern.SELF_INDIRECT,
            "globals": AccessPattern.SCALAR,
            "misc": AccessPattern.RANDOM,
        }

    def run(self, builder: TraceBuilder) -> None:
        rng = make_rng(f"compress-{self.seed}")
        text = _zipf_text(rng, int(self.base_input_length * self.scale))

        layout = AddressMap()
        input_base = layout.allocate("input_stream", len(text))
        output_base = layout.allocate("output_stream", len(text))
        htab_base = layout.allocate("hash_table", TABLE_SIZE * HTAB_ENTRY)
        codetab_base = layout.allocate("code_table", TABLE_SIZE * CODETAB_ENTRY)
        globals_base = layout.allocate("globals", 64)
        misc_base = layout.allocate("misc", self.misc_footprint)
        misc = MiscTraffic(builder, rng, misc_base, self.misc_footprint)

        htab = np.full(TABLE_SIZE, -1, dtype=np.int64)
        codetab = np.zeros(TABLE_SIZE, dtype=np.int32)
        next_code = FIRST_CODE
        out_cursor = 0

        def emit(code: int) -> None:
            nonlocal out_cursor
            builder.write(output_base + out_cursor, 2, "output_stream")
            out_cursor = (out_cursor + 2) % len(text)

        def clear_table() -> None:
            """Dictionary clear (compress's CLEAR code path).

            compress memsets htab; we record a strided sweep (every 8th
            entry) so the clear contributes realistic but bounded
            write traffic.
            """
            nonlocal next_code
            htab.fill(-1)
            for slot in range(0, TABLE_SIZE, 8):
                builder.write(htab_base + slot * HTAB_ENTRY, HTAB_ENTRY, "hash_table")
            next_code = FIRST_CODE

        builder.read(input_base, 1, "input_stream")
        prefix = text[0]
        for position in range(1, len(text)):
            builder.compute(2)
            builder.read(input_base + position, 1, "input_stream")
            if position % 2 == 0:
                misc.access()
            char = text[position]
            fcode = (char << 16) + prefix
            # compress 4.0 xor hashing with secondary-probe displacement.
            index = ((char << 4) ^ prefix) % TABLE_SIZE
            displacement = TABLE_SIZE - index if index else 1
            matched = False
            while True:
                builder.compute(1)
                builder.read(htab_base + index * HTAB_ENTRY, HTAB_ENTRY, "hash_table")
                entry = int(htab[index])
                if entry == fcode:
                    builder.read(
                        codetab_base + index * CODETAB_ENTRY,
                        CODETAB_ENTRY,
                        "code_table",
                    )
                    prefix = int(codetab[index])
                    matched = True
                    break
                if entry < 0:
                    break
                index -= displacement
                if index < 0:
                    index += TABLE_SIZE
            if matched:
                continue
            emit(prefix)
            if next_code < MAX_CODE:
                builder.write(
                    codetab_base + index * CODETAB_ENTRY, CODETAB_ENTRY, "code_table"
                )
                builder.write(
                    htab_base + index * HTAB_ENTRY, HTAB_ENTRY, "hash_table"
                )
                codetab[index] = next_code
                htab[index] = fcode
                next_code += 1
            if next_code >= MAX_CODE:
                builder.read(globals_base, 4, "globals")
                builder.write(globals_base + 4, 4, "globals")
                clear_table()
            prefix = char
            if position % 64 == 0:
                builder.read(globals_base + 8, 4, "globals")
        emit(prefix)
