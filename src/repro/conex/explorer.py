"""The ConEx algorithm: Phase I (estimate + prune), Phase II (simulate).

Follows the paper's Figure 5 pseudo-code:

``ConnectivityExploration(mem_arch)`` — profile the architecture, build
the BRG, walk the hierarchical clustering levels, and for every level
whose logical-connection count passes the max-cost guard, enumerate all
feasible allocations and estimate each one's cost/performance/power.

``ConEx`` — Phase I runs ``ConnectivityExploration`` for every selected
memory architecture and keeps the locally most promising (pareto-like)
design points; Phase II fully simulates the combined candidate set and
selects the global cost/performance/power pareto designs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.apex.explorer import EvaluatedMemoryArchitecture
from repro.conex.allocation import enumerate_assignments
from repro.conex.brg import BandwidthRequirementGraph, build_brg
from repro.conex.clustering import clustering_levels
from repro.conex.estimator import ConnectivityEstimate
from repro.connectivity.architecture import ConnectivityArchitecture
from repro.connectivity.library import ConnectivityLibrary
from repro.errors import ExplorationError
from repro.exec.cache import SimulationCache
from repro.exec.engine import (
    EstimateJob,
    SimulationJob,
    estimate_many,
    simulate_many,
)
from repro.sim.metrics import SimulationResult
from repro.sim.sampling import SamplingConfig
from repro.trace.events import Trace
from repro.util.pareto import pareto_front


@dataclass(frozen=True)
class ConExConfig:
    """Knobs of the ConEx exploration.

    Attributes:
        max_logical_connections: the paper's "max cost constraint" — a
            clustering level is only allocated when its cluster count
            is at or below this bound (finer levels mean more parallel
            components, i.e. more cost).
        min_logical_connections: skip levels coarser than this (0 keeps
            every level down to fully-merged).
        max_assignments_per_level: deterministic thinning bound on the
            allocation cross product.
        phase1_keep: locally most promising designs carried per memory
            architecture into Phase II.
        phase2_sampling: optional time-sampling for Phase II simulation
            (None = full simulation, the paper's default for the final
            numbers).
    """

    max_logical_connections: int = 5
    min_logical_connections: int = 1
    max_assignments_per_level: int = 1024
    phase1_keep: int = 10
    phase2_sampling: SamplingConfig | None = None


@dataclass(frozen=True)
class ConnectivityDesignPoint:
    """One combined memory + connectivity design point."""

    memory_eval: EvaluatedMemoryArchitecture
    connectivity: ConnectivityArchitecture
    estimate: ConnectivityEstimate
    simulation: SimulationResult | None = None

    @property
    def memory_name(self) -> str:
        return self.memory_eval.architecture.name

    @property
    def estimated_objectives(self) -> tuple[float, float, float]:
        return self.estimate.objectives

    @property
    def simulated_objectives(self) -> tuple[float, float, float]:
        if self.simulation is None:
            raise ExplorationError(
                f"design {self.estimate.connectivity_name} was not simulated"
            )
        return self.simulation.objectives

    def label(self) -> str:
        return f"{self.memory_name}/{self.connectivity.name}"


@dataclass(frozen=True)
class ConExResult:
    """Everything the exploration produced.

    ``estimated`` holds every Phase-I estimate; ``simulated`` the
    Phase-II simulations of the locally selected designs; ``selected``
    the global cost/performance/power pareto set.
    """

    trace_name: str
    estimated: tuple[ConnectivityDesignPoint, ...]
    simulated: tuple[ConnectivityDesignPoint, ...]
    selected: tuple[ConnectivityDesignPoint, ...]
    brgs: dict[str, BandwidthRequirementGraph] = field(repr=False)
    phase1_seconds: float = 0.0
    phase2_seconds: float = 0.0
    #: Phase-II result-cache accounting: hits came for free, misses
    #: were freshly simulated (by ``workers`` processes).
    phase2_cache_hits: int = 0
    phase2_cache_misses: int = 0
    workers: int = 1

    @property
    def total_seconds(self) -> float:
        return self.phase1_seconds + self.phase2_seconds


def connectivity_exploration(
    trace: Trace,
    memory_eval: EvaluatedMemoryArchitecture,
    library: ConnectivityLibrary,
    config: ConExConfig,
    workers: int | None = None,
) -> tuple[BandwidthRequirementGraph, list[ConnectivityDesignPoint]]:
    """The paper's ``Procedure ConnectivityExploration`` for one arch.

    Returns the BRG and every estimated design point (all clustering
    levels passing the max-cost guard, all feasible allocations).
    Candidates are enumerated first, then estimated as one
    :func:`repro.exec.estimate_many` batch.
    """
    memory = memory_eval.architecture
    profile = memory_eval.result
    brg = build_brg(memory, profile)
    candidates: list[ConnectivityArchitecture] = []
    seen: set = set()
    for level in clustering_levels(brg):
        if level.size > config.max_logical_connections:
            continue
        if level.size < config.min_logical_connections:
            continue
        assignments = enumerate_assignments(
            level,
            library,
            name_prefix=f"{memory.name}",
            max_assignments=config.max_assignments_per_level,
        )
        for connectivity in assignments:
            signature = connectivity.preset_signature()
            if signature in seen:
                continue
            seen.add(signature)
            candidates.append(connectivity)
    report = estimate_many(
        [
            EstimateJob(memory=memory, connectivity=c, profile=profile)
            for c in candidates
        ],
        workers=workers,
    )
    return brg, [
        ConnectivityDesignPoint(
            memory_eval=memory_eval,
            connectivity=connectivity,
            estimate=estimate,
        )
        for connectivity, estimate in zip(candidates, report.results)
    ]


def _thin_by_latency(
    front: Sequence[ConnectivityDesignPoint], count: int
) -> list[ConnectivityDesignPoint]:
    """Spread ``count`` picks along the latency axis of a pareto front."""
    ordered = sorted(front, key=lambda p: p.estimate.avg_latency)
    if len(ordered) <= count:
        return list(ordered)
    if count <= 1:
        # A single carry slot: keep the lowest-latency front point
        # (count < 1 cannot reach here — ordered is non-empty, so
        # len(ordered) <= 0 never passes the guard above).
        return [ordered[0]]
    picks = {0, len(ordered) - 1}
    step = (len(ordered) - 1) / (count - 1)
    for i in range(1, count - 1):
        picks.add(round(i * step))
    return [ordered[i] for i in sorted(picks)]


def explore_connectivity(
    trace: Trace,
    selected_memories: Sequence[EvaluatedMemoryArchitecture],
    library: ConnectivityLibrary,
    config: ConExConfig | None = None,
    workers: int | None = None,
    cache: SimulationCache | None = None,
) -> ConExResult:
    """Run the full ConEx algorithm (Phases I and II).

    Phase II dispatches the carried candidates through
    :func:`repro.exec.simulate_many`: ``workers`` processes (default
    serial, see ``REPRO_WORKERS``) against the content-addressed result
    ``cache`` (default: the process-wide cache, so a repeated identical
    exploration re-simulates nothing).
    """
    config = config or ConExConfig()
    if not selected_memories:
        raise ExplorationError("ConEx needs at least one memory architecture")

    phase1_start = time.perf_counter()
    estimated: list[ConnectivityDesignPoint] = []
    carried: list[ConnectivityDesignPoint] = []
    brgs: dict[str, BandwidthRequirementGraph] = {}
    for memory_eval in selected_memories:
        brg, points = connectivity_exploration(
            trace, memory_eval, library, config, workers=workers
        )
        brgs[memory_eval.architecture.name] = brg
        estimated.extend(points)
        local_front = pareto_front(
            points, key=lambda p: p.estimated_objectives
        )
        carried.extend(_thin_by_latency(local_front, config.phase1_keep))
    phase1_seconds = time.perf_counter() - phase1_start

    phase2_start = time.perf_counter()
    report = simulate_many(
        trace,
        [
            SimulationJob(
                memory=point.memory_eval.architecture,
                connectivity=point.connectivity,
                sampling=config.phase2_sampling,
            )
            for point in carried
        ],
        workers=workers,
        cache=cache,
    )
    simulated = [
        ConnectivityDesignPoint(
            memory_eval=point.memory_eval,
            connectivity=point.connectivity,
            estimate=point.estimate,
            simulation=result,
        )
        for point, result in zip(carried, report.results)
    ]
    phase2_seconds = time.perf_counter() - phase2_start

    selected = pareto_front(simulated, key=lambda p: p.simulated_objectives)
    return ConExResult(
        trace_name=trace.name,
        estimated=tuple(estimated),
        simulated=tuple(simulated),
        selected=tuple(selected),
        brgs=brgs,
        phase1_seconds=phase1_seconds,
        phase2_seconds=phase2_seconds,
        phase2_cache_hits=report.cache_hits,
        phase2_cache_misses=report.cache_misses,
        workers=report.workers,
    )
