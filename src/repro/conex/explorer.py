"""The ConEx algorithm: Phase I (estimate + prune), Phase II (simulate).

Follows the paper's Figure 5 pseudo-code:

``ConnectivityExploration(mem_arch)`` — profile the architecture, build
the BRG, walk the hierarchical clustering levels, and for every level
whose logical-connection count passes the max-cost guard, enumerate all
feasible allocations and estimate each one's cost/performance/power.

``ConEx`` — Phase I runs ``ConnectivityExploration`` for every selected
memory architecture and keeps the locally most promising (pareto-like)
design points; Phase II fully simulates the combined candidate set and
selects the global cost/performance/power pareto designs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Sequence

from repro import obs
from repro.apex.explorer import EvaluatedMemoryArchitecture
from repro.conex.allocation import AssignmentPlan, plan_assignments
from repro.conex.brg import BandwidthRequirementGraph, build_brg
from repro.conex.clustering import clustering_levels
from repro.conex.estimator import (
    ConnectivityEstimate,
    estimate_plan,
    reference_estimator_enabled,
)
from repro.connectivity.architecture import ConnectivityArchitecture
from repro.connectivity.library import ConnectivityLibrary
from repro.errors import ExplorationError
from repro.exec.cache import SimulationCache
from repro.exec.engine import (
    EstimateJob,
    SimulationJob,
    estimate_many,
    simulate_batch,
)
from repro.exec.runtime import ExecutionRuntime
from repro.sim.metrics import SimulationResult
from repro.sim.sampling import SamplingConfig
from repro.stats import BatchStats, StatsReport, deprecated_stat
from repro.trace.events import Trace
from repro.util.pareto import pareto_front


@dataclass(frozen=True)
class ConExConfig:
    """Knobs of the ConEx exploration.

    Attributes:
        max_logical_connections: the paper's "max cost constraint" — a
            clustering level is only allocated when its cluster count
            is at or below this bound (finer levels mean more parallel
            components, i.e. more cost).
        min_logical_connections: skip levels coarser than this (0 keeps
            every level down to fully-merged).
        max_assignments_per_level: deterministic thinning bound on the
            allocation cross product.
        phase1_keep: locally most promising designs carried per memory
            architecture into Phase II.
        phase2_sampling: optional time-sampling for Phase II simulation
            (None = full simulation, the paper's default for the final
            numbers).
    """

    max_logical_connections: int = 5
    min_logical_connections: int = 1
    max_assignments_per_level: int = 1024
    phase1_keep: int = 10
    phase2_sampling: SamplingConfig | None = None


class ConnectivityDesignPoint:
    """One combined memory + connectivity design point.

    The :class:`ConnectivityArchitecture` object can be supplied
    eagerly (``connectivity=``) or lazily (``builder=``, a zero-arg
    callable — typically ``plan.materialize`` bound to a candidate
    index). Phase I only needs names and objectives, which live on the
    estimate, so the thousands of pruned candidates never pay for
    component instantiation; accessing :attr:`connectivity` on a
    survivor builds and memoizes the full object.
    """

    __slots__ = (
        "memory_eval", "estimate", "simulation", "_connectivity", "_builder",
    )

    def __init__(
        self,
        memory_eval: EvaluatedMemoryArchitecture,
        connectivity: ConnectivityArchitecture | None = None,
        estimate: ConnectivityEstimate | None = None,
        simulation: SimulationResult | None = None,
        *,
        builder: Callable[[], ConnectivityArchitecture] | None = None,
    ) -> None:
        if (connectivity is None) == (builder is None):
            raise ExplorationError(
                "design point needs exactly one of connectivity or builder"
            )
        self.memory_eval = memory_eval
        self.estimate = estimate
        self.simulation = simulation
        self._connectivity = connectivity
        self._builder = builder

    @property
    def connectivity(self) -> ConnectivityArchitecture:
        """The architecture object, materialized on first access."""
        if self._connectivity is None:
            self._connectivity = self._builder()
        return self._connectivity

    @property
    def memory_name(self) -> str:
        return self.memory_eval.architecture.name

    @property
    def estimated_objectives(self) -> tuple[float, float, float]:
        return self.estimate.objectives

    @property
    def simulated_objectives(self) -> tuple[float, float, float]:
        if self.simulation is None:
            raise ExplorationError(
                f"design {self.estimate.connectivity_name} was not simulated"
            )
        return self.simulation.objectives

    def label(self) -> str:
        if self.estimate is not None:
            return f"{self.memory_name}/{self.estimate.connectivity_name}"
        return f"{self.memory_name}/{self.connectivity.name}"

    def __repr__(self) -> str:
        name = (
            self.estimate.connectivity_name
            if self.estimate is not None
            else (
                self._connectivity.name
                if self._connectivity is not None
                else "<unbuilt>"
            )
        )
        return f"<ConnectivityDesignPoint {self.memory_name}/{name}>"


@dataclass(frozen=True)
class ConExResult(StatsReport):
    """Everything the exploration produced.

    ``estimated`` holds every Phase-I estimate; ``simulated`` the
    Phase-II simulations of the locally selected designs; ``selected``
    the global cost/performance/power pareto set. ``phase2`` bundles the
    Phase-II batch accounting (cache hits/misses, dedup, retries, pool
    rebuilds, degraded flag) as a :class:`repro.stats.BatchStats`; the
    old flat ``phase2_*`` attribute names still read, with a
    :class:`DeprecationWarning`.
    """

    trace_name: str
    estimated: tuple[ConnectivityDesignPoint, ...]
    simulated: tuple[ConnectivityDesignPoint, ...]
    selected: tuple[ConnectivityDesignPoint, ...]
    brgs: dict[str, BandwidthRequirementGraph] = field(repr=False)
    phase1_seconds: float = 0.0
    phase2_seconds: float = 0.0
    workers: int = 1
    #: Phase-II batch accounting (see :class:`repro.stats.BatchStats`).
    phase2: BatchStats = field(default_factory=BatchStats)

    _STATS_EXCLUDE = ("estimated", "simulated", "selected", "brgs")

    # Deprecated flat names (pre-1.1) for the bundled Phase-II stats.
    phase2_cache_hits = deprecated_stat(
        "ConExResult", "phase2_cache_hits", "phase2.cache_hits"
    )
    phase2_cache_misses = deprecated_stat(
        "ConExResult", "phase2_cache_misses", "phase2.cache_misses"
    )
    phase2_deduplicated = deprecated_stat(
        "ConExResult", "phase2_deduplicated", "phase2.deduplicated"
    )
    phase2_pool_rebuilds = deprecated_stat(
        "ConExResult", "phase2_pool_rebuilds", "phase2.pool_rebuilds"
    )
    phase2_degraded = deprecated_stat(
        "ConExResult", "phase2_degraded", "phase2.degraded"
    )

    @property
    def total_seconds(self) -> float:
        return self.phase1_seconds + self.phase2_seconds


def connectivity_exploration(
    trace: Trace,
    memory_eval: EvaluatedMemoryArchitecture,
    library: ConnectivityLibrary,
    config: ConExConfig,
    workers: int | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> tuple[BandwidthRequirementGraph, list[ConnectivityDesignPoint]]:
    """The paper's ``Procedure ConnectivityExploration`` for one arch.

    Returns the BRG and every estimated design point (all clustering
    levels passing the max-cost guard, all feasible allocations).
    Candidates are enumerated as index plans
    (:func:`repro.conex.allocation.plan_assignments`) and scored by the
    columnar :func:`repro.conex.estimator.estimate_plan` — architecture
    objects are only materialized lazily, for the points a caller
    actually inspects. ``REPRO_REFERENCE_ESTIMATOR=1`` reverts to
    materializing every candidate and batching through
    :func:`repro.exec.estimate_many` (bit-identical, for auditing).
    """
    memory = memory_eval.architecture
    profile = memory_eval.result
    brg = build_brg(memory, profile)
    # (plan, surviving candidate indices), deduplicated by structural
    # signature across levels — same order the eager enumeration used.
    kept: list[tuple[AssignmentPlan, list[int]]] = []
    seen: set = set()
    for level in clustering_levels(brg):
        if level.size > config.max_logical_connections:
            continue
        if level.size < config.min_logical_connections:
            continue
        plan = plan_assignments(
            level,
            library,
            name_prefix=f"{memory.name}",
            max_assignments=config.max_assignments_per_level,
            memory=memory,
        )
        indices = []
        for index in range(len(plan)):
            signature = plan.preset_signature(index)
            if signature in seen:
                continue
            seen.add(signature)
            indices.append(index)
        if indices:
            kept.append((plan, indices))

    points: list[ConnectivityDesignPoint] = []
    if reference_estimator_enabled():
        pairs = [
            (plan.materialize(index), plan)
            for plan, indices in kept
            for index in indices
        ]
        report = estimate_many(
            [
                EstimateJob(
                    memory=memory, connectivity=connectivity, profile=profile
                )
                for connectivity, _ in pairs
            ],
            workers=workers,
            runtime=runtime,
            backend=backend,
        )
        points = [
            ConnectivityDesignPoint(
                memory_eval=memory_eval,
                connectivity=connectivity,
                estimate=estimate,
            )
            for (connectivity, _), estimate in zip(pairs, report.results)
        ]
        return brg, points

    for plan, indices in kept:
        estimates = estimate_plan(memory, plan, profile, indices)
        for index, estimate in zip(indices, estimates):
            points.append(
                ConnectivityDesignPoint(
                    memory_eval=memory_eval,
                    estimate=estimate,
                    builder=partial(plan.materialize, index),
                )
            )
    return brg, points


def _thin_by_latency(
    front: Sequence[ConnectivityDesignPoint], count: int
) -> list[ConnectivityDesignPoint]:
    """Spread ``count`` picks along the latency axis of a pareto front."""
    ordered = sorted(front, key=lambda p: p.estimate.avg_latency)
    if len(ordered) <= count:
        return list(ordered)
    if count <= 1:
        # A single carry slot: keep the lowest-latency front point
        # (count < 1 cannot reach here — ordered is non-empty, so
        # len(ordered) <= 0 never passes the guard above).
        return [ordered[0]]
    picks = {0, len(ordered) - 1}
    step = (len(ordered) - 1) / (count - 1)
    for i in range(1, count - 1):
        picks.add(round(i * step))
    return [ordered[i] for i in sorted(picks)]


def explore_connectivity(
    trace: Trace,
    selected_memories: Sequence[EvaluatedMemoryArchitecture],
    library: ConnectivityLibrary,
    config: ConExConfig | None = None,
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> ConExResult:
    """Run the full ConEx algorithm (Phases I and II).

    Phase II dispatches the carried candidates through
    :func:`repro.exec.simulate_batch`: ``workers`` processes (default
    serial, see ``REPRO_WORKERS``) against the content-addressed result
    ``cache`` (default: the process-wide cache, so a repeated identical
    exploration re-simulates nothing), with candidates sharing a memory
    architecture evaluated as one group so connectivity-only variants
    pay just the contention delta pass. Pass a persistent
    :class:`repro.exec.ExecutionRuntime` to reuse one worker pool (and
    one shared trace export) across repeated explorations.
    """
    config = config or ConExConfig()
    if not selected_memories:
        raise ExplorationError("ConEx needs at least one memory architecture")

    phase1_start = time.perf_counter()
    estimated: list[ConnectivityDesignPoint] = []
    carried: list[ConnectivityDesignPoint] = []
    brgs: dict[str, BandwidthRequirementGraph] = {}
    with obs.span("conex.phase1"):
        for memory_eval in selected_memories:
            brg, points = connectivity_exploration(
                trace, memory_eval, library, config, workers=workers,
                runtime=runtime, backend=backend,
            )
            brgs[memory_eval.architecture.name] = brg
            estimated.extend(points)
            local_front = pareto_front(
                points, key=lambda p: p.estimated_objectives
            )
            carried.extend(_thin_by_latency(local_front, config.phase1_keep))
    phase1_seconds = time.perf_counter() - phase1_start

    phase2_start = time.perf_counter()
    with obs.span("conex.phase2"):
        report = simulate_batch(
            trace,
            [
                SimulationJob(
                    memory=point.memory_eval.architecture,
                    connectivity=point.connectivity,
                    sampling=config.phase2_sampling,
                )
                for point in carried
            ],
            workers=workers,
            cache=cache,
            runtime=runtime,
            backend=backend,
        )
        simulated = [
            ConnectivityDesignPoint(
                memory_eval=point.memory_eval,
                connectivity=point.connectivity,
                estimate=point.estimate,
                simulation=result,
            )
            for point, result in zip(carried, report.results)
        ]
    phase2_seconds = time.perf_counter() - phase2_start

    selected = pareto_front(simulated, key=lambda p: p.simulated_objectives)
    if obs.enabled():
        obs.incr("conex.memories", len(selected_memories))
        obs.incr("conex.estimated", len(estimated))
        obs.incr("conex.carried", len(carried))
        obs.incr("conex.pareto_survivors", len(selected))
    return ConExResult(
        trace_name=trace.name,
        estimated=tuple(estimated),
        simulated=tuple(simulated),
        selected=tuple(selected),
        brgs=brgs,
        phase1_seconds=phase1_seconds,
        phase2_seconds=phase2_seconds,
        workers=report.workers,
        phase2=report.stats,
    )
