"""Bandwidth Requirement Graph (BRG) construction.

"The nodes in the BRG represent the memory and processing cores in the
system (such as the caches, on-chip SRAMs, DMAs, off-chip DRAMs, the
CPU, etc.), and the arcs represent the channels of communication
between these modules. The BRG arcs are labeled with the average
bandwidth requirement between the two modules."

The bandwidth labels come from profiling the memory architecture under
ideal connectivity (the simulator reports per-channel traffic), so the
graph reflects the *architecture-specific* traffic — e.g. a bigger
cache lowers the cache↔DRAM arc's label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import networkx as nx

from repro.apex.architectures import MemoryArchitecture
from repro.channels import Channel
from repro.errors import ExplorationError
from repro.sim.metrics import SimulationResult


@dataclass(frozen=True)
class ArcProfile:
    """Traffic profile of one BRG arc."""

    channel: Channel
    bandwidth: float  # average bytes per cycle
    bytes_moved: int
    transactions: int  # critical-path transfers
    background_transactions: int

    @property
    def mean_transfer_bytes(self) -> float:
        """Average bytes per transfer on this arc."""
        total = self.transactions + self.background_transactions
        return self.bytes_moved / total if total else 0.0


class BandwidthRequirementGraph:
    """The BRG: channels labeled with profiled bandwidth."""

    def __init__(
        self,
        memory_name: str,
        duration: int,
        arcs: Mapping[Channel, ArcProfile],
    ) -> None:
        if not arcs:
            raise ExplorationError("BRG has no arcs")
        if duration <= 0:
            raise ExplorationError(f"BRG duration must be positive: {duration}")
        self.memory_name = memory_name
        self.duration = duration
        self._arcs = dict(arcs)

    @property
    def channels(self) -> tuple[Channel, ...]:
        """All arcs, sorted by bandwidth descending (hottest first)."""
        return tuple(
            sorted(
                self._arcs,
                key=lambda c: (-self._arcs[c].bandwidth, c.name),
            )
        )

    def arc(self, channel: Channel) -> ArcProfile:
        """Profile of one arc."""
        try:
            return self._arcs[channel]
        except KeyError:
            raise ExplorationError(
                f"BRG of '{self.memory_name}' has no arc {channel.name}"
            ) from None

    def bandwidth(self, channel: Channel) -> float:
        """Average bytes/cycle on one arc."""
        return self.arc(channel).bandwidth

    def on_chip_channels(self) -> tuple[Channel, ...]:
        """Arcs between on-chip endpoints, hottest first."""
        return tuple(c for c in self.channels if not c.crosses_chip)

    def crossing_channels(self) -> tuple[Channel, ...]:
        """Arcs crossing the chip boundary, hottest first."""
        return tuple(c for c in self.channels if c.crosses_chip)

    def to_networkx(self) -> nx.DiGraph:
        """The BRG as a :class:`networkx.DiGraph` (for analysis/plots)."""
        graph = nx.DiGraph(memory=self.memory_name, duration=self.duration)
        for channel, profile in self._arcs.items():
            graph.add_edge(
                channel.source,
                channel.destination,
                bandwidth=profile.bandwidth,
                bytes=profile.bytes_moved,
                transactions=profile.transactions,
            )
        return graph

    def describe(self) -> str:
        """Multi-line summary, hottest arcs first."""
        lines = [f"BRG[{self.memory_name}] over {self.duration} cycles"]
        for channel in self.channels:
            profile = self._arcs[channel]
            transfers = profile.transactions + profile.background_transactions
            lines.append(
                f"  {channel.name}: {profile.bandwidth:.4f} B/cyc "
                f"({profile.bytes_moved} B, {transfers} xfers)"
            )
        return "\n".join(lines)


def build_brg(
    memory: MemoryArchitecture, profile: SimulationResult
) -> BandwidthRequirementGraph:
    """Build the BRG of ``memory`` from an ideal-connectivity profile.

    ``profile`` must come from simulating the same architecture (the
    channel names are matched against the architecture's channels).
    """
    if profile.memory_name != memory.name:
        raise ExplorationError(
            f"profile is for '{profile.memory_name}', not '{memory.name}'"
        )
    arcs: dict[Channel, ArcProfile] = {}
    by_name = {t.channel_name: t for t in profile.channels.values()}
    for source_destination, traffic in by_name.items():
        source, _, destination = source_destination.partition("->")
        channel = Channel(source, destination)
        arcs[channel] = ArcProfile(
            channel=channel,
            bandwidth=traffic.bytes_moved / profile.total_cycles,
            bytes_moved=traffic.bytes_moved,
            transactions=traffic.transactions,
            background_transactions=traffic.background_transactions,
        )
    return BandwidthRequirementGraph(
        memory_name=memory.name,
        duration=profile.total_cycles,
        arcs=arcs,
    )
