"""Phase-I fast estimation of cost / performance / energy.

"We estimate the cost, performance and power of each such connectivity
architecture" without simulating it: the memory architecture was
profiled once under ideal connectivity (module latencies, miss traffic,
per-channel transfer counts), and the estimator prices what each
candidate connectivity adds on top:

* **cost** — memory-module area plus the candidate's controllers and
  wires;
* **performance** — per-transfer component latency plus an M/D/1-style
  contention wait derived from the component's reservation-table
  initiation interval and the channel cluster's offered load
  (non-split components additionally hold the bus during the DRAM
  wait, which is the AHB-vs-ASB effect). Contention is closed-loop:
  the CPU is a single blocking master, so critical transfers never
  queue against themselves — the expected wait comes from the
  *background* traffic (prefetches, writebacks) occupying the shared
  component, and is capped at a few service times (a saturated channel
  throttles the closed-loop request rate instead of growing an
  unbounded backlog);
* **energy** — per-byte wire/pad switching energy over the profiled
  traffic.

Absolute accuracy is secondary; like the paper's time-sampling, the
estimator only has to *rank* candidates well enough to prune
(benchmark ``abl1`` measures exactly that fidelity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.apex.architectures import MemoryArchitecture
from repro.channels import Channel
from repro.connectivity.architecture import ConnectivityArchitecture
from repro.errors import ExplorationError
from repro.sim.metrics import SimulationResult

#: Closed-loop cap on the expected wait, in service-time units: a
#: blocking master cannot queue more deeply than a few in-flight
#: services' worth of backlog (background prefetch/writeback traffic).
CLOSED_LOOP_WAIT_CAP = 3.0


@dataclass(frozen=True)
class ConnectivityEstimate:
    """Estimated objectives of one (memory, connectivity) design."""

    memory_name: str
    connectivity_name: str
    cost_gates: float
    avg_latency: float
    avg_energy_nj: float
    channel_waits: Mapping[str, float]

    @property
    def objectives(self) -> tuple[float, float, float]:
        """(cost, performance, power), all minimized."""
        return (self.cost_gates, self.avg_latency, self.avg_energy_nj)


def _mean_dram_latency(memory: MemoryArchitecture) -> float:
    """Expected DRAM core latency (even page-hit/miss mix assumed)."""
    dram = memory.dram
    return 0.5 * (dram.core_latency + dram.page_hit_latency)


def estimate_design(
    memory: MemoryArchitecture,
    connectivity: ConnectivityArchitecture,
    profile: SimulationResult,
) -> ConnectivityEstimate:
    """Estimate one design from its ideal-connectivity profile."""
    if profile.memory_name != memory.name:
        raise ExplorationError(
            f"profile is for '{profile.memory_name}', not '{memory.name}'"
        )
    duration = profile.total_cycles
    accesses = profile.accesses
    dram_mean = _mean_dram_latency(memory)

    added_latency = 0.0
    added_energy = 0.0
    channel_waits: dict[str, float] = {}

    for cluster in connectivity.clusters:
        component = cluster.component
        # Aggregate the offered load of every channel sharing the
        # component instance.
        total_transfers = 0
        background_transfers = 0
        total_bytes = 0
        critical: list[tuple[Channel, int, float]] = []
        for channel in cluster.channels:
            traffic = profile.channels.get(channel.name)
            if traffic is None:
                continue
            total_transfers += traffic.all_transactions
            background_transfers += traffic.background_transactions
            total_bytes += traffic.bytes_moved
            if traffic.transactions:
                mean_size = max(
                    1.0, traffic.bytes_moved / traffic.all_transactions
                )
                critical.append((channel, traffic.transactions, mean_size))
            added_energy += (
                traffic.bytes_moved
                * connectivity.energy_nj_per_byte(channel, memory)
            )
        if total_transfers == 0:
            continue
        mean_bytes = max(1, round(total_bytes / total_transfers))

        # Service interval from the reservation table; non-split
        # components carrying chip-boundary traffic also hold the bus
        # during the DRAM wait.
        table = component.reservation_table(mean_bytes)
        service = float(table.min_initiation_interval())
        if cluster.crosses_chip and not component.split_transactions:
            service += dram_mean
        # Only background traffic contends with the blocking master's
        # own transfers; its occupancy fraction times half a service is
        # the expected residual wait, amplified as the channel nears
        # saturation and capped by the closed loop.
        rho_background = service * background_transfers / duration
        rho_total = min(0.95, service * total_transfers / duration)
        wait = min(
            service * rho_background / (2.0 * (1.0 - rho_total)),
            service * CLOSED_LOOP_WAIT_CAP,
        )

        # Each critical transfer pays the component's transfer latency
        # plus the cluster's expected wait.
        for channel, transfers, mean_size in critical:
            latency = component.timing(max(1, round(mean_size))).latency
            added_latency += (latency + wait) * transfers / accesses
            channel_waits[channel.name] = wait

    cost = profile.memory_cost_gates + connectivity.cost_gates(memory)
    return ConnectivityEstimate(
        memory_name=memory.name,
        connectivity_name=connectivity.name,
        cost_gates=cost,
        avg_latency=profile.avg_latency + added_latency,
        avg_energy_nj=profile.avg_energy_nj + added_energy / accesses,
        channel_waits=channel_waits,
    )
