"""Phase-I fast estimation of cost / performance / energy.

"We estimate the cost, performance and power of each such connectivity
architecture" without simulating it: the memory architecture was
profiled once under ideal connectivity (module latencies, miss traffic,
per-channel transfer counts), and the estimator prices what each
candidate connectivity adds on top:

* **cost** — memory-module area plus the candidate's controllers and
  wires;
* **performance** — per-transfer component latency plus an M/D/1-style
  contention wait derived from the component's reservation-table
  initiation interval and the channel cluster's offered load
  (non-split components additionally hold the bus during the DRAM
  wait, which is the AHB-vs-ASB effect). Contention is closed-loop:
  the CPU is a single blocking master, so critical transfers never
  queue against themselves — the expected wait comes from the
  *background* traffic (prefetches, writebacks) occupying the shared
  component, and is capped at a few service times (a saturated channel
  throttles the closed-loop request rate instead of growing an
  unbounded backlog);
* **energy** — per-byte wire/pad switching energy over the profiled
  traffic.

Absolute accuracy is secondary; like the paper's time-sampling, the
estimator only has to *rank* candidates well enough to prune
(benchmark ``abl1`` measures exactly that fidelity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro import obs
from repro.apex.architectures import MemoryArchitecture
from repro.config import current_settings
from repro.channels import Channel
from repro.connectivity.architecture import (
    ConnectivityArchitecture,
    attached_area_gates,
    cluster_ports,
)
from repro.errors import ExplorationError
from repro.sim.metrics import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.conex.allocation import AssignmentPlan

#: Closed-loop cap on the expected wait, in service-time units: a
#: blocking master cannot queue more deeply than a few in-flight
#: services' worth of backlog (background prefetch/writeback traffic).
CLOSED_LOOP_WAIT_CAP = 3.0

#: Fraction of each background transfer's transport latency that
#: escapes latency hiding and stalls the consumer. Background traffic
#: (DMA prefetches, cache writebacks) is mostly overlapped, but a
#: channel dominated by it — e.g. a DMA's backing link, where the
#: lookahead window is finite — throttles the closed loop roughly in
#: proportion to the per-transfer latency the connectivity adds.
#: Without this term, channels whose traffic is almost entirely
#: background (dma->dram) are priced only through contention waits on
#: their handful of demand transfers, and the estimator inverts the
#: ranking of designs that differ in which off-chip channel got the
#: wide bus.
BACKGROUND_CRITICALITY = 0.5

#: Set to ``1`` to make :func:`estimate_plan` fall back to materializing
#: each candidate and calling :func:`estimate_design` — the scalar
#: reference path the columnar estimator must match bit-for-bit.
REFERENCE_ESTIMATOR_ENV = "REPRO_REFERENCE_ESTIMATOR"


def reference_estimator_enabled() -> bool:
    """Did the environment opt out of the columnar Phase-I estimator?"""
    return current_settings().reference_estimator


@dataclass(frozen=True)
class ConnectivityEstimate:
    """Estimated objectives of one (memory, connectivity) design."""

    memory_name: str
    connectivity_name: str
    cost_gates: float
    avg_latency: float
    avg_energy_nj: float
    channel_waits: Mapping[str, float]

    @property
    def objectives(self) -> tuple[float, float, float]:
        """(cost, performance, power), all minimized."""
        return (self.cost_gates, self.avg_latency, self.avg_energy_nj)


def _mean_dram_latency(memory: MemoryArchitecture) -> float:
    """Expected DRAM core latency (even page-hit/miss mix assumed)."""
    dram = memory.dram
    return 0.5 * (dram.core_latency + dram.page_hit_latency)


def estimate_design(
    memory: MemoryArchitecture,
    connectivity: ConnectivityArchitecture,
    profile: SimulationResult,
) -> ConnectivityEstimate:
    """Estimate one design from its ideal-connectivity profile."""
    if profile.memory_name != memory.name:
        raise ExplorationError(
            f"profile is for '{profile.memory_name}', not '{memory.name}'"
        )
    duration = profile.total_cycles
    accesses = profile.accesses
    dram_mean = _mean_dram_latency(memory)

    added_latency = 0.0
    added_energy = 0.0
    channel_waits: dict[str, float] = {}

    for cluster in connectivity.clusters:
        component = cluster.component
        # Aggregate the offered load of every channel sharing the
        # component instance.
        total_transfers = 0
        background_transfers = 0
        total_bytes = 0
        critical: list[tuple[Channel, int, float]] = []
        for channel in cluster.channels:
            traffic = profile.channels.get(channel.name)
            if traffic is None:
                continue
            total_transfers += traffic.all_transactions
            background_transfers += traffic.background_transactions
            total_bytes += traffic.bytes_moved
            if traffic.transactions:
                mean_size = max(
                    1.0, traffic.bytes_moved / traffic.all_transactions
                )
                critical.append((channel, traffic.transactions, mean_size))
            added_energy += (
                traffic.bytes_moved
                * connectivity.energy_nj_per_byte(channel, memory)
            )
        if total_transfers == 0:
            continue
        mean_bytes = max(1, round(total_bytes / total_transfers))

        # Service interval from the reservation table; non-split
        # components carrying chip-boundary traffic also hold the bus
        # during the DRAM wait.
        table = component.reservation_table(mean_bytes)
        service = float(table.min_initiation_interval())
        if cluster.crosses_chip and not component.split_transactions:
            service += dram_mean
        # Only background traffic contends with the blocking master's
        # own transfers; its occupancy fraction times half a service is
        # the expected residual wait, amplified as the channel nears
        # saturation and capped by the closed loop.
        rho_background = service * background_transfers / duration
        rho_total = min(0.95, service * total_transfers / duration)
        wait = min(
            service * rho_background / (2.0 * (1.0 - rho_total)),
            service * CLOSED_LOOP_WAIT_CAP,
        )

        # Each critical transfer pays the component's transfer latency
        # plus the cluster's expected wait.
        for channel, transfers, mean_size in critical:
            latency = component.timing(max(1, round(mean_size))).latency
            added_latency += (latency + wait) * transfers / accesses
            channel_waits[channel.name] = wait
        # Background transfers stall the consumer for the fraction of
        # their transport latency the lookahead cannot hide.
        if background_transfers:
            latency = component.timing(mean_bytes).latency
            added_latency += (
                BACKGROUND_CRITICALITY
                * (latency + wait)
                * background_transfers
                / accesses
            )

    cost = profile.memory_cost_gates + connectivity.cost_gates(memory)
    return ConnectivityEstimate(
        memory_name=memory.name,
        connectivity_name=connectivity.name,
        cost_gates=cost,
        avg_latency=profile.avg_latency + added_latency,
        avg_energy_nj=profile.avg_energy_nj + added_energy / accesses,
        channel_waits=channel_waits,
    )


def estimate_plan(
    memory: MemoryArchitecture,
    plan: "AssignmentPlan",
    profile: SimulationResult,
    indices: Sequence[int] | None = None,
) -> list[ConnectivityEstimate]:
    """Estimate the plan's candidates columnarly; one estimate per index.

    Candidates of one clustering level differ only in which preset each
    cluster picked, so everything expensive factors by (cluster,
    preset): traffic aggregates are preset-independent, and the per
    (cluster, preset) cost / energy / latency / wait scalars are
    candidate-independent. This function computes each scalar once with
    exactly the arithmetic of :func:`estimate_design`, then folds them
    over candidates as NumPy vectors — elementwise float64 adds in the
    same order as the scalar accumulation, so results are bit-identical
    (``REPRO_REFERENCE_ESTIMATOR=1`` reverts to materialize-and-call
    for auditing).

    ``indices`` selects a subset of the plan's candidates (defaults to
    all); results are ordered like ``indices``.
    """
    with obs.span("conex.estimate_plan"):
        estimates = _estimate_plan(memory, plan, profile, indices)
    if obs.enabled():
        obs.incr("estimator.candidates", len(estimates))
    return estimates


def _estimate_plan(
    memory: MemoryArchitecture,
    plan: "AssignmentPlan",
    profile: SimulationResult,
    indices: Sequence[int] | None,
) -> list[ConnectivityEstimate]:
    if indices is None:
        indices = range(len(plan))
    index_list = list(indices)
    if reference_estimator_enabled():
        return [
            estimate_design(memory, plan.materialize(index), profile)
            for index in index_list
        ]
    if profile.memory_name != memory.name:
        raise ExplorationError(
            f"profile is for '{profile.memory_name}', not '{memory.name}'"
        )
    if not index_list:
        return []
    duration = profile.total_cycles
    accesses = profile.accesses
    dram_mean = _mean_dram_latency(memory)

    count = len(index_list)
    choices = plan.choices[np.asarray(index_list, dtype=np.int64)]
    cost_acc = np.zeros(count, dtype=np.float64)
    latency_acc = np.zeros(count, dtype=np.float64)
    energy_acc = np.zeros(count, dtype=np.float64)
    # (channel name, per-candidate wait) in scalar insertion order.
    wait_entries: list[tuple[str, np.ndarray]] = []

    for position, cluster in enumerate(plan.level.clusters):
        presets = plan.presets[position]
        components = [preset.build() for preset in presets]
        column = choices[:, position]
        ports = cluster_ports(cluster.endpoints, memory)
        area = attached_area_gates(cluster.endpoints, memory)

        cost_terms = np.array(
            [
                component.cost_gates(ports=ports, attached_area_gates=area)
                for component in components
            ],
            dtype=np.float64,
        )
        cost_acc = cost_acc + cost_terms[column]

        energy_per_byte = [
            component.energy_nj_per_byte(
                ports=ports, attached_area_gates=area
            )
            for component in components
        ]

        total_transfers = 0
        background_transfers = 0
        total_bytes = 0
        critical: list[tuple[Channel, int, float]] = []
        for channel in cluster.channels:
            traffic = profile.channels.get(channel.name)
            if traffic is None:
                continue
            total_transfers += traffic.all_transactions
            background_transfers += traffic.background_transactions
            total_bytes += traffic.bytes_moved
            if traffic.transactions:
                mean_size = max(
                    1.0, traffic.bytes_moved / traffic.all_transactions
                )
                critical.append((channel, traffic.transactions, mean_size))
            # The scalar path adds each channel's energy to the running
            # total one term at a time; replicate that fold exactly.
            energy_terms = np.array(
                [traffic.bytes_moved * epb for epb in energy_per_byte],
                dtype=np.float64,
            )
            energy_acc = energy_acc + energy_terms[column]
        if total_transfers == 0:
            continue
        mean_bytes = max(1, round(total_bytes / total_transfers))

        waits = []
        for component in components:
            table = component.reservation_table(mean_bytes)
            service = float(table.min_initiation_interval())
            if cluster.crosses_chip and not component.split_transactions:
                service += dram_mean
            rho_background = service * background_transfers / duration
            rho_total = min(0.95, service * total_transfers / duration)
            waits.append(
                min(
                    service * rho_background / (2.0 * (1.0 - rho_total)),
                    service * CLOSED_LOOP_WAIT_CAP,
                )
            )

        for channel, transfers, mean_size in critical:
            size = max(1, round(mean_size))
            latency_terms = np.array(
                [
                    (component.timing(size).latency + wait)
                    * transfers
                    / accesses
                    for component, wait in zip(components, waits)
                ],
                dtype=np.float64,
            )
            latency_acc = latency_acc + latency_terms[column]
            wait_entries.append(
                (channel.name, np.array(waits, dtype=np.float64)[column])
            )
        # Same background-criticality fold as the scalar path, added
        # after the cluster's critical channels to keep the float adds
        # in the scalar accumulation order.
        if background_transfers:
            background_terms = np.array(
                [
                    BACKGROUND_CRITICALITY
                    * (component.timing(mean_bytes).latency + wait)
                    * background_transfers
                    / accesses
                    for component, wait in zip(components, waits)
                ],
                dtype=np.float64,
            )
            latency_acc = latency_acc + background_terms[column]

    cost = profile.memory_cost_gates + cost_acc
    avg_latency = profile.avg_latency + latency_acc
    avg_energy = profile.avg_energy_nj + energy_acc / accesses

    estimates = []
    for row, index in enumerate(index_list):
        estimates.append(
            ConnectivityEstimate(
                memory_name=memory.name,
                connectivity_name=plan.name(index),
                cost_gates=float(cost[row]),
                avg_latency=float(avg_latency[row]),
                avg_energy_nj=float(avg_energy[row]),
                channel_waits={
                    name: float(values[row]) for name, values in wait_entries
                },
            )
        )
    return estimates
