"""Hierarchical clustering of BRG arcs into logical connections.

"In order to allow different communication channels to share the same
connectivity module, we hierarchically cluster the BRG arcs into
logical connections, based on the bandwidth requirement of each
channel. We first group the channels with the lowest bandwidth
requirements into logical connections. We label each such cluster with
the cumulative bandwidth of the individual channels, and continue the
hierarchical clustering."

Two physical constraints refine the merge order:

* channels crossing the chip boundary never merge with on-chip channels
  (a physical component is either on-chip or through the pads — see
  Figure 2(b), where the off-chip bus is separate); and
* the top clustering level therefore has one on-chip and one crossing
  cluster rather than a single cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channels import Channel
from repro.conex.brg import BandwidthRequirementGraph
from repro.errors import ExplorationError


@dataclass(frozen=True)
class LogicalConnection:
    """A cluster of channels with its cumulative bandwidth label."""

    channels: tuple[Channel, ...]
    bandwidth: float
    crosses_chip: bool

    @property
    def endpoints(self) -> tuple[str, ...]:
        names: set[str] = set()
        for channel in self.channels:
            names.update(channel.endpoints())
        return tuple(sorted(names))


@dataclass(frozen=True)
class ClusteringLevel:
    """One level of the hierarchy: a partition of all channels."""

    clusters: tuple[LogicalConnection, ...]

    @property
    def size(self) -> int:
        """Number of logical connections at this level."""
        return len(self.clusters)


def _merge(a: LogicalConnection, b: LogicalConnection) -> LogicalConnection:
    return LogicalConnection(
        channels=tuple(
            sorted(a.channels + b.channels, key=lambda c: c.name)
        ),
        bandwidth=a.bandwidth + b.bandwidth,
        crosses_chip=a.crosses_chip,
    )


def clustering_levels(brg: BandwidthRequirementGraph) -> list[ClusteringLevel]:
    """All levels of the hierarchical clustering, finest first.

    Level 0 assigns every channel its own logical connection (the
    paper's "naive implementation"); each subsequent level merges the
    two lowest-cumulative-bandwidth clusters of the same chip domain;
    the last level has at most one cluster per domain.
    """
    clusters: list[LogicalConnection] = [
        LogicalConnection(
            channels=(channel,),
            bandwidth=brg.bandwidth(channel),
            crosses_chip=channel.crosses_chip,
        )
        for channel in brg.channels
    ]
    if not clusters:
        raise ExplorationError("cannot cluster an empty BRG")

    levels = [ClusteringLevel(clusters=tuple(clusters))]
    while True:
        # Candidate pair: the two lowest-bandwidth clusters sharing a
        # domain, preferring the overall lowest combined bandwidth.
        best_pair: tuple[int, int] | None = None
        best_bandwidth = float("inf")
        for domain in (False, True):
            members = [
                i for i, c in enumerate(clusters) if c.crosses_chip is domain
            ]
            if len(members) < 2:
                continue
            ordered = sorted(members, key=lambda i: clusters[i].bandwidth)
            first, second = ordered[0], ordered[1]
            combined = clusters[first].bandwidth + clusters[second].bandwidth
            if combined < best_bandwidth:
                best_bandwidth = combined
                best_pair = (min(first, second), max(first, second))
        if best_pair is None:
            break
        low, high = best_pair
        merged = _merge(clusters[low], clusters[high])
        clusters = (
            clusters[:low]
            + clusters[low + 1 : high]
            + clusters[high + 1 :]
            + [merged]
        )
        levels.append(ClusteringLevel(clusters=tuple(clusters)))
    return levels
