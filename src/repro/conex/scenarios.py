"""Constrained selection scenarios (Section 5 of the paper).

"We select the most promising architectures using three scenarios:
(a) in a power-constrained scenario ... we determine the
cost/performance pareto points, while keeping the power less than the
constraint, (b) in a cost-constrained scenario, we compute the
performance/power pareto points, and (c) in a performance-constrained
scenario, we compute the pareto points in the cost-power space."

Each function filters the simulated design points by the constraint,
then extracts the two-dimensional pareto front over the remaining
axes.
"""

from __future__ import annotations

from typing import Sequence

from repro.conex.explorer import ConnectivityDesignPoint
from repro.errors import ExplorationError
from repro.util.pareto import pareto_front


def _simulated(points: Sequence[ConnectivityDesignPoint]) -> None:
    if not points:
        raise ExplorationError("scenario selection needs design points")
    for point in points:
        if point.simulation is None:
            raise ExplorationError(
                f"design {point.label()} lacks a Phase-II simulation"
            )


def power_constrained_selection(
    points: Sequence[ConnectivityDesignPoint],
    max_energy_nj: float,
) -> list[ConnectivityDesignPoint]:
    """Cost/performance pareto among designs meeting the energy budget."""
    _simulated(points)
    feasible = [
        p for p in points if p.simulation.avg_energy_nj <= max_energy_nj
    ]
    return pareto_front(
        feasible,
        key=lambda p: (p.simulation.cost_gates, p.simulation.avg_latency),
    )


def cost_constrained_selection(
    points: Sequence[ConnectivityDesignPoint],
    max_cost_gates: float,
) -> list[ConnectivityDesignPoint]:
    """Performance/power pareto among designs meeting the cost budget."""
    _simulated(points)
    feasible = [p for p in points if p.simulation.cost_gates <= max_cost_gates]
    return pareto_front(
        feasible,
        key=lambda p: (p.simulation.avg_latency, p.simulation.avg_energy_nj),
    )


def performance_constrained_selection(
    points: Sequence[ConnectivityDesignPoint],
    max_latency: float,
) -> list[ConnectivityDesignPoint]:
    """Cost/power pareto among designs meeting the latency requirement."""
    _simulated(points)
    feasible = [p for p in points if p.simulation.avg_latency <= max_latency]
    return pareto_front(
        feasible,
        key=lambda p: (p.simulation.cost_gates, p.simulation.avg_energy_nj),
    )
