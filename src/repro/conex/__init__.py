"""ConEx: Connectivity EXploration — the paper's contribution.

For each memory architecture selected by APEX, ConEx:

1. profiles per-channel bandwidth and builds the Bandwidth Requirement
   Graph (:mod:`repro.conex.brg`);
2. hierarchically clusters the BRG arcs into logical connections,
   lowest bandwidth first (:mod:`repro.conex.clustering`);
3. enumerates feasible assignments of clusters to components of the
   connectivity IP library (:mod:`repro.conex.allocation`);
4. estimates each assignment's cost / performance / energy with
   reservation-table timing plus a queueing contention correction
   (:mod:`repro.conex.estimator`) — Phase I;
5. fully simulates the locally most promising designs and selects the
   global pareto set (:mod:`repro.conex.explorer`) — Phase II;
6. offers the paper's three constrained-selection scenarios
   (:mod:`repro.conex.scenarios`).
"""

from repro.conex.brg import BandwidthRequirementGraph, build_brg
from repro.conex.clustering import ClusteringLevel, clustering_levels
from repro.conex.allocation import (
    AssignmentPlan,
    assignment_neighbors,
    enumerate_assignments,
    plan_assignments,
)
from repro.conex.estimator import (
    ConnectivityEstimate,
    estimate_design,
    estimate_plan,
)
from repro.conex.explorer import (
    ConExConfig,
    ConExResult,
    ConnectivityDesignPoint,
    explore_connectivity,
)
from repro.conex.scenarios import (
    cost_constrained_selection,
    performance_constrained_selection,
    power_constrained_selection,
)

__all__ = [
    "AssignmentPlan",
    "BandwidthRequirementGraph",
    "ClusteringLevel",
    "ConExConfig",
    "ConExResult",
    "ConnectivityDesignPoint",
    "ConnectivityEstimate",
    "assignment_neighbors",
    "build_brg",
    "clustering_levels",
    "cost_constrained_selection",
    "enumerate_assignments",
    "estimate_design",
    "estimate_plan",
    "explore_connectivity",
    "performance_constrained_selection",
    "power_constrained_selection",
]
