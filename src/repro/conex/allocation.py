"""Allocation: logical connections → physical connectivity components.

"Allocate the logical connections to physical connections from the
Connectivity Library" — for one clustering level, enumerate every
feasible assignment of clusters to library presets:

* clusters carrying chip-boundary channels may only use
  off-chip-capable presets;
* a preset must support at least as many ports as the cluster has
  endpoints (a dedicated link cannot implement a three-endpoint
  cluster);
* each cluster gets its *own instance* of the chosen preset (two
  clusters assigned "ahb" are two separate AHB buses).

The full cross product can be large at fine clustering levels; the
``max_assignments`` guard thins it deterministically (evenly strided)
so exploration cost stays bounded — mirroring the paper's "max cost
constraint" guard on the number of logical connections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.conex.clustering import ClusteringLevel, LogicalConnection
from repro.connectivity.architecture import (
    ClusterAssignment,
    ConnectivityArchitecture,
    cluster_ports,
)
from repro.connectivity.library import ConnectivityLibrary, ConnectivityPreset
from repro.errors import ExplorationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.apex.architectures import MemoryArchitecture


def compatible_presets(
    cluster: LogicalConnection,
    library: ConnectivityLibrary,
    memory: "MemoryArchitecture | None" = None,
) -> list[ConnectivityPreset]:
    """Library presets able to implement ``cluster``.

    With ``memory``, port demand weighs multi-port modules by their
    port count (:func:`repro.connectivity.architecture.cluster_ports`);
    without it, each endpoint counts one port.
    """
    if cluster.crosses_chip:
        pool = library.off_chip_choices()
    else:
        pool = library.on_chip_choices()
    ports = cluster_ports(cluster.endpoints, memory)
    return [preset for preset in pool if preset.max_ports >= ports]


def _strided_flat_indices(total: int, limit: int) -> list[int]:
    """Flat cross-product indices, evenly thinned to ``limit``.

    The stride accumulates in floating point on purpose — this is the
    historical thinning rule, and the enumerated candidate set (hence
    every downstream golden number) depends on reproducing the exact
    ``int(position)`` sequence.
    """
    if total <= limit:
        return list(range(total))
    stride = total / limit
    position = 0.0
    flats = []
    for _ in range(limit):
        flats.append(int(position))
        position += stride
    return flats


def _decode_flat(flat: int, radices: Sequence[int]) -> tuple[int, ...]:
    """Mixed-radix digits of ``flat``, last cluster least significant."""
    digits = []
    remainder = flat
    for radix in reversed(radices):
        remainder, digit = divmod(remainder, radix)
        digits.append(digit)
    return tuple(reversed(digits))


def _strided_product(
    choices: Sequence[Sequence[ConnectivityPreset]], limit: int
) -> Iterator[tuple[ConnectivityPreset, ...]]:
    """The cross product of ``choices``, evenly thinned to ``limit``."""
    radices = [len(options) for options in choices]
    total = 1
    for radix in radices:
        total *= radix
    for flat in _strided_flat_indices(total, limit):
        digits = _decode_flat(flat, radices)
        yield tuple(
            options[digit] for options, digit in zip(choices, digits)
        )


@dataclass(frozen=True, eq=False)
class AssignmentPlan:
    """A clustering level's candidate assignments, without the objects.

    The plan holds the per-cluster preset pools plus an ``(N, clusters)``
    index matrix — one row per candidate, one column per cluster. Names,
    signatures, and the columnar Phase-I estimator all work straight off
    the indices; :meth:`materialize` builds the full
    :class:`ConnectivityArchitecture` (the expensive part: one component
    instance per cluster) only for the candidates that survive pruning.

    Candidate order, names, and the thinning rule are exactly those of
    :func:`enumerate_assignments`, which is now a thin wrapper that
    materializes every row.
    """

    level: ClusteringLevel
    presets: tuple[tuple[ConnectivityPreset, ...], ...]
    choices: np.ndarray
    name_prefix: str

    def __len__(self) -> int:
        return len(self.choices)

    def name(self, index: int) -> str:
        """The architecture name candidate ``index`` will carry."""
        return f"{self.name_prefix}_L{self.level.size}_{index}"

    def preset_signature(self, index: int) -> tuple:
        """Structural signature of candidate ``index``.

        Matches
        :meth:`~repro.connectivity.architecture.ConnectivityArchitecture.preset_signature`
        of the materialized candidate, so dedup can run before any
        component is built.
        """
        row = self.choices[index]
        return tuple(
            sorted(
                (
                    tuple(sorted(channel.name for channel in cluster.channels)),
                    self.presets[position][row[position]].name,
                )
                for position, cluster in enumerate(self.level.clusters)
            )
        )

    def materialize(self, index: int) -> ConnectivityArchitecture:
        """Build the full architecture object for candidate ``index``."""
        row = self.choices[index]
        clusters = []
        for position, cluster in enumerate(self.level.clusters):
            preset = self.presets[position][row[position]]
            component = preset.instantiate(f"{preset.name}#{position}")
            clusters.append(
                ClusterAssignment(
                    channels=cluster.channels,
                    preset_name=preset.name,
                    component=component,
                )
            )
        return ConnectivityArchitecture(
            name=self.name(index), clusters=clusters
        )


def plan_assignments(
    level: ClusteringLevel,
    library: ConnectivityLibrary,
    name_prefix: str = "conn",
    max_assignments: int = 4096,
    memory: "MemoryArchitecture | None" = None,
) -> AssignmentPlan:
    """The feasible assignments for one level, as an index plan.

    Raises :class:`ExplorationError` when some cluster has no
    compatible preset (the level is infeasible with this library).
    ``memory`` refines port feasibility for multi-port modules.
    """
    if max_assignments < 1:
        raise ExplorationError(
            f"max_assignments must be >= 1: {max_assignments}"
        )
    per_cluster: list[tuple[ConnectivityPreset, ...]] = []
    for cluster in level.clusters:
        presets = compatible_presets(cluster, library, memory)
        if not presets:
            raise ExplorationError(
                f"no library preset can implement cluster with endpoints "
                f"{cluster.endpoints}"
            )
        per_cluster.append(tuple(presets))

    radices = [len(presets) for presets in per_cluster]
    total = 1
    for radix in radices:
        total *= radix
    flats = _strided_flat_indices(total, max_assignments)
    choices = np.empty((len(flats), len(per_cluster)), dtype=np.int64)
    for row, flat in enumerate(flats):
        choices[row] = _decode_flat(flat, radices)
    choices.setflags(write=False)
    return AssignmentPlan(
        level=level,
        presets=tuple(per_cluster),
        choices=choices,
        name_prefix=name_prefix,
    )


def assignment_neighbors(
    connectivity: ConnectivityArchitecture,
    library: ConnectivityLibrary,
    memory: "MemoryArchitecture | None" = None,
) -> list[ConnectivityArchitecture]:
    """One-swap neighbors: each cluster re-mapped to each alternative.

    The Neighborhood strategy (paper Table 2) explores "the points in
    the neighborhood of the points selected by the Pruned approach";
    in the connectivity dimension a design's neighbors are the
    assignments differing in exactly one cluster's component.
    """
    neighbors: list[ConnectivityArchitecture] = []
    for index, cluster in enumerate(connectivity.clusters):
        logical = LogicalConnection(
            channels=cluster.channels,
            bandwidth=0.0,
            crosses_chip=cluster.crosses_chip,
        )
        for preset in compatible_presets(logical, library, memory):
            if preset.name == cluster.preset_name:
                continue
            clusters = list(connectivity.clusters)
            clusters[index] = ClusterAssignment(
                channels=cluster.channels,
                preset_name=preset.name,
                component=preset.instantiate(f"{preset.name}#{index}"),
            )
            neighbors.append(
                ConnectivityArchitecture(
                    name=f"{connectivity.name}~{index}:{preset.name}",
                    clusters=clusters,
                )
            )
    return neighbors


def enumerate_assignments(
    level: ClusteringLevel,
    library: ConnectivityLibrary,
    name_prefix: str = "conn",
    max_assignments: int = 4096,
    memory: "MemoryArchitecture | None" = None,
) -> list[ConnectivityArchitecture]:
    """All feasible connectivity architectures for one clustering level.

    Raises :class:`ExplorationError` when some cluster has no
    compatible preset (the level is infeasible with this library).
    """
    plan = plan_assignments(
        level, library, name_prefix=name_prefix,
        max_assignments=max_assignments, memory=memory,
    )
    return [plan.materialize(index) for index in range(len(plan))]
