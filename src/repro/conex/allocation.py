"""Allocation: logical connections → physical connectivity components.

"Allocate the logical connections to physical connections from the
Connectivity Library" — for one clustering level, enumerate every
feasible assignment of clusters to library presets:

* clusters carrying chip-boundary channels may only use
  off-chip-capable presets;
* a preset must support at least as many ports as the cluster has
  endpoints (a dedicated link cannot implement a three-endpoint
  cluster);
* each cluster gets its *own instance* of the chosen preset (two
  clusters assigned "ahb" are two separate AHB buses).

The full cross product can be large at fine clustering levels; the
``max_assignments`` guard thins it deterministically (evenly strided)
so exploration cost stays bounded — mirroring the paper's "max cost
constraint" guard on the number of logical connections.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from repro.conex.clustering import ClusteringLevel, LogicalConnection
from repro.connectivity.architecture import (
    ClusterAssignment,
    ConnectivityArchitecture,
)
from repro.connectivity.library import ConnectivityLibrary, ConnectivityPreset
from repro.errors import ExplorationError


def compatible_presets(
    cluster: LogicalConnection, library: ConnectivityLibrary
) -> list[ConnectivityPreset]:
    """Library presets able to implement ``cluster``."""
    if cluster.crosses_chip:
        pool = library.off_chip_choices()
    else:
        pool = library.on_chip_choices()
    ports = len(cluster.endpoints)
    result = []
    for preset in pool:
        component = preset.build()
        if component.max_ports >= ports:
            result.append(preset)
    return result


def _strided_product(
    choices: Sequence[Sequence[ConnectivityPreset]], limit: int
) -> Iterator[tuple[ConnectivityPreset, ...]]:
    """The cross product of ``choices``, evenly thinned to ``limit``."""
    total = 1
    for options in choices:
        total *= len(options)
    if total <= limit:
        yield from itertools.product(*choices)
        return
    stride = total / limit
    position = 0.0
    for index in range(limit):
        flat = int(position)
        position += stride
        picks = []
        remainder = flat
        for options in reversed(choices):
            remainder, digit = divmod(remainder, len(options))
            picks.append(options[digit])
        yield tuple(reversed(picks))


def assignment_neighbors(
    connectivity: ConnectivityArchitecture,
    library: ConnectivityLibrary,
) -> list[ConnectivityArchitecture]:
    """One-swap neighbors: each cluster re-mapped to each alternative.

    The Neighborhood strategy (paper Table 2) explores "the points in
    the neighborhood of the points selected by the Pruned approach";
    in the connectivity dimension a design's neighbors are the
    assignments differing in exactly one cluster's component.
    """
    neighbors: list[ConnectivityArchitecture] = []
    for index, cluster in enumerate(connectivity.clusters):
        logical = LogicalConnection(
            channels=cluster.channels,
            bandwidth=0.0,
            crosses_chip=cluster.crosses_chip,
        )
        for preset in compatible_presets(logical, library):
            if preset.name == cluster.preset_name:
                continue
            clusters = list(connectivity.clusters)
            clusters[index] = ClusterAssignment(
                channels=cluster.channels,
                preset_name=preset.name,
                component=preset.instantiate(f"{preset.name}#{index}"),
            )
            neighbors.append(
                ConnectivityArchitecture(
                    name=f"{connectivity.name}~{index}:{preset.name}",
                    clusters=clusters,
                )
            )
    return neighbors


def enumerate_assignments(
    level: ClusteringLevel,
    library: ConnectivityLibrary,
    name_prefix: str = "conn",
    max_assignments: int = 4096,
) -> list[ConnectivityArchitecture]:
    """All feasible connectivity architectures for one clustering level.

    Raises :class:`ExplorationError` when some cluster has no
    compatible preset (the level is infeasible with this library).
    """
    if max_assignments < 1:
        raise ExplorationError(
            f"max_assignments must be >= 1: {max_assignments}"
        )
    per_cluster: list[list[ConnectivityPreset]] = []
    for cluster in level.clusters:
        presets = compatible_presets(cluster, library)
        if not presets:
            raise ExplorationError(
                f"no library preset can implement cluster with endpoints "
                f"{cluster.endpoints}"
            )
        per_cluster.append(presets)

    architectures: list[ConnectivityArchitecture] = []
    for index, combo in enumerate(
        _strided_product(per_cluster, max_assignments)
    ):
        clusters = []
        for position, (cluster, preset) in enumerate(zip(level.clusters, combo)):
            component = preset.instantiate(f"{preset.name}#{position}")
            clusters.append(
                ClusterAssignment(
                    channels=cluster.channels,
                    preset_name=preset.name,
                    component=component,
                )
            )
        architectures.append(
            ConnectivityArchitecture(
                name=f"{name_prefix}_L{level.size}_{index}",
                clusters=clusters,
            )
        )
    return architectures
