"""Interface timing diagrams → reservation tables.

The paper's Related Work (III) notes that interface co-synthesis
techniques (Chou/Ortega/Borriello; Chung/Gupta/Liu) "can be used to
provide an abstraction of the connectivity and memory module timings in
the form of Reservation Tables". This module implements that
abstraction step: a bus protocol is written down as a *timing diagram*
— per-signal waveforms of asserted intervals — and lowered to the
reservation table the estimator consumes.

Signals are grouped into *resource classes* (several wires arbitrated
as one resource); a resource is held in every cycle where any of its
signals is asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.timing.reservation import ReservationTable


@dataclass(frozen=True)
class SignalWaveform:
    """One signal's asserted intervals, as (start, end) half-open pairs."""

    name: str
    asserted: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        previous_end = -1
        for start, end in self.asserted:
            if start < 0 or end <= start:
                raise ConfigurationError(
                    f"signal '{self.name}': bad interval [{start}, {end})"
                )
            if start < previous_end:
                raise ConfigurationError(
                    f"signal '{self.name}': intervals overlap or unsorted"
                )
            previous_end = end

    def cycles(self) -> set[int]:
        """All cycles in which the signal is asserted."""
        result: set[int] = set()
        for start, end in self.asserted:
            result.update(range(start, end))
        return result

    @property
    def last_cycle(self) -> int:
        """The final asserted cycle (-1 if never asserted)."""
        return max((end - 1 for _, end in self.asserted), default=-1)


@dataclass(frozen=True)
class TimingDiagram:
    """A named protocol transaction as a set of signal waveforms."""

    name: str
    signals: tuple[SignalWaveform, ...]
    #: Maps resource name -> signal names arbitrated as that resource.
    resource_classes: Mapping[str, tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.signals:
            raise ConfigurationError(f"diagram '{self.name}' has no signals")
        names = [s.name for s in self.signals]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"diagram '{self.name}' repeats a signal name"
            )
        known = set(names)
        for resource, members in self.resource_classes.items():
            unknown = set(members) - known
            if unknown:
                raise ConfigurationError(
                    f"resource class '{resource}' references unknown "
                    f"signals: {sorted(unknown)}"
                )

    def signal(self, name: str) -> SignalWaveform:
        """Look a waveform up by signal name."""
        for waveform in self.signals:
            if waveform.name == name:
                return waveform
        raise ConfigurationError(
            f"diagram '{self.name}' has no signal '{name}'"
        )

    @property
    def length(self) -> int:
        """Transaction length: one past the last asserted cycle."""
        return 1 + max(s.last_cycle for s in self.signals)


def diagram_to_table(diagram: TimingDiagram) -> ReservationTable:
    """Lower a timing diagram to a reservation table.

    Signals named in a resource class merge into that resource (held
    whenever any member is asserted); signals in no class become their
    own resource named ``<diagram>.<signal>``.
    """
    usage: dict[str, set[int]] = {}
    classified: set[str] = set()
    for resource, members in diagram.resource_classes.items():
        cycles: set[int] = set()
        for member in members:
            cycles |= diagram.signal(member).cycles()
            classified.add(member)
        if cycles:
            usage[resource] = cycles
    for waveform in diagram.signals:
        if waveform.name in classified:
            continue
        cycles = waveform.cycles()
        if cycles:
            usage[f"{diagram.name}.{waveform.name}"] = cycles
    if not usage:
        raise ConfigurationError(
            f"diagram '{diagram.name}' asserts nothing"
        )
    return ReservationTable(usage)


def ahb_read_diagram(beats: int, name: str = "ahb") -> TimingDiagram:
    """The AMBA AHB pipelined read transaction as a timing diagram.

    Cycle 0: bus request/grant; cycle 1: address phase; cycles 2..:
    one data beat per cycle. Address and data phases are separate
    resources, which is exactly what lets back-to-back AHB transfers
    overlap.
    """
    if beats <= 0:
        raise ConfigurationError(f"beats must be positive: {beats}")
    return TimingDiagram(
        name=name,
        signals=(
            SignalWaveform("hbusreq", ((0, 1),)),
            SignalWaveform("hgrant", ((0, 1),)),
            SignalWaveform("haddr", ((1, 2),)),
            SignalWaveform("htrans", ((1, 2),)),
            SignalWaveform("hrdata", ((2, 2 + beats),)),
            SignalWaveform("hready", ((2, 2 + beats),)),
        ),
        resource_classes={
            f"{name}.arb": ("hbusreq", "hgrant", "haddr", "htrans"),
            f"{name}.data": ("hrdata", "hready"),
        },
    )


def apb_read_diagram(beats: int, name: str = "apb") -> TimingDiagram:
    """The AMBA APB two-cycle (setup + enable) read as a diagram.

    APB has no pipelining: the single bus resource is held for the
    setup cycle plus two cycles per beat.
    """
    if beats <= 0:
        raise ConfigurationError(f"beats must be positive: {beats}")
    signals = [
        SignalWaveform("psel", ((0, 1 + 2 * beats),)),
        SignalWaveform("penable", tuple((2 + 2 * i, 3 + 2 * i) for i in range(beats))),
        SignalWaveform("prdata", tuple((2 + 2 * i, 3 + 2 * i) for i in range(beats))),
    ]
    return TimingDiagram(
        name=name,
        signals=tuple(signals),
        resource_classes={f"{name}.bus": ("psel", "penable", "prdata")},
    )
