"""Reservation tables: resource-usage patterns over time.

A reservation table maps each hardware resource (a bus data path, an
arbiter, a memory port) to the set of cycles, relative to transaction
start, during which the resource is held. Two transactions conflict at
a given start-time offset when some resource is held by both in the
same absolute cycle. From this the classic pipeline-theory quantities
follow: forbidden latencies, the minimum initiation interval (MII), and
safe issue offsets — which is how the ConEx estimator prices bus
sharing without simulating.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import ConfigurationError


class ReservationTable:
    """Immutable mapping of resource name → cycles held."""

    def __init__(self, usage: Mapping[str, Iterable[int]]) -> None:
        cleaned: dict[str, frozenset[int]] = {}
        for resource, cycles in usage.items():
            cycle_set = frozenset(int(c) for c in cycles)
            if not cycle_set:
                continue
            if min(cycle_set) < 0:
                raise ConfigurationError(
                    f"resource '{resource}' used at negative cycle"
                )
            cleaned[resource] = cycle_set
        if not cleaned:
            raise ConfigurationError("reservation table holds no resources")
        self._usage = cleaned

    @property
    def resources(self) -> tuple[str, ...]:
        """Resource names, sorted for determinism."""
        return tuple(sorted(self._usage))

    def cycles(self, resource: str) -> frozenset[int]:
        """Cycles during which ``resource`` is held (empty if unused)."""
        return self._usage.get(resource, frozenset())

    @property
    def length(self) -> int:
        """Total table length in cycles (last held cycle + 1)."""
        return 1 + max(max(c) for c in self._usage.values())

    def conflicts_with(self, other: "ReservationTable", offset: int) -> bool:
        """Does ``other`` started ``offset`` cycles later collide?

        ``offset`` may be negative (other starts earlier).
        """
        for resource, mine in self._usage.items():
            theirs = other.cycles(resource)
            if not theirs:
                continue
            if any((c + offset) in mine for c in theirs):
                return True
        return False

    def forbidden_latencies(self) -> frozenset[int]:
        """Positive self-offsets at which a second issue would collide."""
        return frozenset(
            offset
            for offset in range(1, self.length)
            if self.conflicts_with(self, offset)
        )

    def min_initiation_interval(self) -> int:
        """Smallest positive issue distance free of self-conflicts."""
        forbidden = self.forbidden_latencies()
        for offset in range(1, self.length + 1):
            if offset not in forbidden:
                return offset
        return self.length

    def shifted(self, offset: int) -> "ReservationTable":
        """The same usage pattern delayed by ``offset`` cycles."""
        if offset < 0:
            raise ConfigurationError(f"negative shift: {offset}")
        return ReservationTable(
            {r: {c + offset for c in cs} for r, cs in self._usage.items()}
        )

    def compose(self, other: "ReservationTable", offset: int) -> "ReservationTable":
        """Union of this table with ``other`` delayed by ``offset``.

        Used to chain the stages of one transaction — e.g. the CPU-side
        bus transfer, then the cache lookup, then the off-chip refill —
        into a single end-to-end table. Overlapping use of the *same*
        resource is rejected: a transaction cannot hold one resource
        twice in the same cycle.
        """
        shifted = other.shifted(offset)
        merged: dict[str, set[int]] = {
            r: set(cs) for r, cs in self._usage.items()
        }
        for resource in shifted.resources:
            cycles = shifted.cycles(resource)
            if resource in merged and merged[resource] & cycles:
                raise ConfigurationError(
                    f"composition reuses resource '{resource}' in the same cycle"
                )
            merged.setdefault(resource, set()).update(cycles)
        return ReservationTable(merged)

    def utilization(self, resource: str) -> float:
        """Fraction of the table length during which ``resource`` is held."""
        held = self.cycles(resource)
        if not held:
            return 0.0
        return len(held) / self.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReservationTable):
            return NotImplemented
        return self._usage == other._usage

    def __hash__(self) -> int:
        return hash(tuple(sorted((r, tuple(sorted(c))) for r, c in self._usage.items())))

    def __repr__(self) -> str:
        rows = ", ".join(
            f"{r}:{sorted(self._usage[r])}" for r in self.resources
        )
        return f"ReservationTable({rows})"
