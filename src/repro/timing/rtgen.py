"""RTGEN-style reservation-table generation from operation descriptions.

The paper's performance estimation rests on reservation tables
"generated automatically from architectural descriptions" (RTGEN,
Grun/Halambi/Dutt/Nicolau, ISSS'99). This module provides that
generator: an operation is described as a chain of *stages*, each
naming the hardware resources it holds and for how long, with explicit
inter-stage overlap; :func:`generate_table` lowers the description to
a :class:`~repro.timing.reservation.ReservationTable`.

The connectivity components' built-in ``reservation_table`` methods are
hand-specialized instances of this lowering; the generator exists so
users can model *new* components (or memory-module pipelines) without
writing tables by hand, and is cross-checked against the built-ins in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.timing.reservation import ReservationTable


@dataclass(frozen=True)
class Stage:
    """One pipeline stage of an operation description.

    Attributes:
        name: stage label (diagnostics only).
        resources: resource names held during the stage.
        duration: cycles the stage holds its resources.
        overlap: cycles this stage's start overlaps the *previous*
            stage's tail (0 = strictly sequential; a fully pipelined
            hand-off overlaps all but one cycle).
    """

    name: str
    resources: tuple[str, ...]
    duration: int
    overlap: int = 0

    def __post_init__(self) -> None:
        if not self.resources:
            raise ConfigurationError(f"stage '{self.name}' holds no resources")
        if self.duration <= 0:
            raise ConfigurationError(
                f"stage '{self.name}' duration must be positive: {self.duration}"
            )
        if self.overlap < 0:
            raise ConfigurationError(
                f"stage '{self.name}' overlap must be >= 0: {self.overlap}"
            )


@dataclass(frozen=True)
class OperationDescription:
    """A named operation as an ordered chain of stages."""

    name: str
    stages: tuple[Stage, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigurationError(f"operation '{self.name}' has no stages")
        if self.stages[0].overlap != 0:
            raise ConfigurationError(
                f"operation '{self.name}': first stage cannot overlap"
            )


def generate_table(operation: OperationDescription) -> ReservationTable:
    """Lower an operation description to a reservation table.

    Stage *k* starts when stage *k-1* ends, minus the declared overlap;
    a stage may not start before cycle 0 or before the previous stage
    starts (overlap larger than the previous duration is rejected).
    """
    usage: dict[str, set[int]] = {}
    cursor = 0
    previous_start = 0
    for index, stage in enumerate(operation.stages):
        if index == 0:
            start = 0
        else:
            start = cursor - stage.overlap
            if start < previous_start:
                raise ConfigurationError(
                    f"operation '{operation.name}': stage '{stage.name}' "
                    f"overlap {stage.overlap} reaches before the previous "
                    f"stage's start"
                )
        for resource in stage.resources:
            cycles = usage.setdefault(resource, set())
            span = set(range(start, start + stage.duration))
            if cycles & span:
                raise ConfigurationError(
                    f"operation '{operation.name}': resource '{resource}' "
                    f"held twice in the same cycle by stage '{stage.name}'"
                )
            cycles.update(span)
        previous_start = start
        cursor = start + stage.duration
    return ReservationTable(usage)


def bus_transfer_description(
    name: str,
    beats: int,
    base_latency: int,
    cycles_per_beat: int,
    pipelined: bool,
) -> OperationDescription:
    """The generic bus-transfer operation the components specialize.

    A pipelined bus splits arbitration (``<name>.arb``) from the data
    phase (``<name>.data``) so back-to-back transfers overlap; an
    unpipelined bus holds a single ``<name>.bus`` resource end to end.
    """
    if beats <= 0:
        raise ConfigurationError(f"beats must be positive: {beats}")
    data_cycles = beats * cycles_per_beat
    if not pipelined:
        return OperationDescription(
            name=name,
            stages=(
                Stage(
                    name="transfer",
                    resources=(f"{name}.bus",),
                    duration=base_latency + data_cycles,
                ),
            ),
        )
    stages: list[Stage] = []
    if base_latency:
        stages.append(
            Stage(name="arb", resources=(f"{name}.arb",), duration=base_latency)
        )
    stages.append(
        Stage(name="data", resources=(f"{name}.data",), duration=data_cycles)
    )
    return OperationDescription(name=name, stages=tuple(stages))


def memory_access_description(
    name: str,
    port_cycles: int,
    array_cycles: int,
    ports: Iterable[str] = ("port",),
) -> OperationDescription:
    """A memory-module access: port hand-off, then array cycles.

    The port is released while the array works (banked arrays accept a
    new port transaction per cycle), which is how multi-cycle memories
    still reach an initiation interval equal to ``port_cycles``.
    """
    return OperationDescription(
        name=name,
        stages=(
            Stage(
                name="port",
                resources=tuple(f"{name}.{p}" for p in ports),
                duration=port_cycles,
            ),
            Stage(
                name="array",
                resources=(f"{name}.array",),
                duration=array_cycles,
            ),
        ),
    )


def compose_operation_tables(
    tables: Mapping[str, ReservationTable],
    order: Iterable[str],
    gaps: Mapping[str, int] | None = None,
) -> ReservationTable:
    """Chain named per-component tables into one end-to-end table.

    ``order`` lists the table keys in traversal order (e.g. CPU bus,
    cache port, off-chip bus, DRAM); ``gaps`` optionally inserts dead
    cycles before a named stage (controller turnaround).
    """
    gaps = dict(gaps or {})
    composed: ReservationTable | None = None
    offset = 0
    for key in order:
        try:
            table = tables[key]
        except KeyError:
            raise ConfigurationError(f"no table named '{key}'") from None
        offset += gaps.get(key, 0)
        if composed is None:
            composed = table.shifted(offset)
        else:
            composed = composed.compose(table, offset)
        offset += table.length
    if composed is None:
        raise ConfigurationError("no tables to compose")
    return composed
