"""Transaction pipelines: chained reservation tables with throughput math.

A memory transaction crosses several resources in order: the CPU-side
connection, the memory module port, possibly the off-chip connection
and the DRAM. :class:`TransactionPipeline` chains the per-stage
reservation tables and answers the two questions the ConEx estimator
asks: the unloaded end-to-end latency, and the sustainable issue rate
(from the composed table's minimum initiation interval), from which a
queueing correction prices contention at a given offered load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.timing.reservation import ReservationTable


@dataclass(frozen=True)
class _Stage:
    name: str
    table: ReservationTable
    start: int


class TransactionPipeline:
    """An ordered chain of reservation-table stages."""

    def __init__(self) -> None:
        self._stages: list[_Stage] = []
        self._composed: ReservationTable | None = None

    def append(self, name: str, table: ReservationTable, gap: int = 0) -> None:
        """Add a stage starting ``gap`` cycles after the previous ends."""
        if gap < 0:
            raise ConfigurationError(f"negative inter-stage gap: {gap}")
        if self._stages:
            previous = self._stages[-1]
            start = previous.start + previous.table.length + gap
        else:
            start = gap
        self._stages.append(_Stage(name=name, table=table, start=start))
        self._composed = None

    @property
    def stages(self) -> tuple[str, ...]:
        """Stage names in order."""
        return tuple(s.name for s in self._stages)

    def composed(self) -> ReservationTable:
        """The whole transaction as one reservation table."""
        if not self._stages:
            raise ConfigurationError("pipeline has no stages")
        if self._composed is None:
            table = self._stages[0].table.shifted(self._stages[0].start)
            for stage in self._stages[1:]:
                table = table.compose(stage.table, stage.start)
            self._composed = table
        return self._composed

    @property
    def latency(self) -> int:
        """Unloaded end-to-end latency in cycles."""
        return self.composed().length

    @property
    def initiation_interval(self) -> int:
        """Minimum cycles between back-to-back transactions."""
        return self.composed().min_initiation_interval()

    def loaded_latency(self, offered_interval: float) -> float:
        """Expected latency when transactions arrive every ``offered_interval``.

        Applies an M/D/1-style waiting-time correction on top of the
        unloaded latency: with service interval ``ii`` (the composed
        MII) and utilization ``rho = ii / offered_interval``, the mean
        wait is ``ii * rho / (2 (1 - rho))``. Saturated channels
        (``rho >= 1``) are priced at a large finite penalty so the
        estimator can still rank them (the paper keeps "very bad"
        designs out of its figures but the search must order them).
        """
        if offered_interval <= 0:
            raise ConfigurationError(
                f"offered interval must be positive: {offered_interval}"
            )
        ii = self.initiation_interval
        rho = ii / offered_interval
        if rho >= 1.0:
            # Saturation: latency grows with the backlog over the run.
            return self.latency + ii * 50.0 * rho
        wait = ii * rho / (2.0 * (1.0 - rho))
        return self.latency + wait
