"""Batched (columnar) reservation-table timing.

The scalar timing entry point is
:meth:`repro.connectivity.component.ConnectivityComponent.timing`: one
:class:`TransferTiming` per transaction. The simulation kernel instead
evaluates whole *columns* of transactions at once, so this module
provides the vectorized equivalents. They are exact — integer ceiling
division and the pipelined-occupancy rule reproduce the scalar results
bit for bit, which the kernel's golden-equivalence suite relies on.

Only the closed-form component timing is vectorized here; the full
:class:`~repro.timing.reservation.ReservationTable` algebra (forbidden
latencies, initiation intervals) stays scalar — the ConEx estimator
evaluates it per component configuration, not per access.
"""

from __future__ import annotations

import numpy as np


def beats_cycles_column(component, sizes: np.ndarray) -> np.ndarray:
    """Vectorized ``component.beats(size) * cycles_per_beat``.

    ``sizes`` must be positive (the scalar :meth:`beats` raises on
    non-positive sizes; callers filter zero-byte transfers out before
    batching).
    """
    sizes = sizes.astype(np.int64, copy=False)
    return -(-sizes // component.width_bytes) * component.cycles_per_beat


def transfer_timing_columns(
    component, sizes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :meth:`ConnectivityComponent.timing` over a size column.

    Returns ``(latency, occupancy)`` ``int64`` columns equal,
    element-for-element, to the scalar
    :class:`~repro.connectivity.component.TransferTiming` fields.
    """
    data_cycles = beats_cycles_column(component, sizes)
    latency = component.base_latency + data_cycles
    occupancy = data_cycles if component.pipelined else latency
    return latency, occupancy
