"""Reservation-table timing machinery (RTGEN-style).

The paper estimates performance with Reservation Tables "taking into
account the latency, pipelining, and resource conflicts in the
connectivity and memory architecture" (citing the authors' RTGEN,
ISSS'99). This subpackage provides the table algebra: construction,
conflict detection, forbidden latencies, minimum initiation intervals,
and composition of module + bus tables into end-to-end transaction
tables.
"""

from repro.timing.batch import beats_cycles_column, transfer_timing_columns
from repro.timing.diagrams import (
    SignalWaveform,
    TimingDiagram,
    ahb_read_diagram,
    apb_read_diagram,
    diagram_to_table,
)
from repro.timing.pipeline import TransactionPipeline
from repro.timing.reservation import ReservationTable
from repro.timing.rtgen import (
    OperationDescription,
    Stage,
    bus_transfer_description,
    compose_operation_tables,
    generate_table,
    memory_access_description,
)

__all__ = [
    "OperationDescription",
    "ReservationTable",
    "SignalWaveform",
    "Stage",
    "TimingDiagram",
    "TransactionPipeline",
    "ahb_read_diagram",
    "apb_read_diagram",
    "beats_cycles_column",
    "bus_transfer_description",
    "compose_operation_tables",
    "diagram_to_table",
    "generate_table",
    "memory_access_description",
    "transfer_timing_columns",
]
