"""Persistence: save/load traces and export exploration results.

Traces serialize to compressed ``.npz`` (columnar, exact round-trip);
design-point sets export to CSV or JSON for downstream analysis. These
are the interchange points a downstream user needs: generate a trace
once and explore many times, or feed the pareto set into an external
plotting/optimization flow.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Iterable, Sequence

import numpy as np

from repro.conex.explorer import ConnectivityDesignPoint
from repro.core.design_point import DesignPointSummary, summarize
from repro.errors import TraceError
from repro.trace.events import Trace

#: Version 2 added the ``fingerprint`` column (content hash, verified
#: on load). Version-1 files — without it — still load fine.
_TRACE_FORMAT_VERSION = 2


def trace_fingerprint(path: str | pathlib.Path) -> str:
    """The fingerprint stored in a saved trace file, without loading it.

    Lets cache-management tooling match on-disk traces against
    :mod:`repro.exec` cache keys cheaply. Version-1 files predate the
    stored fingerprint and raise :class:`TraceError`.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise TraceError(f"no trace file at {path}")
    with np.load(path, allow_pickle=False) as data:
        if "fingerprint" not in data:
            raise TraceError(
                f"{path} predates stored fingerprints (format version 1); "
                "load it and call Trace.fingerprint()"
            )
        return str(data["fingerprint"])


def save_trace(trace: Trace, path: str | pathlib.Path) -> None:
    """Write ``trace`` to a compressed ``.npz`` file.

    The trace's content fingerprint is stored alongside the columns so
    identity survives the round-trip: a reloaded trace hits the same
    :mod:`repro.exec` cache entries as the original.
    """
    np.savez_compressed(
        pathlib.Path(path),
        version=np.int64(_TRACE_FORMAT_VERSION),
        name=np.str_(trace.name),
        fingerprint=np.str_(trace.fingerprint()),
        addresses=trace.addresses,
        sizes=trace.sizes,
        kinds=trace.kinds,
        struct_ids=trace.struct_ids,
        ticks=trace.ticks,
        structs=np.array(trace.structs, dtype=np.str_),
    )


def load_trace(path: str | pathlib.Path) -> Trace:
    """Load a trace previously written by :func:`save_trace`.

    If the file carries a stored fingerprint (format version 2), the
    reloaded trace is re-hashed and verified against it, so corruption
    cannot silently poison fingerprint-keyed caches.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise TraceError(f"no trace file at {path}")
    with np.load(path, allow_pickle=False) as data:
        try:
            version = int(data["version"])
            if version not in (1, _TRACE_FORMAT_VERSION):
                raise TraceError(
                    f"unsupported trace format version {version} in {path}"
                )
            trace = Trace(
                name=str(data["name"]),
                addresses=data["addresses"].astype(np.int64),
                sizes=data["sizes"].astype(np.int32),
                kinds=data["kinds"].astype(np.int8),
                struct_ids=data["struct_ids"].astype(np.int32),
                ticks=data["ticks"].astype(np.int64),
                structs=tuple(str(s) for s in data["structs"]),
            )
            if "fingerprint" in data:
                stored = str(data["fingerprint"])
                if trace.fingerprint() != stored:
                    raise TraceError(
                        f"fingerprint mismatch in {path}: stored {stored}, "
                        f"recomputed {trace.fingerprint()}"
                    )
            return trace
        except KeyError as missing:
            raise TraceError(
                f"{path} is not a trace file (missing column {missing})"
            ) from None


def _rows(summaries: Iterable[DesignPointSummary]) -> list[dict]:
    return [
        {
            "label": s.label,
            "cost_gates": s.cost_gates,
            "avg_latency_cycles": s.avg_latency,
            "avg_energy_nj": s.avg_energy_nj,
            "miss_ratio": s.miss_ratio,
            "memory_modules": list(s.memory_modules),
            "connections": list(s.connections),
        }
        for s in summaries
    ]


def export_design_points_json(
    points: Sequence[ConnectivityDesignPoint],
    path: str | pathlib.Path,
) -> None:
    """Export simulated design points to a JSON file."""
    summaries = [summarize(p) for p in points]
    payload = {"design_points": _rows(summaries)}
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def export_design_points_csv(
    points: Sequence[ConnectivityDesignPoint],
    path: str | pathlib.Path,
) -> None:
    """Export simulated design points to a CSV file.

    List-valued fields (module/connection inventories) are joined with
    ``" | "`` so each design stays one row.
    """
    summaries = [summarize(p) for p in points]
    with open(pathlib.Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "label",
                "cost_gates",
                "avg_latency_cycles",
                "avg_energy_nj",
                "miss_ratio",
                "memory_modules",
                "connections",
            ]
        )
        for row in _rows(summaries):
            writer.writerow(
                [
                    row["label"],
                    f"{row['cost_gates']:.1f}",
                    f"{row['avg_latency_cycles']:.4f}",
                    f"{row['avg_energy_nj']:.4f}",
                    f"{row['miss_ratio']:.5f}",
                    " | ".join(row["memory_modules"]),
                    " | ".join(row["connections"]),
                ]
            )
