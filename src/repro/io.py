"""Persistence: save/load traces and export exploration results.

Traces serialize to compressed ``.npz`` (columnar, exact round-trip);
design-point sets export to CSV or JSON for downstream analysis. These
are the interchange points a downstream user needs: generate a trace
once and explore many times, or feed the pareto set into an external
plotting/optimization flow.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Iterable, Sequence

import numpy as np

from repro.conex.explorer import ConnectivityDesignPoint
from repro.core.design_point import DesignPointSummary, summarize
from repro.errors import TraceError
from repro.trace.events import Trace

_TRACE_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | pathlib.Path) -> None:
    """Write ``trace`` to a compressed ``.npz`` file."""
    np.savez_compressed(
        pathlib.Path(path),
        version=np.int64(_TRACE_FORMAT_VERSION),
        name=np.str_(trace.name),
        addresses=trace.addresses,
        sizes=trace.sizes,
        kinds=trace.kinds,
        struct_ids=trace.struct_ids,
        ticks=trace.ticks,
        structs=np.array(trace.structs, dtype=np.str_),
    )


def load_trace(path: str | pathlib.Path) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise TraceError(f"no trace file at {path}")
    with np.load(path, allow_pickle=False) as data:
        try:
            version = int(data["version"])
            if version != _TRACE_FORMAT_VERSION:
                raise TraceError(
                    f"unsupported trace format version {version} in {path}"
                )
            return Trace(
                name=str(data["name"]),
                addresses=data["addresses"].astype(np.int64),
                sizes=data["sizes"].astype(np.int32),
                kinds=data["kinds"].astype(np.int8),
                struct_ids=data["struct_ids"].astype(np.int32),
                ticks=data["ticks"].astype(np.int64),
                structs=tuple(str(s) for s in data["structs"]),
            )
        except KeyError as missing:
            raise TraceError(
                f"{path} is not a trace file (missing column {missing})"
            ) from None


def _rows(summaries: Iterable[DesignPointSummary]) -> list[dict]:
    return [
        {
            "label": s.label,
            "cost_gates": s.cost_gates,
            "avg_latency_cycles": s.avg_latency,
            "avg_energy_nj": s.avg_energy_nj,
            "miss_ratio": s.miss_ratio,
            "memory_modules": list(s.memory_modules),
            "connections": list(s.connections),
        }
        for s in summaries
    ]


def export_design_points_json(
    points: Sequence[ConnectivityDesignPoint],
    path: str | pathlib.Path,
) -> None:
    """Export simulated design points to a JSON file."""
    summaries = [summarize(p) for p in points]
    payload = {"design_points": _rows(summaries)}
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def export_design_points_csv(
    points: Sequence[ConnectivityDesignPoint],
    path: str | pathlib.Path,
) -> None:
    """Export simulated design points to a CSV file.

    List-valued fields (module/connection inventories) are joined with
    ``" | "`` so each design stays one row.
    """
    summaries = [summarize(p) for p in points]
    with open(pathlib.Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "label",
                "cost_gates",
                "avg_latency_cycles",
                "avg_energy_nj",
                "miss_ratio",
                "memory_modules",
                "connections",
            ]
        )
        for row in _rows(summaries):
            writer.writerow(
                [
                    row["label"],
                    f"{row['cost_gates']:.1f}",
                    f"{row['avg_latency_cycles']:.4f}",
                    f"{row['avg_energy_nj']:.4f}",
                    f"{row['miss_ratio']:.5f}",
                    " | ".join(row["memory_modules"]),
                    " | ".join(row["connections"]),
                ]
            )
