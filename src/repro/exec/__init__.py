"""Execution engine: parallel evaluation + content-addressed caching.

The exploration layers (:mod:`repro.apex`, :mod:`repro.conex`,
:mod:`repro.core`) evaluate thousands of independent (trace, memory,
connectivity) design points. This package makes that the fast path:

* :mod:`repro.exec.engine` — :func:`simulate_many` /
  :func:`estimate_many` batch evaluators with a process pool,
  deterministic job-index result ordering, and a bit-identical serial
  fallback (``workers=1`` / ``REPRO_WORKERS`` unset).
* :mod:`repro.exec.runtime` — the persistent
  :class:`ExecutionRuntime`: a long-lived worker pool reused across
  batches, with traces exported once per fingerprint to shared memory
  so workers attach zero-copy instead of unpickling them
  (``REPRO_PERSISTENT_RUNTIME=0`` opts out). Dispatch is fault
  tolerant: worker deaths and job timeouts (``REPRO_JOB_TIMEOUT``)
  rebuild the pool and re-dispatch only the unfinished jobs, and
  after ``REPRO_MAX_RETRIES`` rebuilds the batch degrades to the
  serial in-process path instead of failing.
* :mod:`repro.exec.cache` — a content-addressed
  :class:`SimulationCache` keyed by trace fingerprint, architecture
  signatures, sampling config, and write model, with an optional
  on-disk layer (``REPRO_CACHE_DIR``).

See ``docs/performance.md`` for the knobs and invalidation rules.
"""

from repro.exec.cache import (
    CACHE_DIR_ENV,
    KERNEL_PLAN_VERSION,
    NULL_CACHE,
    NullCache,
    SimulationCache,
    default_cache,
    key_digest,
    sampling_signature,
    set_default_cache,
    simulation_key,
)
from repro.exec.engine import (
    EngineReport,
    EstimateJob,
    SimulationJob,
    estimate_many,
    simulate_batch,
    simulate_many,
)
from repro.exec.runtime import (
    JOB_TIMEOUT_ENV,
    MAX_RETRIES_ENV,
    RUNTIME_ENV,
    WORKERS_ENV,
    DispatchStats,
    ExecutionRuntime,
    RuntimeStats,
    default_runtime,
    persistent_runtime_enabled,
    resolve_job_timeout,
    resolve_max_retries,
    resolve_workers,
    set_default_runtime,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DispatchStats",
    "EngineReport",
    "EstimateJob",
    "ExecutionRuntime",
    "JOB_TIMEOUT_ENV",
    "KERNEL_PLAN_VERSION",
    "MAX_RETRIES_ENV",
    "NULL_CACHE",
    "NullCache",
    "RUNTIME_ENV",
    "RuntimeStats",
    "SimulationCache",
    "SimulationJob",
    "WORKERS_ENV",
    "default_cache",
    "default_runtime",
    "estimate_many",
    "key_digest",
    "persistent_runtime_enabled",
    "resolve_job_timeout",
    "resolve_max_retries",
    "resolve_workers",
    "sampling_signature",
    "set_default_cache",
    "set_default_runtime",
    "simulate_batch",
    "simulate_many",
    "simulation_key",
]
