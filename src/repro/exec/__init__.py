"""Execution engine: parallel evaluation + content-addressed caching.

The exploration layers (:mod:`repro.apex`, :mod:`repro.conex`,
:mod:`repro.core`) evaluate thousands of independent (trace, memory,
connectivity) design points. This package makes that the fast path:

* :mod:`repro.exec.engine` — :func:`simulate_many` /
  :func:`estimate_many` batch evaluators with a process pool,
  deterministic job-index result ordering, and a bit-identical serial
  fallback (``workers=1`` / ``REPRO_WORKERS`` unset).
* :mod:`repro.exec.runtime` — the persistent
  :class:`ExecutionRuntime`: a long-lived worker pool reused across
  batches, with traces exported once per fingerprint to shared memory
  so workers attach zero-copy instead of unpickling them
  (``REPRO_PERSISTENT_RUNTIME=0`` opts out). Dispatch is fault
  tolerant: worker deaths and job timeouts (``REPRO_JOB_TIMEOUT``)
  rebuild the pool and re-dispatch only the unfinished jobs, and
  after ``REPRO_MAX_RETRIES`` rebuilds the batch degrades to the
  serial in-process path instead of failing. Pools are capped at the
  machine's CPU count (``REPRO_WORKERS_CAP=0`` opts out).
* :mod:`repro.exec.backend` — the pluggable
  :class:`ExecutionBackend` interface behind the engine:
  :class:`SerialBackend`, :class:`PoolBackend` (the runtime),
  :class:`RemoteBackend` (one socket worker), and
  :class:`ShardedBackend` (N backends with fault-tolerant re-dispatch
  of memory-signature groups). Select with ``backend=`` or
  ``REPRO_BACKEND`` / ``REPRO_WORKER_ADDRS``.
* :mod:`repro.exec.net` / :mod:`repro.exec.worker` — the
  dependency-free length-prefixed socket protocol and the ``repro
  worker`` server that serves simulate/estimate jobs and networked
  cache traffic over it.
* :mod:`repro.exec.cache` — a content-addressed
  :class:`SimulationCache` keyed by trace fingerprint, architecture
  signatures, sampling config, and write model, layered as memory →
  optional size-capped disk (``REPRO_CACHE_DIR`` /
  ``REPRO_CACHE_MAX_MB``) → optional networked peer
  (``REPRO_CACHE_URL``).

See ``docs/performance.md`` for the knobs and invalidation rules.
"""

from repro.exec.backend import (
    ExecutionBackend,
    PoolBackend,
    RemoteBackend,
    SerialBackend,
    ShardedBackend,
    resolve_backend,
)
from repro.exec.cache import (
    CACHE_DIR_ENV,
    CACHE_URL_ENV,
    KERNEL_PLAN_VERSION,
    NULL_CACHE,
    CacheClient,
    NullCache,
    SimulationCache,
    default_cache,
    key_digest,
    sampling_signature,
    set_default_cache,
    simulation_key,
)
from repro.exec.engine import (
    EngineReport,
    EstimateJob,
    SimulationJob,
    estimate_many,
    simulate_batch,
    simulate_many,
)
from repro.exec.net import BackendUnavailable, Connection
from repro.exec.runtime import (
    JOB_TIMEOUT_ENV,
    MAX_RETRIES_ENV,
    RUNTIME_ENV,
    WORKERS_ENV,
    DispatchStats,
    ExecutionRuntime,
    RuntimeStats,
    default_runtime,
    effective_pool_workers,
    persistent_runtime_enabled,
    resolve_job_timeout,
    resolve_max_retries,
    resolve_workers,
    set_default_runtime,
)
from repro.exec.worker import WorkerServer

__all__ = [
    "BackendUnavailable",
    "CACHE_DIR_ENV",
    "CACHE_URL_ENV",
    "CacheClient",
    "Connection",
    "DispatchStats",
    "EngineReport",
    "EstimateJob",
    "ExecutionBackend",
    "ExecutionRuntime",
    "JOB_TIMEOUT_ENV",
    "KERNEL_PLAN_VERSION",
    "MAX_RETRIES_ENV",
    "NULL_CACHE",
    "NullCache",
    "PoolBackend",
    "RUNTIME_ENV",
    "RemoteBackend",
    "RuntimeStats",
    "SerialBackend",
    "ShardedBackend",
    "SimulationCache",
    "SimulationJob",
    "WORKERS_ENV",
    "WorkerServer",
    "default_cache",
    "default_runtime",
    "effective_pool_workers",
    "estimate_many",
    "key_digest",
    "persistent_runtime_enabled",
    "resolve_backend",
    "resolve_job_timeout",
    "resolve_max_retries",
    "resolve_workers",
    "sampling_signature",
    "set_default_cache",
    "set_default_runtime",
    "simulate_batch",
    "simulate_many",
    "simulation_key",
]
