"""Content-addressed simulation/estimate result cache.

A simulation is a pure function of (trace, memory architecture,
connectivity architecture, sampling config, posted-writes flag), so its
result can be cached under a content key built from those inputs:

* the trace's :meth:`~repro.trace.events.Trace.fingerprint` (a sha256
  over name, columns, and structure tags),
* the memory architecture's :meth:`~repro.apex.architectures.MemoryArchitecture.signature`,
* the connectivity's :meth:`~repro.connectivity.architecture.ConnectivityArchitecture.full_signature`
  (``None`` for APEX's ideal connectivity),
* the sampling window parameters and the posted-writes flag.

The cache is two-layered: a process-wide in-memory dict (the default —
this is what lets the Full strategy reuse every point the Pruned pass
already simulated, and a second ``explore_connectivity`` call run at
zero simulation cost), plus an optional on-disk layer (one pickle per
result, named by the key digest) that persists results across processes
next to the ``.npz`` trace store managed by :mod:`repro.io`.

Invalidation is automatic by construction: any change to the trace
content, a module/component parameter, the structure mapping, the
sampling window, or the write model changes the key. Deleting the cache
directory (or calling :meth:`SimulationCache.clear`) is the only manual
operation that exists.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle

from repro import obs
from repro.apex.architectures import MemoryArchitecture
from repro.config import CACHE_DIR_ENV, current_settings
from repro.connectivity.architecture import ConnectivityArchitecture
from repro.sim.metrics import SimulationResult
from repro.sim.sampling import SamplingConfig
from repro.trace.events import Trace

__all__ = [
    "CACHE_DIR_ENV",
    "KERNEL_PLAN_VERSION",
    "NULL_CACHE",
    "NullCache",
    "SimulationCache",
    "default_cache",
    "key_digest",
    "sampling_signature",
    "set_default_cache",
    "simulation_key",
]

#: Cache file suffix for persisted results.
_SUFFIX = ".simres.pkl"

#: Version of the simulation kernel / trace-plan pipeline. Part of every
#: simulation key (so a kernel change orphans stale in-memory and disk
#: entries by construction) and stamped into the on-disk payload (so a
#: stale or foreign file is evicted when encountered rather than
#: deserialized into a result produced by different kernel code).
#: Bump on any change that could alter simulation results.
KERNEL_PLAN_VERSION = 7


def sampling_signature(sampling: SamplingConfig | None) -> tuple | None:
    """Hashable summary of a sampling configuration."""
    if sampling is None:
        return None
    return (sampling.on_window, sampling.off_ratio, sampling.warmup)


def simulation_key(
    trace: Trace,
    memory: MemoryArchitecture,
    connectivity: ConnectivityArchitecture | None,
    sampling: SamplingConfig | None = None,
    posted_writes: bool = False,
) -> tuple:
    """The full content key of one simulation."""
    return (
        trace.fingerprint(),
        memory.signature(),
        None if connectivity is None else connectivity.full_signature(),
        sampling_signature(sampling),
        bool(posted_writes),
        KERNEL_PLAN_VERSION,
    )


def key_digest(key: tuple) -> str:
    """Stable hex digest of a simulation key (disk file name)."""
    return hashlib.sha256(repr(key).encode()).hexdigest()


class SimulationCache:
    """In-memory result cache with an optional on-disk layer.

    Args:
        directory: when given, results are additionally persisted as
            ``<digest>.simres.pkl`` files there and looked up on
            in-memory misses, so repeated benchmark *processes* share
            work too. The directory is created on first write.
    """

    def __init__(self, directory: str | pathlib.Path | None = None) -> None:
        self.directory = (
            pathlib.Path(directory) if directory is not None else None
        )
        self._memory: dict[tuple, SimulationResult] = {}
        self.hits = 0
        self.misses = 0

    # -- core protocol -------------------------------------------------

    def get(self, key: tuple) -> SimulationResult | None:
        """The cached result for ``key``, or ``None`` on a miss."""
        result = self._memory.get(key)
        if result is None and self.directory is not None:
            result = self._load_from_disk(key)
            if result is not None:
                self._memory[key] = result
                obs.incr("cache.disk_loads")
        if result is None:
            self.misses += 1
            obs.incr("cache.misses")
        else:
            self.hits += 1
            obs.incr("cache.hits")
        return result

    def put(self, key: tuple, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` (memory, and disk if enabled)."""
        self._memory[key] = result
        if self.directory is not None:
            self._store_to_disk(key, result)

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: tuple) -> bool:
        return key in self._memory or (
            self.directory is not None and self._disk_path(key).exists()
        )

    def clear(self) -> None:
        """Drop the in-memory layer and any persisted results."""
        self._memory.clear()
        self.hits = 0
        self.misses = 0
        if self.directory is not None and self.directory.exists():
            for path in self.directory.glob(f"*{_SUFFIX}"):
                path.unlink()

    # -- disk layer ----------------------------------------------------

    def _disk_path(self, key: tuple) -> pathlib.Path:
        assert self.directory is not None
        return self.directory / f"{key_digest(key)}{_SUFFIX}"

    def _load_from_disk(self, key: tuple) -> SimulationResult | None:
        path = self._disk_path(key)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if (
                not isinstance(payload, dict)
                or payload.get("version") != KERNEL_PLAN_VERSION
            ):
                # A file written by a different kernel generation (or a
                # pre-versioning one): evict rather than trust it.
                obs.incr("cache.version_evictions")
                try:
                    path.unlink()
                except OSError:
                    pass
                return None
            return payload["result"]
        except Exception:
            # Treat any torn/corrupt file as a miss: pickle surfaces
            # garbage as UnpicklingError, ValueError, EOFError,
            # AttributeError, ... — a cache read must never abort a run.
            # Unlink the carcass so future processes don't re-read and
            # re-fail on it forever; the next put() rewrites it whole.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _store_to_disk(self, key: tuple, result: SimulationResult) -> None:
        assert self.directory is not None
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._disk_path(key)
        temp = path.with_suffix(path.suffix + ".tmp")
        payload = {"version": KERNEL_PLAN_VERSION, "result": result}
        with open(temp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp, path)  # atomic: readers never see a torn file

    def __repr__(self) -> str:
        where = f" dir={self.directory}" if self.directory else ""
        return (
            f"<SimulationCache {len(self._memory)} entries, "
            f"{self.hits} hits / {self.misses} misses{where}>"
        )


class NullCache(SimulationCache):
    """A cache that never stores — disables result reuse explicitly.

    Pass ``cache=NULL_CACHE`` to an engine entry point (or any explorer
    that forwards a ``cache`` argument) to force fresh simulations, e.g.
    for honest serial-vs-parallel timing comparisons.
    """

    def get(self, key: tuple) -> SimulationResult | None:
        self.misses += 1
        return None

    def put(self, key: tuple, result: SimulationResult) -> None:
        pass

    def __contains__(self, key: tuple) -> bool:
        return False


#: Shared no-op cache instance.
NULL_CACHE = NullCache()

_default_cache: SimulationCache | None = None


def default_cache() -> SimulationCache:
    """The process-wide cache used when callers pass ``cache=None``.

    Created lazily; picks up an on-disk layer from
    ``Settings.cache_dir`` (the ``REPRO_CACHE_DIR`` variable) when set
    at first use.
    """
    global _default_cache
    if _default_cache is None:
        _default_cache = SimulationCache(current_settings().cache_dir)
    return _default_cache


def set_default_cache(cache: SimulationCache | None) -> None:
    """Replace the process-wide default cache (``None`` resets lazily)."""
    global _default_cache
    _default_cache = cache
