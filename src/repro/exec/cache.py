"""Content-addressed simulation/estimate result cache.

A simulation is a pure function of (trace, memory architecture,
connectivity architecture, sampling config, posted-writes flag), so its
result can be cached under a content key built from those inputs:

* the trace's :meth:`~repro.trace.events.Trace.fingerprint` (a sha256
  over name, columns, and structure tags),
* the memory architecture's :meth:`~repro.apex.architectures.MemoryArchitecture.signature`,
* the connectivity's :meth:`~repro.connectivity.architecture.ConnectivityArchitecture.full_signature`
  (``None`` for APEX's ideal connectivity),
* the sampling window parameters and the posted-writes flag.

The cache is layered, each layer a read-through over the next:

1. **memory** — a process-wide dict (the default — this is what lets
   the Full strategy reuse every point the Pruned pass already
   simulated, and a second ``explore_connectivity`` call run at zero
   simulation cost);
2. **disk** (optional) — one pickle per result, named by the key
   digest, persisted next to the ``.npz`` trace store managed by
   :mod:`repro.io` so repeated *processes* share work. The layer can
   be size-capped (``REPRO_CACHE_MAX_MB``): when a store pushes the
   directory over the cap, least-recently-used entries (by mtime —
   reads touch their file) are evicted first;
3. **network** (optional) — get/put of the same pickled payloads
   against a ``repro worker`` process (``REPRO_CACHE_URL``), so shards
   of a distributed run dedupe each other's work. Network faults
   degrade silently: the peer is dropped after repeated failures and
   the cache keeps serving from the local layers.

Hits are attributed to the layer that served them
(:attr:`SimulationCache.memory_hits` / :attr:`~SimulationCache.disk_hits`
/ :attr:`~SimulationCache.net_hits`); the aggregate
:attr:`~SimulationCache.hits` / :attr:`~SimulationCache.misses` pair is
kept for callers that predate the layering, and
:meth:`SimulationCache.layer_counts` exports both views.

Invalidation is automatic by construction: any change to the trace
content, a module/component parameter, the structure mapping, the
sampling window, or the write model changes the key, and every key
(and every persisted payload) carries :data:`KERNEL_PLAN_VERSION`, so
stale entries — local or served by a version-skewed cache peer — are
evicted when encountered. Deleting the cache directory (or calling
:meth:`SimulationCache.clear`) is the only manual operation that
exists.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle

from repro import obs
from repro.apex.architectures import MemoryArchitecture
from repro.config import CACHE_DIR_ENV, CACHE_URL_ENV, current_settings
from repro.connectivity.architecture import ConnectivityArchitecture
from repro.sim.metrics import SimulationResult
from repro.sim.sampling import SamplingConfig
from repro.trace.events import Trace

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_URL_ENV",
    "KERNEL_PLAN_VERSION",
    "NULL_CACHE",
    "CacheClient",
    "NullCache",
    "SimulationCache",
    "default_cache",
    "key_digest",
    "sampling_signature",
    "set_default_cache",
    "simulation_key",
]

#: Cache file suffix for persisted results.
_SUFFIX = ".simres.pkl"

#: Version of the simulation kernel / trace-plan pipeline. Part of every
#: simulation key (so a kernel change orphans stale in-memory and disk
#: entries by construction) and stamped into the on-disk payload (so a
#: stale or foreign file is evicted when encountered rather than
#: deserialized into a result produced by different kernel code).
#: Bump on any change that could alter simulation results.
KERNEL_PLAN_VERSION = 8

#: Consecutive network faults before a cache peer is written off.
_NET_FAULT_LIMIT = 3


def sampling_signature(sampling: SamplingConfig | None) -> tuple | None:
    """Hashable summary of a sampling configuration."""
    if sampling is None:
        return None
    return (sampling.on_window, sampling.off_ratio, sampling.warmup)


def simulation_key(
    trace: Trace,
    memory: MemoryArchitecture,
    connectivity: ConnectivityArchitecture | None,
    sampling: SamplingConfig | None = None,
    posted_writes: bool = False,
) -> tuple:
    """The full content key of one simulation."""
    return (
        trace.fingerprint(),
        memory.signature(),
        None if connectivity is None else connectivity.full_signature(),
        sampling_signature(sampling),
        bool(posted_writes),
        KERNEL_PLAN_VERSION,
    )


def key_digest(key: tuple) -> str:
    """Stable hex digest of a simulation key (disk file / network name)."""
    return hashlib.sha256(repr(key).encode()).hexdigest()


def _encode_payload(result: SimulationResult) -> bytes:
    """The persisted form shared by the disk and network layers."""
    return pickle.dumps(
        {"version": KERNEL_PLAN_VERSION, "result": result},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _decode_payload(blob: bytes) -> SimulationResult | None:
    """Decode a persisted payload; ``None`` for stale/corrupt blobs."""
    try:
        payload = pickle.loads(blob)
    except Exception:
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("version") != KERNEL_PLAN_VERSION
    ):
        return None
    return payload.get("result")


class CacheClient:
    """Best-effort get/put client for a networked cache peer.

    Speaks the :mod:`repro.exec.net` protocol against a ``repro
    worker`` at ``url`` (``host:port``). Every failure mode is soft: a
    connect error, dropped socket, or timeout loses at most one
    lookup, and after :data:`_NET_FAULT_LIMIT` consecutive faults the
    peer is abandoned for the rest of the process — a cache must never
    make a run slower than no cache, let alone fail it.
    """

    def __init__(self, url: str, timeout: float | None = 5.0) -> None:
        self.url = url
        self.timeout = timeout
        self._conn = None
        self._faults = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    @property
    def dead(self) -> bool:
        return self._faults >= _NET_FAULT_LIMIT

    def _connection(self):
        from repro.exec import net

        if self._conn is None:
            conn = net.Connection.connect(self.url, timeout=self.timeout)
            conn.request_pickled(
                net.MSG_HELLO,
                {
                    "protocol": net.PROTOCOL_VERSION,
                    "kernel_plan_version": KERNEL_PLAN_VERSION,
                },
            )
            self._conn = conn
        return self._conn

    def _drop_connection(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            self.bytes_sent += conn.bytes_sent
            self.bytes_received += conn.bytes_received
            conn.close()
        self._faults += 1
        obs.incr("cache.net_errors")

    def get(self, digest: str) -> bytes | None:
        from repro.exec import net

        if self.dead:
            return None
        try:
            reply = self._connection().request_pickled(
                net.MSG_CACHE_GET, digest
            )
        except net.BackendUnavailable:
            self._drop_connection()
            return None
        self._faults = 0
        if reply.kind != net.MSG_CACHE_HIT:
            return None
        return reply.payload

    def put(self, digest: str, blob: bytes) -> None:
        from repro.exec import net

        if self.dead:
            return
        try:
            self._connection().request_pickled(
                net.MSG_CACHE_PUT, (digest, blob)
            )
        except net.BackendUnavailable:
            self._drop_connection()
        else:
            self._faults = 0

    def close(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            self.bytes_sent += conn.bytes_sent
            self.bytes_received += conn.bytes_received
            conn.close()


class SimulationCache:
    """Layered result cache: memory, then disk, then the network.

    Args:
        directory: when given, results are additionally persisted as
            ``<digest>.simres.pkl`` files there and looked up on
            in-memory misses, so repeated benchmark *processes* share
            work too. The directory is created on first write.
        max_mb: optional size cap (MiB) for the disk layer; when a
            store pushes the directory over the cap, least-recently
            used files (by mtime) are evicted until it fits.
        url: optional ``host:port`` of a ``repro worker`` serving the
            networked cache layer; consulted after a disk miss, and
            written through on every put.
    """

    def __init__(
        self,
        directory: str | pathlib.Path | None = None,
        max_mb: float | None = None,
        url: str | None = None,
    ) -> None:
        self.directory = (
            pathlib.Path(directory) if directory is not None else None
        )
        self.max_mb = max_mb
        self._memory: dict[tuple, SimulationResult] = {}
        self._client = CacheClient(url) if url else None
        self.hits = 0
        self.misses = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.net_hits = 0

    # -- core protocol -------------------------------------------------

    def get(self, key: tuple) -> SimulationResult | None:
        """The cached result for ``key``, or ``None`` on a miss."""
        result = self._memory.get(key)
        if result is not None:
            self.memory_hits += 1
        if result is None and self.directory is not None:
            result = self._load_from_disk(key)
            if result is not None:
                self._memory[key] = result
                self.disk_hits += 1
                obs.incr("cache.disk_loads")
        if result is None and self._client is not None:
            result = self._load_from_network(key)
            if result is not None:
                # Read-through: a network hit lands in the local
                # layers so the next lookup never leaves the process.
                self._memory[key] = result
                if self.directory is not None:
                    self._store_to_disk(key, result)
                self.net_hits += 1
                obs.incr("cache.net_loads")
        if result is None:
            self.misses += 1
            obs.incr("cache.misses")
        else:
            self.hits += 1
            obs.incr("cache.hits")
        return result

    def put(self, key: tuple, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` in every configured layer."""
        self._memory[key] = result
        if self.directory is not None:
            self._store_to_disk(key, result)
        if self._client is not None:
            self._client.put(key_digest(key), _encode_payload(result))

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: tuple) -> bool:
        return key in self._memory or (
            self.directory is not None and self._disk_path(key).exists()
        )

    def layer_counts(self) -> dict[str, int]:
        """Hit/miss accounting, per layer and aggregate."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "net_hits": self.net_hits,
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> None:
        """Drop the in-memory layer and any persisted results."""
        self._memory.clear()
        self.hits = 0
        self.misses = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.net_hits = 0
        if self.directory is not None and self.directory.exists():
            for path in self.directory.glob(f"*{_SUFFIX}"):
                path.unlink()

    def close(self) -> None:
        """Release the network connection, if any. Idempotent."""
        if self._client is not None:
            self._client.close()

    # -- disk layer ----------------------------------------------------

    def _disk_path(self, key: tuple) -> pathlib.Path:
        assert self.directory is not None
        return self.directory / f"{key_digest(key)}{_SUFFIX}"

    def _load_from_disk(self, key: tuple) -> SimulationResult | None:
        path = self._disk_path(key)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            # Lost a race with another process's eviction: a miss.
            return None
        result = _decode_payload(blob)
        if result is None:
            # A torn/corrupt file, or one written by a different kernel
            # generation (or a pre-versioning one): evict rather than
            # trust it — pickle surfaces garbage as UnpicklingError,
            # ValueError, EOFError, AttributeError, ... and a cache
            # read must never abort a run. Unlink the carcass so future
            # processes don't re-read and re-fail on it forever; the
            # next put() rewrites it whole.
            obs.incr("cache.version_evictions")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            # LRU bookkeeping: a read refreshes the entry's mtime so
            # the size-cap eviction drops cold entries first.
            os.utime(path)
        except OSError:
            pass
        return result

    def _store_to_disk(self, key: tuple, result: SimulationResult) -> None:
        assert self.directory is not None
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._disk_path(key)
        # PID-tagged temp name: concurrent processes sharing the
        # directory never clobber each other's in-flight writes.
        temp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        with open(temp, "wb") as handle:
            handle.write(_encode_payload(result))
        os.replace(temp, path)  # atomic: readers never see a torn file
        self._enforce_disk_cap()

    def _enforce_disk_cap(self) -> None:
        """Evict least-recently-used entries once over ``max_mb``."""
        if self.max_mb is None or self.directory is None:
            return
        budget = self.max_mb * 1024 * 1024
        entries = []
        total = 0
        for path in self.directory.glob(f"*{_SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:
                continue  # evicted by a concurrent process
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= budget:
            return
        entries.sort()  # oldest mtime first
        for _mtime, size, path in entries:
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            obs.incr("cache.lru_evictions")
            if total <= budget:
                break

    # -- network layer -------------------------------------------------

    def _load_from_network(self, key: tuple) -> SimulationResult | None:
        assert self._client is not None
        blob = self._client.get(key_digest(key))
        if blob is None:
            return None
        # A version-skewed or corrupt peer payload is a miss, never an
        # error; the key embeds KERNEL_PLAN_VERSION so genuine entries
        # always decode.
        return _decode_payload(blob)

    def __repr__(self) -> str:
        where = f" dir={self.directory}" if self.directory else ""
        peer = f" url={self._client.url}" if self._client else ""
        return (
            f"<SimulationCache {len(self._memory)} entries, "
            f"{self.hits} hits / {self.misses} misses{where}{peer}>"
        )


class NullCache(SimulationCache):
    """A cache that never stores — disables result reuse explicitly.

    Pass ``cache=NULL_CACHE`` to an engine entry point (or any explorer
    that forwards a ``cache`` argument) to force fresh simulations, e.g.
    for honest serial-vs-parallel timing comparisons.
    """

    def get(self, key: tuple) -> SimulationResult | None:
        self.misses += 1
        return None

    def put(self, key: tuple, result: SimulationResult) -> None:
        pass

    def __contains__(self, key: tuple) -> bool:
        return False


#: Shared no-op cache instance.
NULL_CACHE = NullCache()

_default_cache: SimulationCache | None = None


def default_cache() -> SimulationCache:
    """The process-wide cache used when callers pass ``cache=None``.

    Created lazily; picks up an on-disk layer from
    ``Settings.cache_dir`` (the ``REPRO_CACHE_DIR`` variable), a disk
    size cap from ``REPRO_CACHE_MAX_MB``, and a networked layer from
    ``REPRO_CACHE_URL`` when set at first use.
    """
    global _default_cache
    if _default_cache is None:
        settings = current_settings()
        _default_cache = SimulationCache(
            settings.cache_dir,
            max_mb=settings.cache_max_mb,
            url=settings.cache_url,
        )
    return _default_cache


def set_default_cache(cache: SimulationCache | None) -> None:
    """Replace the process-wide default cache (``None`` resets lazily)."""
    global _default_cache
    _default_cache = cache
