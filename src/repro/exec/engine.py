"""Parallel evaluation engine: simulate/estimate many design points.

The exploration algorithms spend essentially all their wall time in
:func:`repro.sim.simulator.simulate` — one call per candidate design,
every call independent of every other. This module turns those serial
loops into batch jobs:

* :func:`simulate_many` — run a list of :class:`SimulationJob` specs
  over one trace, against the content-addressed result cache, with the
  cache misses dispatched to a ``ProcessPoolExecutor`` when more than
  one worker is requested.
* :func:`estimate_many` — the Phase-I analogue for
  :func:`repro.conex.estimator.estimate_design`.

Determinism contract: results are returned **keyed by job index**,
never by completion order — ``simulate_many(trace, jobs)[i]`` always
corresponds to ``jobs[i]``, and the simulator itself is deterministic,
so a parallel run is bit-identical to a serial run of the same job
list. ``workers=1`` (or ``REPRO_WORKERS=1``, the default) short-circuits
to a plain in-process loop with no executor, no pickling, and no
subprocesses — exactly the code path the pre-engine explorers ran.

Job specs are plain picklable dataclasses. Parallel batches dispatch
through the persistent :class:`repro.exec.runtime.ExecutionRuntime` by
default: the worker pool is built once per runtime and the trace is
exported once per (runtime, trace-fingerprint) to shared memory, so a
batch moves only the (small) architecture descriptions. Pass
``runtime=`` for an explicit handle, or set
``REPRO_PERSISTENT_RUNTIME=0`` to fall back to the legacy per-batch
pool whose initializer ships the trace to each worker.

Each simulation call runs the columnar fast-path kernel
(:mod:`repro.sim.kernels`) by default, in workers and in-process
alike. The kernel is bit-identical to the scalar reference loop, so
engine selection needs no cache-key component: cached results mix
freely across engines and across ``REPRO_REFERENCE_SIM`` settings
(the opt-out env var propagates to pool workers like any other).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Sequence

from repro import obs
from repro.apex.architectures import MemoryArchitecture
from repro.conex.estimator import ConnectivityEstimate, estimate_design
from repro.connectivity.architecture import ConnectivityArchitecture
from repro.errors import ExecutionError, ExplorationError
from repro.exec.backend import ExecutionBackend, resolve_backend
from repro.exec.cache import SimulationCache, default_cache, simulation_key
from repro.exec.runtime import (
    WORKERS_ENV,
    ExecutionRuntime,
    default_runtime,
    dispatch_chunksize,
    effective_pool_workers,
    persistent_runtime_enabled,
    resolve_workers,
)
from repro.sim import batch as sim_batch
from repro.sim.metrics import SimulationResult
from repro.sim.sampling import SamplingConfig
from repro.sim.simulator import simulate
from repro.stats import BatchStats, StatsReport
from repro.trace.events import Trace

#: Below this many pending estimate jobs a pool costs more than it
#: saves (estimates are microseconds each; pickling is not).
_MIN_PARALLEL_ESTIMATES = 64


@dataclass(frozen=True)
class SimulationJob:
    """One picklable simulation work item (the trace travels separately)."""

    memory: MemoryArchitecture
    connectivity: ConnectivityArchitecture | None = None
    sampling: SamplingConfig | None = None
    posted_writes: bool = False


@dataclass(frozen=True)
class EstimateJob:
    """One picklable Phase-I estimation work item."""

    memory: MemoryArchitecture
    connectivity: ConnectivityArchitecture
    profile: SimulationResult


@dataclass(frozen=True)
class EngineReport(StatsReport):
    """What one batch produced and what it cost.

    ``results[i]`` always corresponds to ``jobs[i]`` of the submitted
    list. ``cache_hits + cache_misses + deduplicated + uncached ==
    len(results)``: simulation batches split into hits (served from
    the cache), misses (actually simulated), and in-batch duplicates
    (relabelled copies of a miss simulated once — *not* extra
    simulations); estimates never consult the cache (they are cheaper
    than a lookup is interesting) and count as ``uncached``, so
    summing reports across simulate and estimate batches keeps the
    aggregate hit rate honest.

    ``retries`` / ``pool_rebuilds`` / ``degraded`` surface the fault
    tolerance of the dispatch (see :class:`repro.exec.runtime.DispatchStats`):
    how many recovery rounds re-dispatched unfinished jobs, how many
    worker pools were rebuilt, and whether the batch finished on the
    serial degraded path after the rebuild budget ran out. All zero /
    ``False`` on an undisturbed batch.

    ``batch_groups`` / ``delta_pass_candidates`` are filled only by
    :func:`simulate_batch`: how many same-memory-signature groups the
    simulated misses were partitioned into, and how many of those
    candidates ran the shared-column delta pass (as opposed to falling
    back to independent full runs).

    ``backend`` names what dispatched the misses — ``"local"`` for the
    classic serial/runtime/legacy-pool paths, else the
    :attr:`~repro.exec.backend.ExecutionBackend.name` of the backend
    used — and ``bytes_sent`` / ``bytes_received`` count its wire
    traffic (zero for local backends). ``cache_memory_hits`` /
    ``cache_disk_hits`` / ``cache_net_hits`` split ``cache_hits`` by
    the :class:`~repro.exec.cache.SimulationCache` layer that served
    each hit (all three stay zero for cache objects that predate the
    layering).
    """

    results: tuple
    workers: int
    cache_hits: int = 0
    cache_misses: int = 0
    deduplicated: int = 0
    uncached: int = 0
    seconds: float = 0.0
    retries: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False
    batch_groups: int = 0
    delta_pass_candidates: int = 0
    backend: str = "local"
    bytes_sent: int = 0
    bytes_received: int = 0
    cache_memory_hits: int = 0
    cache_disk_hits: int = 0
    cache_net_hits: int = 0

    #: ``as_dict()`` exports the accounting, not the payload.
    _STATS_EXCLUDE = ("results",)

    @property
    def stats(self) -> BatchStats:
        """The batch accounting as the unified :class:`BatchStats` shape."""
        return BatchStats(
            workers=self.workers,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            deduplicated=self.deduplicated,
            uncached=self.uncached,
            seconds=self.seconds,
            retries=self.retries,
            pool_rebuilds=self.pool_rebuilds,
            degraded=self.degraded,
        )


# -- worker-process plumbing ------------------------------------------------

_WORKER_TRACE: Trace | None = None


def _init_worker(trace: Trace) -> None:
    """Pool initializer: install the shared trace in this worker."""
    global _WORKER_TRACE
    _WORKER_TRACE = trace


def _run_simulation(job: SimulationJob) -> SimulationResult:
    """Execute one job against the worker's installed trace."""
    assert _WORKER_TRACE is not None, "worker used before initialization"
    return simulate(
        _WORKER_TRACE,
        job.memory,
        job.connectivity,
        sampling=job.sampling,
        posted_writes=job.posted_writes,
    )


def _run_group(
    jobs: "tuple[SimulationJob, ...]",
) -> "tuple[list[SimulationResult], int]":
    """Legacy-pool twin of the runtime's group worker."""
    assert _WORKER_TRACE is not None, "worker used before initialization"
    return sim_batch.evaluate_group(_WORKER_TRACE, jobs)


def _run_estimate(job: EstimateJob) -> ConnectivityEstimate:
    return estimate_design(job.memory, job.connectivity, job.profile)


#: Backwards-compatible alias; the helper moved to the runtime module.
_chunksize = dispatch_chunksize


def _relabel(result: SimulationResult, job: SimulationJob) -> SimulationResult:
    """Stamp a shared result with the requesting job's design names.

    Cache keys are content-addressed (names excluded), so a hit may
    come from an identically-configured architecture under another
    name. Downstream consumers (e.g. the BRG builder) check result
    ownership by name, so shared results are relabelled on retrieval.
    """
    memory_name = job.memory.name
    connectivity_name = (
        job.connectivity.name
        if job.connectivity is not None
        else result.connectivity_name
    )
    if (
        result.memory_name == memory_name
        and result.connectivity_name == connectivity_name
    ):
        return result
    return replace(
        result,
        memory_name=memory_name,
        connectivity_name=connectivity_name,
    )


# -- public entry points ----------------------------------------------------

def _record_batch(report: EngineReport) -> None:
    """Fold one batch's accounting into the obs counters.

    Every key is registered even when its value is zero, so a metrics
    export from an undisturbed serial run still shows the full
    ``exec.*`` / ``runtime.*`` counter surface.
    """
    obs.incr("exec.jobs", len(report.results))
    obs.incr("exec.cache_hits", report.cache_hits)
    obs.incr("exec.cache_misses", report.cache_misses)
    obs.incr("exec.deduplicated", report.deduplicated)
    obs.incr("exec.uncached", report.uncached)
    obs.incr("exec.batch_groups", report.batch_groups)
    obs.incr("exec.delta_pass_candidates", report.delta_pass_candidates)
    obs.incr("exec.cache_memory_hits", report.cache_memory_hits)
    obs.incr("exec.cache_disk_hits", report.cache_disk_hits)
    obs.incr("exec.cache_net_hits", report.cache_net_hits)
    obs.incr("backend.bytes_sent", report.bytes_sent)
    obs.incr("backend.bytes_received", report.bytes_received)
    obs.incr("runtime.retries", report.retries)
    obs.incr("runtime.pool_rebuilds", report.pool_rebuilds)
    obs.incr("runtime.degraded_batches", int(report.degraded))


def _cache_layers(cache: SimulationCache) -> tuple[int, int, int]:
    """Per-layer hit counters, zero for pre-layering cache objects."""
    return (
        getattr(cache, "memory_hits", 0),
        getattr(cache, "disk_hits", 0),
        getattr(cache, "net_hits", 0),
    )


def _backend_traffic(backend: ExecutionBackend) -> tuple[int, int]:
    return (backend.bytes_sent, backend.bytes_received)


def simulate_many(
    trace: Trace,
    jobs: Sequence[SimulationJob],
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> EngineReport:
    """Simulate every job over ``trace``; results ordered like ``jobs``.

    Args:
        trace: the shared access trace (exported to the workers once
            per runtime).
        jobs: picklable job specs; duplicates are simulated once and
            share the cached result.
        workers: process count; ``None`` consults the ``runtime`` (when
            given), else ``REPRO_WORKERS``, and falls back to 1
            (serial, in-process).
        cache: result cache; ``None`` selects the process-wide default
            (:func:`repro.exec.cache.default_cache`). Pass
            :data:`repro.exec.cache.NULL_CACHE` to force fresh runs.
        runtime: persistent execution runtime to dispatch through;
            ``None`` uses the process-wide default
            (:func:`repro.exec.runtime.default_runtime`) unless
            ``REPRO_PERSISTENT_RUNTIME=0`` reverts to per-batch pools.
        backend: an :class:`~repro.exec.backend.ExecutionBackend`
            instance or name (``"serial"``/``"pool"``/``"remote"``)
            that dispatches the cache misses instead of the classic
            paths; ``None`` consults ``REPRO_BACKEND`` (unset: the
            classic workers/runtime dispatch above).
    """
    with obs.span("exec.simulate_many"):
        report = _simulate_many(trace, jobs, workers, cache, runtime, backend)
    if obs.enabled():
        _record_batch(report)
    return report


def _simulate_many(
    trace: Trace,
    jobs: Sequence[SimulationJob],
    workers: int | None,
    cache: SimulationCache | None,
    runtime: ExecutionRuntime | None,
    backend: "ExecutionBackend | str | None" = None,
) -> EngineReport:
    start = time.perf_counter()
    if runtime is not None and runtime.closed:
        # Fail eagerly, before cache lookups or pool dispatch: a batch
        # must never get half-served by a dead runtime.
        raise ExecutionError(
            "cannot dispatch simulate_many through a closed runtime"
        )
    if workers is None and runtime is not None:
        workers = runtime.workers
    workers = resolve_workers(workers)
    active_backend = resolve_backend(backend, workers)
    cache = cache if cache is not None else default_cache()
    layers_before = _cache_layers(cache)
    results: list[SimulationResult | None] = [None] * len(jobs)
    pending: list[int] = []
    keys: list[tuple] = []
    for index, job in enumerate(jobs):
        key = simulation_key(
            trace, job.memory, job.connectivity, job.sampling,
            job.posted_writes,
        )
        keys.append(key)
        cached = cache.get(key)
        if cached is None:
            pending.append(index)
        else:
            results[index] = _relabel(cached, job)
    hits = len(jobs) - len(pending)
    memory_hits, disk_hits, net_hits = (
        after - before
        for after, before in zip(_cache_layers(cache), layers_before)
    )
    simulated = 0
    retries = pool_rebuilds = 0
    degraded = False
    bytes_sent = bytes_received = 0

    if pending:
        # Duplicate keys inside one batch run once; later copies reuse.
        first_of: dict[tuple, int] = {}
        unique: list[int] = []
        for index in pending:
            if keys[index] in first_of:
                continue
            first_of[keys[index]] = index
            unique.append(index)
        simulated = len(unique)

        if active_backend is not None:
            traffic_before = _backend_traffic(active_backend)
            outcomes = active_backend.run_simulations(
                trace, [jobs[i] for i in unique]
            )
            dispatch = active_backend.last_dispatch
            if dispatch is not None:
                retries = dispatch.retries
                pool_rebuilds = dispatch.pool_rebuilds
                degraded = dispatch.degraded
            traffic_after = _backend_traffic(active_backend)
            bytes_sent = traffic_after[0] - traffic_before[0]
            bytes_received = traffic_after[1] - traffic_before[1]
            for index, result in zip(unique, outcomes):
                results[index] = result
        elif workers <= 1 or len(unique) <= 1:
            for index in unique:
                results[index] = _execute_inline(trace, jobs[index])
        else:
            job_list = [jobs[i] for i in unique]
            if runtime is not None or persistent_runtime_enabled():
                active = runtime or default_runtime(workers)
                outcomes = active.map_simulations(trace, job_list)
                dispatch = active.last_dispatch
                if dispatch is not None:
                    retries = dispatch.retries
                    pool_rebuilds = dispatch.pool_rebuilds
                    degraded = dispatch.degraded
            else:
                # Legacy path: a fresh pool per batch, the trace shipped
                # through the initializer. No rebuild machinery here —
                # a broken pool degrades straight to the serial path.
                try:
                    with ProcessPoolExecutor(
                        max_workers=min(
                            effective_pool_workers(workers), len(unique)
                        ),
                        initializer=_init_worker,
                        initargs=(trace,),
                    ) as pool:
                        outcomes = list(
                            pool.map(
                                _run_simulation,
                                job_list,
                                chunksize=dispatch_chunksize(
                                    len(unique), workers
                                ),
                            )
                        )
                except BrokenProcessPool:
                    outcomes = [
                        _execute_inline(trace, job) for job in job_list
                    ]
                    retries = 1
                    degraded = True
            for index, result in zip(unique, outcomes):
                results[index] = result
        for index in unique:
            cache.put(keys[index], results[index])
        for index in pending:
            if results[index] is None:
                results[index] = _relabel(
                    results[first_of[keys[index]]], jobs[index]
                )

    return EngineReport(
        results=tuple(results),
        workers=workers,
        cache_hits=hits,
        cache_misses=simulated,
        deduplicated=len(pending) - simulated,
        seconds=time.perf_counter() - start,
        retries=retries,
        pool_rebuilds=pool_rebuilds,
        degraded=degraded,
        backend="local" if active_backend is None else active_backend.name,
        bytes_sent=bytes_sent,
        bytes_received=bytes_received,
        cache_memory_hits=memory_hits,
        cache_disk_hits=disk_hits,
        cache_net_hits=net_hits,
    )


def simulate_batch(
    trace: Trace,
    jobs: Sequence[SimulationJob],
    workers: int | None = None,
    cache: SimulationCache | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> EngineReport:
    """Simulate every job over ``trace`` with cross-candidate sharing.

    The drop-in batch-evaluating sibling of :func:`simulate_many`:
    identical signature, identical determinism contract (``results[i]``
    corresponds to ``jobs[i]``, bit-identical to independent
    :func:`~repro.sim.simulator.simulate` calls), identical cache and
    dedup behaviour. The difference is *how* the cache misses run:
    they are partitioned into same-memory-signature groups and each
    group is evaluated through :func:`repro.sim.batch.evaluate_group`,
    which shares the trace plan, module outcome columns, and the merged
    DRAM open-row pass across the group's candidates so each candidate
    pays only its connectivity/sampling delta pass. Parallel dispatch
    ships whole groups to workers (a group is never split — splitting
    would forfeit the sharing); a ``backend`` (or ``REPRO_BACKEND``)
    receives the same whole groups, which makes the memory-signature
    group the unit of distribution for :class:`~repro.exec.backend.ShardedBackend`.
    """
    with obs.span("exec.simulate_batch"):
        report = _simulate_batch(trace, jobs, workers, cache, runtime, backend)
    if obs.enabled():
        _record_batch(report)
    return report


def _simulate_batch(
    trace: Trace,
    jobs: Sequence[SimulationJob],
    workers: int | None,
    cache: SimulationCache | None,
    runtime: ExecutionRuntime | None,
    backend: "ExecutionBackend | str | None" = None,
) -> EngineReport:
    start = time.perf_counter()
    if runtime is not None and runtime.closed:
        raise ExecutionError(
            "cannot dispatch simulate_batch through a closed runtime"
        )
    if workers is None and runtime is not None:
        workers = runtime.workers
    workers = resolve_workers(workers)
    active_backend = resolve_backend(backend, workers)
    cache = cache if cache is not None else default_cache()
    layers_before = _cache_layers(cache)
    results: list[SimulationResult | None] = [None] * len(jobs)
    pending: list[int] = []
    keys: list[tuple] = []
    for index, job in enumerate(jobs):
        key = simulation_key(
            trace, job.memory, job.connectivity, job.sampling,
            job.posted_writes,
        )
        keys.append(key)
        cached = cache.get(key)
        if cached is None:
            pending.append(index)
        else:
            results[index] = _relabel(cached, job)
    hits = len(jobs) - len(pending)
    memory_hits, disk_hits, net_hits = (
        after - before
        for after, before in zip(_cache_layers(cache), layers_before)
    )
    simulated = 0
    retries = pool_rebuilds = 0
    degraded = False
    batch_groups = 0
    delta_candidates = 0
    bytes_sent = bytes_received = 0

    if pending:
        first_of: dict[tuple, int] = {}
        unique: list[int] = []
        for index in pending:
            if keys[index] in first_of:
                continue
            first_of[keys[index]] = index
            unique.append(index)
        simulated = len(unique)

        # Partition the misses by memory-architecture signature — the
        # grouping under which module columns are shareable — keeping
        # first-appearance order for deterministic dispatch.
        group_of: dict = {}
        groups: list[list[int]] = []
        for index in unique:
            signature = keys[index][1]
            slot = group_of.get(signature)
            if slot is None:
                group_of[signature] = len(groups)
                groups.append([index])
            else:
                groups[slot].append(index)
        batch_groups = len(groups)
        group_jobs = [[jobs[i] for i in group] for group in groups]

        if active_backend is not None:
            traffic_before = _backend_traffic(active_backend)
            outcomes = active_backend.run_groups(trace, group_jobs)
            dispatch = active_backend.last_dispatch
            if dispatch is not None:
                retries = dispatch.retries
                pool_rebuilds = dispatch.pool_rebuilds
                degraded = dispatch.degraded
            traffic_after = _backend_traffic(active_backend)
            bytes_sent = traffic_after[0] - traffic_before[0]
            bytes_received = traffic_after[1] - traffic_before[1]
        elif workers <= 1 or len(groups) <= 1:
            plan = sim_batch.trace_plan(trace)
            outcomes = [
                sim_batch.evaluate_group(trace, members, plan)
                for members in group_jobs
            ]
        elif runtime is not None or persistent_runtime_enabled():
            active = runtime or default_runtime(workers)
            outcomes = active.map_simulation_groups(trace, group_jobs)
            dispatch = active.last_dispatch
            if dispatch is not None:
                retries = dispatch.retries
                pool_rebuilds = dispatch.pool_rebuilds
                degraded = dispatch.degraded
        else:
            # Legacy path: fresh pool, trace via initializer, whole
            # groups as map items. A broken pool degrades to serial.
            try:
                with ProcessPoolExecutor(
                    max_workers=min(
                        effective_pool_workers(workers), len(groups)
                    ),
                    initializer=_init_worker,
                    initargs=(trace,),
                ) as pool:
                    outcomes = list(
                        pool.map(
                            _run_group,
                            [tuple(members) for members in group_jobs],
                            chunksize=dispatch_chunksize(
                                len(groups), workers
                            ),
                        )
                    )
            except BrokenProcessPool:
                plan = sim_batch.trace_plan(trace)
                outcomes = [
                    sim_batch.evaluate_group(trace, members, plan)
                    for members in group_jobs
                ]
                retries = 1
                degraded = True
        for group, (group_results, delta) in zip(groups, outcomes):
            delta_candidates += delta
            for index, result in zip(group, group_results):
                results[index] = result
        for index in unique:
            cache.put(keys[index], results[index])
        for index in pending:
            if results[index] is None:
                results[index] = _relabel(
                    results[first_of[keys[index]]], jobs[index]
                )

    return EngineReport(
        results=tuple(results),
        workers=workers,
        cache_hits=hits,
        cache_misses=simulated,
        deduplicated=len(pending) - simulated,
        seconds=time.perf_counter() - start,
        retries=retries,
        pool_rebuilds=pool_rebuilds,
        degraded=degraded,
        batch_groups=batch_groups,
        delta_pass_candidates=delta_candidates,
        backend="local" if active_backend is None else active_backend.name,
        bytes_sent=bytes_sent,
        bytes_received=bytes_received,
        cache_memory_hits=memory_hits,
        cache_disk_hits=disk_hits,
        cache_net_hits=net_hits,
    )


def _execute_inline(trace: Trace, job: SimulationJob) -> SimulationResult:
    """Serial fallback: run one job in-process (no pickling)."""
    return simulate(
        trace,
        job.memory,
        job.connectivity,
        sampling=job.sampling,
        posted_writes=job.posted_writes,
    )


def estimate_many(
    jobs: Sequence[EstimateJob],
    workers: int | None = None,
    runtime: ExecutionRuntime | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> EngineReport:
    """Run Phase-I estimates for every job; results ordered like ``jobs``.

    Estimates are analytic (microseconds each), so the pool only engages
    for batches large enough to amortize job pickling; smaller batches —
    and ``workers=1`` — run serially in-process (an explicit ``backend``
    obeys the same size floor: shipping microsecond jobs over a socket
    is never a win). Estimates never touch the result cache: the report
    counts them as ``uncached``, not as hits or misses.
    """
    with obs.span("exec.estimate_many"):
        report = _estimate_many(jobs, workers, runtime, backend)
    if obs.enabled():
        _record_batch(report)
    return report


def _estimate_many(
    jobs: Sequence[EstimateJob],
    workers: int | None,
    runtime: ExecutionRuntime | None,
    backend: "ExecutionBackend | str | None" = None,
) -> EngineReport:
    start = time.perf_counter()
    if runtime is not None and runtime.closed:
        raise ExecutionError(
            "cannot dispatch estimate_many through a closed runtime"
        )
    if workers is None and runtime is not None:
        workers = runtime.workers
    workers = resolve_workers(workers)
    active_backend = resolve_backend(backend, workers)
    retries = pool_rebuilds = 0
    degraded = False
    bytes_sent = bytes_received = 0
    backend_name = "local"
    if active_backend is not None and len(jobs) >= _MIN_PARALLEL_ESTIMATES:
        backend_name = active_backend.name
        traffic_before = _backend_traffic(active_backend)
        results = tuple(active_backend.run_estimates(jobs))
        dispatch = active_backend.last_dispatch
        if dispatch is not None:
            retries = dispatch.retries
            pool_rebuilds = dispatch.pool_rebuilds
            degraded = dispatch.degraded
        traffic_after = _backend_traffic(active_backend)
        bytes_sent = traffic_after[0] - traffic_before[0]
        bytes_received = traffic_after[1] - traffic_before[1]
    elif workers <= 1 or len(jobs) < _MIN_PARALLEL_ESTIMATES:
        results = tuple(
            estimate_design(job.memory, job.connectivity, job.profile)
            for job in jobs
        )
    elif runtime is not None or persistent_runtime_enabled():
        active = runtime or default_runtime(workers)
        results = tuple(active.map_estimates(jobs))
        dispatch = active.last_dispatch
        if dispatch is not None:
            retries = dispatch.retries
            pool_rebuilds = dispatch.pool_rebuilds
            degraded = dispatch.degraded
    else:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = tuple(
                    pool.map(
                        _run_estimate,
                        jobs,
                        chunksize=dispatch_chunksize(len(jobs), workers),
                    )
                )
        except BrokenProcessPool:
            results = tuple(
                estimate_design(job.memory, job.connectivity, job.profile)
                for job in jobs
            )
            retries = 1
            degraded = True
    return EngineReport(
        results=results,
        workers=workers,
        uncached=len(jobs),
        seconds=time.perf_counter() - start,
        retries=retries,
        pool_rebuilds=pool_rebuilds,
        degraded=degraded,
        backend=backend_name,
        bytes_sent=bytes_sent,
        bytes_received=bytes_received,
    )
