"""Socket wire protocol shared by remote workers and the cache network.

One dependency-free protocol serves both distribution surfaces:

* **job dispatch** — :class:`repro.exec.backend.RemoteBackend` ships
  simulate/estimate batches to a ``repro worker`` process
  (:mod:`repro.exec.worker`) and receives job-index-ordered results;
* **the simulation-cache network layer** — get/put of content-addressed
  result payloads (:mod:`repro.exec.cache`), served by the same worker
  processes.

Framing is deliberately minimal: every message is one length-prefixed
frame — a 5-byte header (``!BI``: one kind byte, a 32-bit payload
length) followed by the payload. Payloads are pickled Python objects
(the same transport the process pool uses), except trace pushes, whose
payload is the pickled metadata followed by the raw column buffer in
:meth:`repro.trace.events.Trace.pack_columns` layout — the exact byte
layout of a shared-memory export, so a trace ships once per (worker,
fingerprint) and the worker attaches to the received bytes zero-copy.

Every connection tracks the bytes it moved (:attr:`Connection.bytes_sent`
/ :attr:`Connection.bytes_received`); the backends fold those into
``obs`` counters and :class:`repro.exec.engine.EngineReport`.
"""

from __future__ import annotations

import pickle
import socket
import struct

from repro.config import current_settings
from repro.errors import ExecutionError

__all__ = [
    "PROTOCOL_VERSION",
    "Frame",
    "Connection",
    "BackendUnavailable",
    "MSG_HELLO",
    "MSG_OK",
    "MSG_ERROR",
    "MSG_TRACE_QUERY",
    "MSG_TRACE_PUSH",
    "MSG_SIM_JOBS",
    "MSG_SIM_GROUPS",
    "MSG_ESTIMATES",
    "MSG_RESULT",
    "MSG_CACHE_GET",
    "MSG_CACHE_PUT",
    "MSG_CACHE_HIT",
    "MSG_CACHE_MISS",
    "MSG_PING",
    "MSG_PONG",
    "decode_trace",
    "encode_trace",
    "max_frame_bytes",
    "parse_address",
]

#: Bumped on any incompatible wire change; checked in the handshake.
PROTOCOL_VERSION = 1

_HEADER = struct.Struct("!BI")


def max_frame_bytes() -> int:
    """The configured frame-size ceiling (``REPRO_MAX_FRAME_MB``).

    The 32-bit length header lets any peer declare a frame of up to
    ~4 GiB; without a ceiling, one garbage or malicious header drives
    the receiver into a multi-gigabyte allocation loop. Frames beyond
    the ceiling are treated as a dead peer (:class:`BackendUnavailable`)
    before any payload byte is read.
    """
    return int(current_settings().max_frame_mb * 1024 * 1024)

# Message kinds. Requests and replies share one numbering space; the
# worker answers every request with exactly one frame.
MSG_HELLO = 1        # -> {"protocol", "kernel_plan_version"}; reply MSG_OK
MSG_OK = 2           # generic success (payload depends on the request)
MSG_ERROR = 3        # payload: {"error": str}; the request failed remotely
MSG_TRACE_QUERY = 4  # -> fingerprint str; reply MSG_OK {"have": bool}
MSG_TRACE_PUSH = 5   # -> (meta, column buffer); reply MSG_OK
MSG_SIM_JOBS = 6     # -> {"fingerprint", "jobs", "collect"}; reply MSG_RESULT
MSG_SIM_GROUPS = 7   # -> {"fingerprint", "groups", "collect"}; reply MSG_RESULT
MSG_ESTIMATES = 8    # -> {"jobs", "collect"}; reply MSG_RESULT
MSG_RESULT = 9       # payload: {"values", "obs"} (obs: ObsSnapshot | None)
MSG_CACHE_GET = 10   # -> digest str; reply MSG_CACHE_HIT | MSG_CACHE_MISS
MSG_CACHE_PUT = 11   # -> (digest, payload bytes); reply MSG_OK
MSG_CACHE_HIT = 12   # payload: the stored bytes
MSG_CACHE_MISS = 13  # empty payload
MSG_PING = 14        # liveness probe; reply MSG_PONG
MSG_PONG = 15


class BackendUnavailable(ExecutionError):
    """A remote worker or cache peer is unreachable or died mid-request.

    Raised by :class:`Connection` on connect failures, truncated
    streams, and socket errors. :class:`repro.exec.backend.ShardedBackend`
    treats it as a recoverable fault (re-dispatch to survivors);
    everything else propagates unchanged, mirroring the local rule that
    job-raised exceptions are not dispatch faults.
    """


class Frame:
    """One decoded protocol frame."""

    __slots__ = ("kind", "payload")

    def __init__(self, kind: int, payload: bytes) -> None:
        self.kind = kind
        self.payload = payload

    def unpickle(self):
        return pickle.loads(self.payload)

    def __repr__(self) -> str:
        return f"<Frame kind={self.kind} {len(self.payload)} bytes>"


def parse_address(address: str) -> tuple[str, int]:
    """Split a ``host:port`` worker/cache address string.

    IPv6 literals use the standard bracketed form (``[::1]:9000``);
    the brackets are stripped so the host feeds straight into
    ``socket.create_connection``. A bare-colon IPv6 host without
    brackets is ambiguous with the port separator and rejected.
    """
    host, separator, port = address.rpartition(":")
    if not separator or not host:
        raise ExecutionError(
            f"worker address must be host:port, got {address!r}"
        )
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
        if not host:
            raise ExecutionError(
                f"worker address has an empty IPv6 host: {address!r}"
            )
    elif ":" in host:
        raise ExecutionError(
            f"IPv6 worker addresses need brackets ([host]:port), "
            f"got {address!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ExecutionError(
            f"worker address port must be an integer, got {address!r}"
        ) from None


_META_HEADER = struct.Struct("!I")


def encode_trace(trace) -> bytes:
    """The :data:`MSG_TRACE_PUSH` payload for one trace.

    Layout: a u32 metadata length, the pickled metadata (name, structs,
    fingerprint, column specs), then the raw column buffer in
    :meth:`~repro.trace.events.Trace.pack_columns` layout — kept
    outside the pickle so the receiver can map numpy views over the
    payload without a second copy.
    """
    specs, buffer = trace.pack_columns()
    meta = pickle.dumps(
        {
            "name": trace.name,
            "structs": trace.structs,
            "fingerprint": trace.fingerprint(),
            "specs": specs,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return _META_HEADER.pack(len(meta)) + meta + buffer


def decode_trace(payload: bytes):
    """Rebuild the pushed trace from a :data:`MSG_TRACE_PUSH` payload."""
    from repro.trace.events import Trace

    (meta_length,) = _META_HEADER.unpack_from(payload)
    offset = _META_HEADER.size
    meta = pickle.loads(payload[offset : offset + meta_length])
    buffer = memoryview(payload)[offset + meta_length :]
    return Trace.from_packed(
        meta["name"],
        meta["structs"],
        meta["fingerprint"],
        meta["specs"],
        buffer,
    )


class Connection:
    """A framed, byte-counting wrapper around one stream socket.

    Used on both sides of the protocol: clients construct one via
    :meth:`connect`, the worker wraps each accepted socket. All
    failures that mean "the peer is gone" (refused connection, reset,
    truncated frame, timeout) surface as :class:`BackendUnavailable` so
    callers have one fault type to recover from.
    """

    def __init__(
        self, sock: socket.socket, max_frame: int | None = None
    ) -> None:
        self._sock = sock
        self.max_frame = max_frame if max_frame is not None else max_frame_bytes()
        self.bytes_sent = 0
        self.bytes_received = 0

    @classmethod
    def connect(
        cls, address: str, timeout: float | None = None
    ) -> "Connection":
        host, port = parse_address(address)
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as error:
            raise BackendUnavailable(
                f"cannot connect to worker {address}: {error}"
            ) from error
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock)

    def settimeout(self, timeout: float | None) -> None:
        self._sock.settimeout(timeout)

    def send(self, kind: int, payload: bytes = b"") -> None:
        message = _HEADER.pack(kind, len(payload)) + payload
        try:
            self._sock.sendall(message)
        except OSError as error:
            raise BackendUnavailable(f"worker send failed: {error}") from error
        self.bytes_sent += len(message)

    def send_pickled(self, kind: int, value) -> None:
        self.send(kind, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def _recv_exact(self, count: int) -> bytes:
        chunks: list[bytes] = []
        remaining = count
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except OSError as error:
                raise BackendUnavailable(
                    f"worker receive failed: {error}"
                ) from error
            if not chunk:
                raise BackendUnavailable(
                    "worker closed the connection mid-frame"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        self.bytes_received += count
        return b"".join(chunks)

    def recv(self) -> Frame:
        kind, length = _HEADER.unpack(self._recv_exact(_HEADER.size))
        if length > self.max_frame:
            # A header this large is garbage or hostile, never a real
            # message; drop the peer before allocating anything.
            self.close()
            raise BackendUnavailable(
                f"peer declared a {length}-byte frame "
                f"(max {self.max_frame}); closing the connection"
            )
        payload = self._recv_exact(length) if length else b""
        return Frame(kind, payload)

    def request(self, kind: int, payload: bytes = b"") -> Frame:
        """Send one frame and wait for the single reply frame.

        A remote :data:`MSG_ERROR` is re-raised locally as
        :class:`ExecutionError` — the request reached the worker and
        failed there, which is a job error, not a dead peer.
        """
        self.send(kind, payload)
        reply = self.recv()
        if reply.kind == MSG_ERROR:
            detail = reply.unpickle().get("error", "unknown worker error")
            raise ExecutionError(f"remote worker error: {detail}")
        return reply

    def request_pickled(self, kind: int, value) -> Frame:
        return self.request(
            kind, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def shutdown_read(self) -> None:
        """Half-close the receive side (drain signal).

        A thread blocked in :meth:`recv` wakes with EOF — a plain
        ``close()`` from another thread does not reliably interrupt a
        blocked ``recv`` — while the send side stays open, so a reply
        already being written still reaches the peer.
        """
        try:
            self._sock.shutdown(socket.SHUT_RD)
        except OSError:
            pass  # already disconnected

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # never connected, or the peer already hung up
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close must not raise
            pass

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
