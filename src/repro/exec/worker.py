"""Socket worker: serves simulate/estimate jobs and cache traffic.

``python -m repro worker`` (see :mod:`repro.cli`) runs one
:class:`WorkerServer`: a thread-per-connection TCP server speaking the
:mod:`repro.exec.net` frame protocol. A worker is the unit of
horizontal sharding — :class:`repro.exec.backend.ShardedBackend` runs
one :class:`~repro.exec.backend.RemoteBackend` client per worker
process and shards memory-signature groups across them.

State held per worker process:

* **traces**, keyed by fingerprint. A client pushes each trace at most
  once per (worker, fingerprint) — :data:`~repro.exec.net.MSG_TRACE_QUERY`
  first, :data:`~repro.exec.net.MSG_TRACE_PUSH` only on "don't have
  it" — and every subsequent job batch references the fingerprint
  alone. Pushed columns are attached zero-copy from the frame payload
  (:func:`repro.exec.net.decode_trace`).
* **trace plans** come from the process-wide plan registry
  (:func:`repro.sim.batch.trace_plan`), so repeated group batches over
  one trace share the plan exactly like a local runtime worker does.
* **cache blobs**, keyed by content digest. The worker doubles as the
  networked layer of :class:`repro.exec.cache.SimulationCache`:
  ``CACHE_GET``/``CACHE_PUT`` move opaque payload bytes (the client
  owns the pickle format and its version stamp), held in memory and —
  when the worker was started with a cache directory — mirrored to the
  same ``<digest>.simres.pkl`` files the local disk layer reads, so a
  worker pointed at a shared ``REPRO_CACHE_DIR`` persists what the
  fleet deduplicates.

Both in-memory stores are byte-capped LRUs (:class:`ByteLRU`) sized by
``REPRO_CACHE_MAX_MB`` (default :data:`DEFAULT_STORE_MB` each), so a
long-lived worker's RSS stays bounded no matter how many traces and
blobs the fleet pushes at it. A client whose trace was evicted under
pressure gets a recognizable job error and re-pushes
(:meth:`repro.exec.backend.RemoteBackend` does this automatically).

The handshake (:data:`~repro.exec.net.MSG_HELLO`) rejects clients
whose protocol or ``KERNEL_PLAN_VERSION`` differs: a version-skewed
worker must fail loudly at connect time, not return results computed
by different kernel code.

Lifecycle: :meth:`WorkerServer.stop` closes the listener and reaps
connection threads; pass ``drain_timeout`` to wait for in-flight
requests to finish their reply before force-closing what remains —
the graceful-drain path the exploration service daemon
(:mod:`repro.service`) uses on ``SIGTERM``.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import socket
import threading
import time
from collections import OrderedDict

from repro import obs
from repro.config import current_settings
from repro.exec import net
from repro.exec.cache import KERNEL_PLAN_VERSION, _SUFFIX
from repro.exec.runtime import _chunk_observation
from repro.sim import batch as sim_batch
from repro.sim.simulator import simulate
from repro.trace.events import Trace

__all__ = ["ByteLRU", "DEFAULT_STORE_MB", "WorkerServer", "serve"]

#: Per-store byte cap (MiB) when ``REPRO_CACHE_MAX_MB`` is unset. The
#: old behaviour — unbounded growth — is exactly the leak this bounds;
#: there is deliberately no way to turn the cap off.
DEFAULT_STORE_MB = 512.0

#: Reap finished connection threads once the live list grows past this.
_REAP_THRESHOLD = 32


class ByteLRU:
    """A byte-capped, thread-safe LRU mapping keys to sized values.

    Values are stored with an explicit byte size (callers know it
    cheaply: ``len(blob)`` or a trace's column ``nbytes``). A put that
    pushes :attr:`total_bytes` over the cap evicts least-recently-used
    entries first; the entry being inserted is never evicted by its own
    put, so even an oversized value is served at least once rather than
    bounced forever.
    """

    def __init__(self, max_bytes: int) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[object, tuple[object, int]]" = OrderedDict()
        self._lock = threading.Lock()
        self.total_bytes = 0
        self.evictions = 0

    def get(self, key):
        """The stored value (refreshed as most recent), or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            return entry[0]

    def put(self, key, value, nbytes: int) -> None:
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.total_bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self.total_bytes += nbytes
            while self.total_bytes > self.max_bytes and len(self._entries) > 1:
                _stale_key, (_value, size) = self._entries.popitem(last=False)
                self.total_bytes -= size
                self.evictions += 1

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _store_max_bytes() -> int:
    """The per-store byte cap: ``REPRO_CACHE_MAX_MB`` or the default."""
    max_mb = current_settings().cache_max_mb
    if max_mb is None:
        max_mb = DEFAULT_STORE_MB
    return max(1, int(max_mb * 1024 * 1024))


def _trace_nbytes(trace: Trace) -> int:
    """A trace's resident footprint: the sum of its column buffers."""
    return int(
        trace.addresses.nbytes
        + trace.sizes.nbytes
        + trace.kinds.nbytes
        + trace.struct_ids.nbytes
        + trace.ticks.nbytes
    )


class WorkerServer:
    """One socket worker process's server state and accept loop.

    Args:
        host: interface to bind (default loopback).
        port: TCP port; 0 (the default) lets the OS pick — read the
            chosen one back from :attr:`address`.
        cache_dir: optional directory for persisting served cache
            blobs (shared-``REPRO_CACHE_DIR`` deployments).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: str | os.PathLike | None = None,
    ) -> None:
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self.address = f"{self.host}:{self.port}"
        self.cache_dir = (
            pathlib.Path(cache_dir) if cache_dir is not None else None
        )
        store_bytes = _store_max_bytes()
        self._traces = ByteLRU(store_bytes)
        self._blobs = ByteLRU(store_bytes)
        self._lock = threading.Lock()
        self._stopped = threading.Event()
        self._threads: list[threading.Thread] = []
        self._connections: set[net.Connection] = set()
        self.connections_served = 0
        self.requests_served = 0

    # -- lifecycle -----------------------------------------------------

    def serve_forever(self) -> None:
        """Accept connections until :meth:`stop` (or the socket dies)."""
        while not self._stopped.is_set():
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            self.connections_served += 1
            self._reap_threads()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(net.Connection(sock),),
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def start(self) -> threading.Thread:
        """Run the accept loop on a background thread (tests, benches)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def _reap_threads(self, force: bool = False) -> None:
        """Drop finished connection threads from the live list.

        Long-lived deployments serve thousands of connections; without
        reaping, every one of them leaks a dead ``Thread`` object into
        ``_threads`` forever. Cheap enough to run on every accept once
        the list passes a small threshold.
        """
        if force or len(self._threads) > _REAP_THRESHOLD:
            self._threads = [t for t in self._threads if t.is_alive()]

    @property
    def live_threads(self) -> int:
        """Connection threads still running (reaps first)."""
        self._reap_threads(force=True)
        return len(self._threads)

    def stop(self, drain_timeout: float | None = None) -> bool:
        """Stop accepting; optionally drain in-flight connections.

        Without ``drain_timeout`` this only closes the listener (the
        historical behaviour — connection threads are daemons and die
        with the process). With it, the call joins every connection
        thread for up to ``drain_timeout`` seconds so in-flight
        requests finish their reply, then force-closes whatever
        connections remain (idle keep-alives blocked in ``recv``) and
        joins briefly again. Returns ``True`` when every thread exited
        within the budget.
        """
        self._stopped.set()
        with contextlib.suppress(OSError):
            self._listener.close()
        if drain_timeout is None:
            self._reap_threads(force=True)
            return not self._threads
        # Half-close every connection's read side: threads parked in
        # recv() wake with EOF immediately, threads mid-dispatch keep
        # their send side and finish delivering the reply, then see
        # EOF on their next recv. Only then join against the deadline.
        with self._lock:
            for connection in self._connections:
                connection.shutdown_read()
        deadline = time.monotonic() + drain_timeout
        for thread in list(self._threads):
            thread.join(max(0.0, deadline - time.monotonic()))
        # Whatever survived the window is wedged: close its socket out
        # from under it and give it one last moment.
        with self._lock:
            lingering = list(self._connections)
        for connection in lingering:
            connection.close()
        for thread in list(self._threads):
            thread.join(1.0)
        self._reap_threads(force=True)
        return not self._threads

    def __enter__(self) -> "WorkerServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- connection handling -------------------------------------------

    def _serve_connection(self, connection: net.Connection) -> None:
        with self._lock:
            self._connections.add(connection)
        try:
            while not self._stopped.is_set():
                try:
                    frame = connection.recv()
                except net.BackendUnavailable:
                    return  # client hung up
                self.requests_served += 1
                try:
                    kind, payload = self._dispatch(frame)
                except Exception as error:
                    # A failed request must not take the worker down:
                    # report it to the requesting client and keep
                    # serving. The client re-raises it as a job error.
                    connection.send_pickled(
                        net.MSG_ERROR,
                        {"error": f"{type(error).__name__}: {error}"},
                    )
                else:
                    connection.send(kind, payload)
        except net.BackendUnavailable:
            return  # client vanished mid-reply
        finally:
            with self._lock:
                self._connections.discard(connection)
            connection.close()

    def _dispatch(self, frame: net.Frame) -> tuple[int, bytes]:
        kind = frame.kind
        if kind == net.MSG_PING:
            return net.MSG_PONG, b""
        if kind == net.MSG_HELLO:
            return self._handle_hello(frame)
        if kind == net.MSG_TRACE_QUERY:
            fingerprint = frame.unpickle()
            have = fingerprint in self._traces
            return net.MSG_OK, _pickled({"have": have})
        if kind == net.MSG_TRACE_PUSH:
            trace = net.decode_trace(frame.payload)
            self._traces.put(trace.fingerprint(), trace, _trace_nbytes(trace))
            obs.incr("worker.trace_pushes")
            return net.MSG_OK, b""
        if kind == net.MSG_SIM_JOBS:
            return self._handle_simulations(frame.unpickle())
        if kind == net.MSG_SIM_GROUPS:
            return self._handle_groups(frame.unpickle())
        if kind == net.MSG_ESTIMATES:
            return self._handle_estimates(frame.unpickle())
        if kind == net.MSG_CACHE_GET:
            return self._handle_cache_get(frame.unpickle())
        if kind == net.MSG_CACHE_PUT:
            digest, blob = frame.unpickle()
            self._blobs.put(digest, blob, len(blob))
            self._persist_blob(digest, blob)
            obs.incr("worker.cache_puts")
            return net.MSG_OK, b""
        raise ValueError(f"unknown message kind {kind}")

    def _handle_hello(self, frame: net.Frame) -> tuple[int, bytes]:
        hello = frame.unpickle()
        protocol = hello.get("protocol")
        kernel = hello.get("kernel_plan_version")
        if protocol != net.PROTOCOL_VERSION or kernel != KERNEL_PLAN_VERSION:
            return net.MSG_ERROR, _pickled(
                {
                    "error": (
                        f"version skew: worker speaks protocol "
                        f"{net.PROTOCOL_VERSION} / kernel "
                        f"{KERNEL_PLAN_VERSION}, client sent "
                        f"{protocol} / {kernel}"
                    )
                }
            )
        return net.MSG_OK, _pickled(
            {
                "protocol": net.PROTOCOL_VERSION,
                "kernel_plan_version": KERNEL_PLAN_VERSION,
            }
        )

    def _trace(self, fingerprint: str) -> Trace:
        trace = self._traces.get(fingerprint)
        if trace is None:
            # Never pushed, or evicted under the store's byte cap. The
            # wording is a protocol marker: RemoteBackend re-pushes the
            # trace and retries once when it sees it.
            raise KeyError(
                f"trace {fingerprint[:12]}… was never pushed to this worker "
                f"(or was evicted; push it again)"
            )
        return trace

    # -- job execution -------------------------------------------------

    def _handle_simulations(self, request: dict) -> tuple[int, bytes]:
        trace = self._trace(request["fingerprint"])
        baseline = _chunk_observation(request.get("collect", False))
        values = [
            simulate(
                trace,
                job.memory,
                job.connectivity,
                sampling=job.sampling,
                posted_writes=job.posted_writes,
            )
            for job in request["jobs"]
        ]
        obs.incr("worker.jobs", len(values))
        return net.MSG_RESULT, _pickled(
            {"values": values, "obs": _obs_delta(baseline)}
        )

    def _handle_groups(self, request: dict) -> tuple[int, bytes]:
        trace = self._trace(request["fingerprint"])
        baseline = _chunk_observation(request.get("collect", False))
        plan = sim_batch.trace_plan(trace)
        values = [
            sim_batch.evaluate_group(trace, group, plan)
            for group in request["groups"]
        ]
        obs.incr("worker.jobs", sum(len(g) for g in request["groups"]))
        return net.MSG_RESULT, _pickled(
            {"values": values, "obs": _obs_delta(baseline)}
        )

    def _handle_estimates(self, request: dict) -> tuple[int, bytes]:
        from repro.conex.estimator import estimate_design

        baseline = _chunk_observation(request.get("collect", False))
        values = [
            estimate_design(job.memory, job.connectivity, job.profile)
            for job in request["jobs"]
        ]
        obs.incr("worker.jobs", len(values))
        return net.MSG_RESULT, _pickled(
            {"values": values, "obs": _obs_delta(baseline)}
        )

    # -- cache serving -------------------------------------------------

    def _handle_cache_get(self, digest: str) -> tuple[int, bytes]:
        blob = self._blobs.get(digest)
        if blob is None and self.cache_dir is not None:
            path = self.cache_dir / f"{digest}{_SUFFIX}"
            try:
                blob = path.read_bytes()
            except OSError:
                blob = None
            if blob is not None:
                self._blobs.put(digest, blob, len(blob))
        if blob is None:
            obs.incr("worker.cache_misses")
            return net.MSG_CACHE_MISS, b""
        obs.incr("worker.cache_hits")
        return net.MSG_CACHE_HIT, blob

    def _persist_blob(self, digest: str, blob: bytes) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.cache_dir / f"{digest}{_SUFFIX}"
        temp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        try:
            temp.write_bytes(blob)
            os.replace(temp, path)  # atomic, same as the local disk layer
        except OSError:
            with contextlib.suppress(OSError):
                temp.unlink()


def _pickled(value) -> bytes:
    import pickle

    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def _obs_delta(baseline):
    return obs.snapshot().subtract(baseline) if baseline is not None else None


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    cache_dir: str | None = None,
) -> None:
    """Blocking entry point used by the ``repro worker`` CLI command.

    Prints the bound address (``listening on host:port``) before
    serving so launchers that requested port 0 can read the chosen
    port back from stdout.
    """
    server = WorkerServer(host=host, port=port, cache_dir=cache_dir)
    print(f"listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.stop(drain_timeout=5.0)
