"""Socket worker: serves simulate/estimate jobs and cache traffic.

``python -m repro worker`` (see :mod:`repro.cli`) runs one
:class:`WorkerServer`: a thread-per-connection TCP server speaking the
:mod:`repro.exec.net` frame protocol. A worker is the unit of
horizontal sharding — :class:`repro.exec.backend.ShardedBackend` runs
one :class:`~repro.exec.backend.RemoteBackend` client per worker
process and shards memory-signature groups across them.

State held per worker process:

* **traces**, keyed by fingerprint. A client pushes each trace at most
  once per (worker, fingerprint) — :data:`~repro.exec.net.MSG_TRACE_QUERY`
  first, :data:`~repro.exec.net.MSG_TRACE_PUSH` only on "don't have
  it" — and every subsequent job batch references the fingerprint
  alone. Pushed columns are attached zero-copy from the frame payload
  (:func:`repro.exec.net.decode_trace`).
* **trace plans** come from the process-wide plan registry
  (:func:`repro.sim.batch.trace_plan`), so repeated group batches over
  one trace share the plan exactly like a local runtime worker does.
* **cache blobs**, keyed by content digest. The worker doubles as the
  networked layer of :class:`repro.exec.cache.SimulationCache`:
  ``CACHE_GET``/``CACHE_PUT`` move opaque payload bytes (the client
  owns the pickle format and its version stamp), held in memory and —
  when the worker was started with a cache directory — mirrored to the
  same ``<digest>.simres.pkl`` files the local disk layer reads, so a
  worker pointed at a shared ``REPRO_CACHE_DIR`` persists what the
  fleet deduplicates.

The handshake (:data:`~repro.exec.net.MSG_HELLO`) rejects clients
whose protocol or ``KERNEL_PLAN_VERSION`` differs: a version-skewed
worker must fail loudly at connect time, not return results computed
by different kernel code.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import socket
import threading

from repro import obs
from repro.exec import net
from repro.exec.cache import KERNEL_PLAN_VERSION, _SUFFIX
from repro.exec.runtime import _chunk_observation
from repro.sim import batch as sim_batch
from repro.sim.simulator import simulate
from repro.trace.events import Trace

__all__ = ["WorkerServer", "serve"]


class WorkerServer:
    """One socket worker process's server state and accept loop.

    Args:
        host: interface to bind (default loopback).
        port: TCP port; 0 (the default) lets the OS pick — read the
            chosen one back from :attr:`address`.
        cache_dir: optional directory for persisting served cache
            blobs (shared-``REPRO_CACHE_DIR`` deployments).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: str | os.PathLike | None = None,
    ) -> None:
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self.address = f"{self.host}:{self.port}"
        self.cache_dir = (
            pathlib.Path(cache_dir) if cache_dir is not None else None
        )
        self._traces: dict[str, Trace] = {}
        self._blobs: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self._stopped = threading.Event()
        self._threads: list[threading.Thread] = []
        self.connections_served = 0
        self.requests_served = 0

    # -- lifecycle -----------------------------------------------------

    def serve_forever(self) -> None:
        """Accept connections until :meth:`stop` (or the socket dies)."""
        while not self._stopped.is_set():
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            self.connections_served += 1
            thread = threading.Thread(
                target=self._serve_connection,
                args=(net.Connection(sock),),
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def start(self) -> threading.Thread:
        """Run the accept loop on a background thread (tests, benches)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def stop(self) -> None:
        """Stop accepting; in-flight connections finish their request."""
        self._stopped.set()
        with contextlib.suppress(OSError):
            self._listener.close()

    def __enter__(self) -> "WorkerServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- connection handling -------------------------------------------

    def _serve_connection(self, connection: net.Connection) -> None:
        try:
            while not self._stopped.is_set():
                try:
                    frame = connection.recv()
                except net.BackendUnavailable:
                    return  # client hung up
                self.requests_served += 1
                try:
                    kind, payload = self._dispatch(frame)
                except Exception as error:
                    # A failed request must not take the worker down:
                    # report it to the requesting client and keep
                    # serving. The client re-raises it as a job error.
                    connection.send_pickled(
                        net.MSG_ERROR,
                        {"error": f"{type(error).__name__}: {error}"},
                    )
                else:
                    connection.send(kind, payload)
        except net.BackendUnavailable:
            return  # client vanished mid-reply
        finally:
            connection.close()

    def _dispatch(self, frame: net.Frame) -> tuple[int, bytes]:
        kind = frame.kind
        if kind == net.MSG_PING:
            return net.MSG_PONG, b""
        if kind == net.MSG_HELLO:
            return self._handle_hello(frame)
        if kind == net.MSG_TRACE_QUERY:
            fingerprint = frame.unpickle()
            have = fingerprint in self._traces
            return net.MSG_OK, _pickled({"have": have})
        if kind == net.MSG_TRACE_PUSH:
            trace = net.decode_trace(frame.payload)
            with self._lock:
                self._traces[trace.fingerprint()] = trace
            obs.incr("worker.trace_pushes")
            return net.MSG_OK, b""
        if kind == net.MSG_SIM_JOBS:
            return self._handle_simulations(frame.unpickle())
        if kind == net.MSG_SIM_GROUPS:
            return self._handle_groups(frame.unpickle())
        if kind == net.MSG_ESTIMATES:
            return self._handle_estimates(frame.unpickle())
        if kind == net.MSG_CACHE_GET:
            return self._handle_cache_get(frame.unpickle())
        if kind == net.MSG_CACHE_PUT:
            digest, blob = frame.unpickle()
            with self._lock:
                self._blobs[digest] = blob
            self._persist_blob(digest, blob)
            obs.incr("worker.cache_puts")
            return net.MSG_OK, b""
        raise ValueError(f"unknown message kind {kind}")

    def _handle_hello(self, frame: net.Frame) -> tuple[int, bytes]:
        hello = frame.unpickle()
        protocol = hello.get("protocol")
        kernel = hello.get("kernel_plan_version")
        if protocol != net.PROTOCOL_VERSION or kernel != KERNEL_PLAN_VERSION:
            return net.MSG_ERROR, _pickled(
                {
                    "error": (
                        f"version skew: worker speaks protocol "
                        f"{net.PROTOCOL_VERSION} / kernel "
                        f"{KERNEL_PLAN_VERSION}, client sent "
                        f"{protocol} / {kernel}"
                    )
                }
            )
        return net.MSG_OK, _pickled(
            {
                "protocol": net.PROTOCOL_VERSION,
                "kernel_plan_version": KERNEL_PLAN_VERSION,
            }
        )

    def _trace(self, fingerprint: str) -> Trace:
        trace = self._traces.get(fingerprint)
        if trace is None:
            raise KeyError(
                f"trace {fingerprint[:12]}… was never pushed to this worker"
            )
        return trace

    # -- job execution -------------------------------------------------

    def _handle_simulations(self, request: dict) -> tuple[int, bytes]:
        trace = self._trace(request["fingerprint"])
        baseline = _chunk_observation(request.get("collect", False))
        values = [
            simulate(
                trace,
                job.memory,
                job.connectivity,
                sampling=job.sampling,
                posted_writes=job.posted_writes,
            )
            for job in request["jobs"]
        ]
        obs.incr("worker.jobs", len(values))
        return net.MSG_RESULT, _pickled(
            {"values": values, "obs": _obs_delta(baseline)}
        )

    def _handle_groups(self, request: dict) -> tuple[int, bytes]:
        trace = self._trace(request["fingerprint"])
        baseline = _chunk_observation(request.get("collect", False))
        plan = sim_batch.trace_plan(trace)
        values = [
            sim_batch.evaluate_group(trace, group, plan)
            for group in request["groups"]
        ]
        obs.incr("worker.jobs", sum(len(g) for g in request["groups"]))
        return net.MSG_RESULT, _pickled(
            {"values": values, "obs": _obs_delta(baseline)}
        )

    def _handle_estimates(self, request: dict) -> tuple[int, bytes]:
        from repro.conex.estimator import estimate_design

        baseline = _chunk_observation(request.get("collect", False))
        values = [
            estimate_design(job.memory, job.connectivity, job.profile)
            for job in request["jobs"]
        ]
        obs.incr("worker.jobs", len(values))
        return net.MSG_RESULT, _pickled(
            {"values": values, "obs": _obs_delta(baseline)}
        )

    # -- cache serving -------------------------------------------------

    def _handle_cache_get(self, digest: str) -> tuple[int, bytes]:
        blob = self._blobs.get(digest)
        if blob is None and self.cache_dir is not None:
            path = self.cache_dir / f"{digest}{_SUFFIX}"
            try:
                blob = path.read_bytes()
            except OSError:
                blob = None
            if blob is not None:
                with self._lock:
                    self._blobs[digest] = blob
        if blob is None:
            obs.incr("worker.cache_misses")
            return net.MSG_CACHE_MISS, b""
        obs.incr("worker.cache_hits")
        return net.MSG_CACHE_HIT, blob

    def _persist_blob(self, digest: str, blob: bytes) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.cache_dir / f"{digest}{_SUFFIX}"
        temp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        try:
            temp.write_bytes(blob)
            os.replace(temp, path)  # atomic, same as the local disk layer
        except OSError:
            with contextlib.suppress(OSError):
                temp.unlink()


def _pickled(value) -> bytes:
    import pickle

    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def _obs_delta(baseline):
    return obs.snapshot().subtract(baseline) if baseline is not None else None


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    cache_dir: str | None = None,
) -> None:
    """Blocking entry point used by the ``repro worker`` CLI command.

    Prints the bound address (``listening on host:port``) before
    serving so launchers that requested port 0 can read the chosen
    port back from stdout.
    """
    server = WorkerServer(host=host, port=port, cache_dir=cache_dir)
    print(f"listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.stop()
