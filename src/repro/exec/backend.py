"""Pluggable execution backends: where a batch's misses actually run.

The engine (:mod:`repro.exec.engine`) owns *what* to run — cache
lookups, dedup, memory-signature grouping, job-index-keyed merge. A
backend owns *where*: the three ``run_*`` methods of
:class:`ExecutionBackend` each take an ordered work list and return
results in the same order, so every backend is interchangeable and a
run is bit-identical whichever one dispatches it (the simulator is
deterministic and results are keyed by index, never by completion
order).

Implementations:

* :class:`SerialBackend` — in-process loops; the reference semantics.
* :class:`PoolBackend` — wraps the persistent
  :class:`~repro.exec.runtime.ExecutionRuntime` (one process pool,
  shared-memory trace exports, fault-tolerant chunk dispatch).
* :class:`RemoteBackend` — one socket worker
  (:mod:`repro.exec.worker`) over the :mod:`repro.exec.net` frame
  protocol. The trace ships at most once per (worker, fingerprint);
  job batches then reference the fingerprint alone.
* :class:`ShardedBackend` — composes N backends, sharding the work
  list round-robin by index. Fault tolerance mirrors the runtime's
  (PR 4) semantics: a :class:`~repro.exec.net.BackendUnavailable`
  marks the shard dead and re-dispatches only its unfinished items to
  the survivors; after ``max_retries`` recovery rounds (or when no
  shard survives) the remainder degrades to a local
  :class:`SerialBackend`. Job-raised errors are *not* faults and
  propagate unchanged.

Selection: pass ``backend=`` to an engine entry point (an instance or
one of the names ``"serial"``/``"pool"``/``"remote"``), or set
``REPRO_BACKEND`` — ``"remote"`` builds a :class:`ShardedBackend` of
one :class:`RemoteBackend` per ``REPRO_WORKER_ADDRS`` address. Unset
(the default) keeps the engine's classic dispatch paths untouched.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Sequence

from repro import obs
from repro.conex.estimator import ConnectivityEstimate, estimate_design
from repro.config import WORKER_ADDRS_ENV, current_settings
from repro.errors import ExecutionError
from repro.exec import net
from repro.exec.cache import KERNEL_PLAN_VERSION
from repro.exec.runtime import (
    DispatchStats,
    ExecutionRuntime,
    default_runtime,
    resolve_max_retries,
)
from repro.sim import batch as sim_batch
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import simulate
from repro.trace.events import Trace

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.exec.engine import EstimateJob, SimulationJob

__all__ = [
    "ExecutionBackend",
    "PoolBackend",
    "RemoteBackend",
    "SerialBackend",
    "ShardedBackend",
    "resolve_backend",
]

GroupOutcome = "tuple[list[SimulationResult], int]"


class ExecutionBackend:
    """Interface: run ordered work lists, return results in order.

    Subclasses implement the three ``run_*`` methods and keep
    :attr:`last_dispatch` current; :attr:`bytes_sent` /
    :attr:`bytes_received` stay zero for local backends.
    """

    #: Short name surfaced as ``EngineReport.backend``.
    name = "base"

    #: Fault accounting for the most recent ``run_*`` call.
    last_dispatch: DispatchStats | None = None

    @property
    def bytes_sent(self) -> int:
        return 0

    @property
    def bytes_received(self) -> int:
        return 0

    def run_simulations(
        self, trace: Trace, jobs: "Sequence[SimulationJob]"
    ) -> list[SimulationResult]:
        """Simulate every job over ``trace``, ordered like ``jobs``."""
        raise NotImplementedError

    def run_groups(
        self, trace: Trace, groups: "Sequence[Sequence[SimulationJob]]"
    ) -> list:
        """Evaluate whole same-signature groups, ordered like ``groups``.

        Returns one ``(results, delta_candidates)`` pair per group —
        the :func:`repro.sim.batch.evaluate_group` contract. Groups
        are never split: splitting would forfeit the shared trace
        plan and module columns.
        """
        raise NotImplementedError

    def run_estimates(
        self, jobs: "Sequence[EstimateJob]"
    ) -> list[ConnectivityEstimate]:
        """Run every Phase-I estimate, ordered like ``jobs``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pools/sockets. Idempotent; safe on unused backends."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class SerialBackend(ExecutionBackend):
    """In-process loops — the reference every other backend must match."""

    name = "serial"

    def run_simulations(self, trace, jobs):
        self.last_dispatch = DispatchStats(jobs=len(jobs))
        return [
            simulate(
                trace,
                job.memory,
                job.connectivity,
                sampling=job.sampling,
                posted_writes=job.posted_writes,
            )
            for job in jobs
        ]

    def run_groups(self, trace, groups):
        self.last_dispatch = DispatchStats(
            jobs=sum(len(group) for group in groups)
        )
        plan = sim_batch.trace_plan(trace)
        return [
            sim_batch.evaluate_group(trace, group, plan) for group in groups
        ]

    def run_estimates(self, jobs):
        self.last_dispatch = DispatchStats(jobs=len(jobs))
        return [
            estimate_design(job.memory, job.connectivity, job.profile)
            for job in jobs
        ]


class PoolBackend(ExecutionBackend):
    """The persistent process-pool runtime behind the backend interface.

    Args:
        runtime: an :class:`~repro.exec.runtime.ExecutionRuntime` to
            dispatch through (not closed by this backend — ownership
            stays with whoever built it); ``None`` takes the
            process-wide default sized for ``workers``.
        workers: pool size when no runtime is given.
    """

    name = "pool"

    def __init__(
        self,
        runtime: ExecutionRuntime | None = None,
        workers: int | None = None,
    ) -> None:
        self._runtime = runtime if runtime is not None else default_runtime(workers)

    @property
    def runtime(self) -> ExecutionRuntime:
        return self._runtime

    def _delegate(self, call: Callable) -> list:
        results = call()
        self.last_dispatch = self._runtime.last_dispatch
        return results

    def run_simulations(self, trace, jobs):
        return self._delegate(
            lambda: self._runtime.map_simulations(trace, jobs)
        )

    def run_groups(self, trace, groups):
        return self._delegate(
            lambda: self._runtime.map_simulation_groups(trace, groups)
        )

    def run_estimates(self, jobs):
        return self._delegate(lambda: self._runtime.map_estimates(jobs))

    def __repr__(self) -> str:
        return f"<PoolBackend runtime={self._runtime!r}>"


class RemoteBackend(ExecutionBackend):
    """One socket worker, addressed as ``host:port``.

    The connection is opened lazily (handshake checks protocol and
    :data:`~repro.exec.cache.KERNEL_PLAN_VERSION`) and re-opened after
    a fault; the per-connection pushed-trace set is dropped with the
    connection, since a replacement worker process starts blank. All
    connection-level failures surface as
    :class:`~repro.exec.net.BackendUnavailable` for the sharding layer
    to recover from.
    """

    name = "remote"

    def __init__(self, address: str, timeout: float | None = None) -> None:
        self.address = address
        self.timeout = (
            timeout
            if timeout is not None
            else current_settings().job_timeout
        )
        self._conn: net.Connection | None = None
        self._pushed: set[str] = set()
        self._closed_sent = 0
        self._closed_received = 0

    @property
    def bytes_sent(self) -> int:
        conn = self._conn
        return self._closed_sent + (conn.bytes_sent if conn else 0)

    @property
    def bytes_received(self) -> int:
        conn = self._conn
        return self._closed_received + (conn.bytes_received if conn else 0)

    def _connection(self) -> net.Connection:
        if self._conn is None:
            conn = net.Connection.connect(self.address, timeout=self.timeout)
            try:
                conn.request_pickled(
                    net.MSG_HELLO,
                    {
                        "protocol": net.PROTOCOL_VERSION,
                        "kernel_plan_version": KERNEL_PLAN_VERSION,
                    },
                )
            except Exception:
                conn.close()
                raise
            self._conn = conn
            self._pushed = set()
        return self._conn

    def _drop_connection(self) -> None:
        conn, self._conn = self._conn, None
        self._pushed = set()
        if conn is not None:
            self._closed_sent += conn.bytes_sent
            self._closed_received += conn.bytes_received
            conn.close()

    def _request(self, kind: int, value) -> net.Frame:
        try:
            return self._connection().request_pickled(kind, value)
        except net.BackendUnavailable:
            self._drop_connection()
            raise

    def ping(self) -> bool:
        """Is the worker reachable right now?"""
        try:
            return self._request(net.MSG_PING, None).kind == net.MSG_PONG
        except net.BackendUnavailable:
            return False

    def ensure_trace(self, trace: Trace) -> None:
        """Ship the trace unless this worker already holds it."""
        fingerprint = trace.fingerprint()
        if fingerprint in self._pushed:
            return
        reply = self._request(net.MSG_TRACE_QUERY, fingerprint)
        if not reply.unpickle().get("have"):
            with obs.span("backend.trace_push"):
                connection = self._connection()
                try:
                    connection.request(
                        net.MSG_TRACE_PUSH, net.encode_trace(trace)
                    )
                except net.BackendUnavailable:
                    self._drop_connection()
                    raise
            obs.incr("backend.trace_pushes")
        self._pushed.add(fingerprint)

    def _run_remote(self, kind: int, request: dict, jobs: int) -> list:
        request["collect"] = obs.enabled()
        with obs.span("backend.remote_dispatch"):
            reply = self._request(kind, request)
        data = reply.unpickle()
        obs.merge_snapshot(data.get("obs"))
        self.last_dispatch = DispatchStats(jobs=jobs)
        return data["values"]

    def _run_traced(
        self, trace: Trace, kind: int, request: dict, jobs: int
    ) -> list:
        """Dispatch a trace-referencing batch, re-pushing on eviction.

        A long-lived worker's trace store is a byte-capped LRU, so the
        trace this connection pushed earlier may have been evicted by
        other tenants' traffic. The worker reports that as a job error
        carrying a recognizable marker; one re-push plus retry makes
        eviction invisible to callers instead of failing the batch.
        """
        self.ensure_trace(trace)
        try:
            return self._run_remote(kind, request, jobs)
        except ExecutionError as error:
            if "was never pushed" not in str(error):
                raise
            self._pushed.discard(trace.fingerprint())
            obs.incr("backend.trace_repushes")
            self.ensure_trace(trace)
            return self._run_remote(kind, request, jobs)

    def run_simulations(self, trace, jobs):
        return self._run_traced(
            trace,
            net.MSG_SIM_JOBS,
            {"fingerprint": trace.fingerprint(), "jobs": list(jobs)},
            len(jobs),
        )

    def run_groups(self, trace, groups):
        return self._run_traced(
            trace,
            net.MSG_SIM_GROUPS,
            {
                "fingerprint": trace.fingerprint(),
                "groups": [tuple(group) for group in groups],
            },
            sum(len(group) for group in groups),
        )

    def run_estimates(self, jobs):
        return self._run_remote(
            net.MSG_ESTIMATES, {"jobs": list(jobs)}, len(jobs)
        )

    def close(self) -> None:
        self._drop_connection()

    def __repr__(self) -> str:
        state = "connected" if self._conn is not None else "idle"
        return f"<RemoteBackend {self.address} ({state})>"


class ShardedBackend(ExecutionBackend):
    """Shard ordered work across N backends; merge by original index.

    Sharding is deterministic — item ``i`` of a round goes to healthy
    shard ``i % len(healthy)`` — but determinism of *results* never
    depends on placement: every backend returns results keyed to the
    indices it was handed, so the merged list is bit-identical to a
    serial run regardless of which shard (or which recovery round)
    produced each entry.
    """

    name = "sharded"

    def __init__(
        self,
        backends: Sequence[ExecutionBackend],
        fallback: ExecutionBackend | None = None,
        max_retries: int | None = None,
    ) -> None:
        if not backends:
            raise ExecutionError("ShardedBackend needs at least one backend")
        self.backends = list(backends)
        self.fallback = fallback if fallback is not None else SerialBackend()
        self.max_retries = resolve_max_retries(max_retries)
        self._alive = [True] * len(self.backends)

    @property
    def healthy_backends(self) -> list[ExecutionBackend]:
        return [
            backend
            for backend, alive in zip(self.backends, self._alive)
            if alive
        ]

    @property
    def bytes_sent(self) -> int:
        return sum(backend.bytes_sent for backend in self.backends)

    @property
    def bytes_received(self) -> int:
        return sum(backend.bytes_received for backend in self.backends)

    # -- fault-tolerant sharded dispatch -------------------------------

    def _run_sharded(
        self,
        items: Sequence,
        run: Callable[[ExecutionBackend, list], list],
        run_fallback: Callable[[list], list],
        jobs: int,
    ) -> list:
        """The sharding core shared by all three ``run_*`` methods.

        ``run(backend, subset)`` executes a shard's item subset;
        ``run_fallback(subset)`` is the local degraded path. Mirrors
        :meth:`repro.exec.runtime.ExecutionRuntime._dispatch_chunks`:
        per-round bookkeeping keyed by item index, dead shards detected
        via :class:`~repro.exec.net.BackendUnavailable`, unfinished
        items re-dispatched to survivors, serial degradation after the
        retry budget. Item-raised errors propagate unchanged.
        """
        stats = DispatchStats(jobs=jobs)
        results: list = [None] * len(items)
        finished = [False] * len(items)
        pending = list(range(len(items)))
        while pending:
            shards = [
                index
                for index, alive in enumerate(self._alive)
                if alive
            ]
            if not shards or stats.degraded:
                stats.degraded = True
                values = run_fallback([items[i] for i in pending])
                for index, value in zip(pending, values):
                    results[index] = value
                break
            # Deterministic round-robin by position in the pending list.
            assignments: dict[int, list[int]] = {s: [] for s in shards}
            for position, index in enumerate(pending):
                assignments[shards[position % len(shards)]].append(index)
            errors: list[BaseException] = []

            def dispatch(shard: int, indices: list[int]) -> None:
                try:
                    values = run(
                        self.backends[shard], [items[i] for i in indices]
                    )
                except net.BackendUnavailable:
                    # Dead socket: mark the shard down; its indices
                    # stay pending for the next recovery round.
                    self._alive[shard] = False
                    obs.incr("backend.shard_deaths")
                except BaseException as error:  # job error: propagate
                    errors.append(error)
                else:
                    for index, value in zip(indices, values):
                        results[index] = value
                        finished[index] = True

            threads = [
                threading.Thread(target=dispatch, args=(shard, indices))
                for shard, indices in assignments.items()
                if indices
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise errors[0]
            pending = [i for i in pending if not finished[i]]
            if pending:
                if stats.retries >= self.max_retries:
                    stats.degraded = True
                else:
                    stats.retries += 1
                obs.incr("backend.redispatches")
        self.last_dispatch = stats
        return results

    def run_simulations(self, trace, jobs):
        return self._run_sharded(
            list(jobs),
            lambda backend, subset: backend.run_simulations(trace, subset),
            lambda subset: self.fallback.run_simulations(trace, subset),
            len(jobs),
        )

    def run_groups(self, trace, groups):
        return self._run_sharded(
            [tuple(group) for group in groups],
            lambda backend, subset: backend.run_groups(trace, subset),
            lambda subset: self.fallback.run_groups(trace, subset),
            sum(len(group) for group in groups),
        )

    def run_estimates(self, jobs):
        return self._run_sharded(
            list(jobs),
            lambda backend, subset: backend.run_estimates(subset),
            lambda subset: self.fallback.run_estimates(subset),
            len(jobs),
        )

    def close(self) -> None:
        for backend in self.backends:
            backend.close()
        self.fallback.close()

    def __repr__(self) -> str:
        alive = sum(self._alive)
        return (
            f"<ShardedBackend {alive}/{len(self.backends)} shards alive>"
        )


def resolve_backend(
    backend: "ExecutionBackend | str | None" = None,
    workers: int | None = None,
) -> ExecutionBackend | None:
    """Turn a backend spec into an instance, or ``None`` for the classic paths.

    ``None`` consults ``Settings.backend`` (``REPRO_BACKEND``); the
    empty default keeps the engine's pre-backend dispatch exactly as
    it was. ``"remote"`` shards across one :class:`RemoteBackend` per
    ``REPRO_WORKER_ADDRS`` address, with the runtime's retry budget
    and a serial local fallback.
    """
    if backend is None:
        spec = current_settings().backend
        if not spec:
            return None
        backend = spec
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend == "serial":
        return SerialBackend()
    if backend == "pool":
        return PoolBackend(workers=workers)
    if backend == "remote":
        addresses = current_settings().worker_addrs
        if not addresses:
            raise ExecutionError(
                f"backend 'remote' needs worker addresses: set "
                f"{WORKER_ADDRS_ENV} to a comma-separated host:port list"
            )
        return ShardedBackend(
            [RemoteBackend(address) for address in addresses]
        )
    raise ExecutionError(
        f"unknown backend {backend!r}: expected 'serial', 'pool', 'remote', "
        f"or an ExecutionBackend instance"
    )
