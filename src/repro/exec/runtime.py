"""Persistent execution runtime: one pool, one trace export, many batches.

The engine's original dispatch built a fresh ``ProcessPoolExecutor``
per ``simulate_many`` batch and shipped the trace to every worker via
the pool initializer — megabytes of pickling (under spawn) and full
process start-up paid on *every* batch. An exploration session issues
many batches (APEX evaluation, ConEx Phase II per memory architecture,
neighborhood expansion, sweeps), so per-batch setup dominates once the
simulations themselves are fast.

:class:`ExecutionRuntime` amortizes all of it:

* the worker pool is created once (lazily, on first parallel dispatch)
  and reused by every subsequent ``simulate_many`` / ``estimate_many``
  call routed through the runtime;
* each distinct trace is exported once per (runtime, fingerprint) to
  shared memory (:meth:`repro.trace.events.Trace.export_shared`);
  workers attach to the columns zero-copy on first use and keep the
  attached trace in a per-process registry, so a batch dispatch moves
  only job specs and a tiny :class:`~repro.trace.events.SharedTraceHandle`;
* ``close()`` (or the context manager) shuts the pool down and unlinks
  the shared blocks; a process-wide default runtime
  (:func:`default_runtime`) is closed automatically at exit.

``workers=1`` keeps the serial in-process fallback: no pool, no
export, bit-identical results — the determinism contract of
:mod:`repro.exec.engine` is unchanged because results stay keyed by
job index and the simulator is deterministic.

Opt-outs: ``REPRO_PERSISTENT_RUNTIME=0`` makes the engine fall back to
the legacy per-batch pool construction (the pre-runtime behaviour);
an explicitly passed runtime is always honoured.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Sequence

from repro.conex.estimator import ConnectivityEstimate, estimate_design
from repro.errors import ExplorationError
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import simulate
from repro.trace.events import SharedTraceExport, SharedTraceHandle, Trace

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.exec.engine import EstimateJob, SimulationJob

#: Environment variable supplying the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Set to ``0`` to disable the persistent runtime: parallel batches
#: then rebuild a pool per call, as before the runtime existed.
RUNTIME_ENV = "REPRO_PERSISTENT_RUNTIME"


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: explicit arg, else ``REPRO_WORKERS``, else 1.

    The serial default keeps library behaviour (and golden outputs)
    identical to the pre-engine code unless a caller or the environment
    opts into parallelism.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ExplorationError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from None
    if workers is None:
        return 1
    if workers < 1:
        raise ExplorationError(f"workers must be >= 1, got {workers}")
    return workers


def persistent_runtime_enabled() -> bool:
    """Is the persistent runtime the default parallel dispatch path?"""
    return os.environ.get(RUNTIME_ENV, "").strip() != "0"


def dispatch_chunksize(pending: int, workers: int) -> int:
    """Dispatch granularity: ~4 chunks per worker amortizes the IPC."""
    return max(1, -(-pending // (workers * 4)))


# -- worker-process side ----------------------------------------------------

#: Traces this worker has attached, keyed by fingerprint. Entries live
#: for the worker's lifetime: the exporting runtime unlinks the blocks
#: only after the pool has shut down, and an attached mapping survives
#: the unlink anyway (POSIX semantics).
_ATTACHED_TRACES: dict[str, Trace] = {}


def _attached_trace(handle: SharedTraceHandle) -> Trace:
    """This worker's view of the shared trace, attached on first use."""
    trace = _ATTACHED_TRACES.get(handle.fingerprint)
    if trace is None:
        trace = Trace.attach_shared(handle)
        _ATTACHED_TRACES[handle.fingerprint] = trace
    return trace


def _run_shared_simulation(
    item: "tuple[SharedTraceHandle, SimulationJob]",
) -> SimulationResult:
    handle, job = item
    trace = _attached_trace(handle)
    return simulate(
        trace,
        job.memory,
        job.connectivity,
        sampling=job.sampling,
        posted_writes=job.posted_writes,
    )


def _run_pool_estimate(job: "EstimateJob") -> ConnectivityEstimate:
    return estimate_design(job.memory, job.connectivity, job.profile)


# -- the runtime ------------------------------------------------------------

class ExecutionRuntime:
    """A long-lived worker pool plus its shared trace exports.

    Construct one per exploration session (the CLI does this per
    command) or rely on :func:`default_runtime`. Thread it through
    ``simulate_many(..., runtime=...)`` / driver ``runtime=``
    parameters; every batch then reuses the same pool and the same
    shared trace blocks.

    Args:
        workers: process count; ``None`` consults ``REPRO_WORKERS``
            and falls back to 1 (serial: the runtime stays inert — no
            pool, no exports).
        mp_context: optional :mod:`multiprocessing` start-method name
            (``"fork"``, ``"spawn"``, ``"forkserver"``) or context
            object; ``None`` uses the platform default.
    """

    def __init__(
        self,
        workers: int | None = None,
        mp_context: str | multiprocessing.context.BaseContext | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._exports: dict[str, SharedTraceExport] = {}
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise ExplorationError("execution runtime is closed")

    def _ensure_pool(self) -> ProcessPoolExecutor:
        self._ensure_open()
        if self._pool is None:
            context = self._mp_context
            if isinstance(context, str):
                context = multiprocessing.get_context(context)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._pool

    def share_trace(self, trace: Trace) -> SharedTraceHandle:
        """The trace's shared handle, exported once per fingerprint."""
        self._ensure_open()
        fingerprint = trace.fingerprint()
        export = self._exports.get(fingerprint)
        if export is None:
            export = trace.export_shared()
            self._exports[fingerprint] = export
        return export.handle

    def map_simulations(
        self, trace: Trace, jobs: "Sequence[SimulationJob]"
    ) -> list[SimulationResult]:
        """Run every job over ``trace``; results ordered like ``jobs``."""
        self._ensure_open()
        if not jobs:
            return []
        if self.workers <= 1:
            return [
                simulate(
                    trace,
                    job.memory,
                    job.connectivity,
                    sampling=job.sampling,
                    posted_writes=job.posted_writes,
                )
                for job in jobs
            ]
        handle = self.share_trace(trace)
        pool = self._ensure_pool()
        return list(
            pool.map(
                _run_shared_simulation,
                [(handle, job) for job in jobs],
                chunksize=dispatch_chunksize(len(jobs), self.workers),
            )
        )

    def map_estimates(
        self, jobs: "Sequence[EstimateJob]"
    ) -> list[ConnectivityEstimate]:
        """Run every Phase-I estimate; results ordered like ``jobs``."""
        self._ensure_open()
        if not jobs:
            return []
        if self.workers <= 1:
            return [
                estimate_design(job.memory, job.connectivity, job.profile)
                for job in jobs
            ]
        pool = self._ensure_pool()
        return list(
            pool.map(
                _run_pool_estimate,
                jobs,
                chunksize=dispatch_chunksize(len(jobs), self.workers),
            )
        )

    def close(self) -> None:
        """Shut the pool down and unlink the shared exports. Idempotent."""
        if self._closed:
            return
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        exports, self._exports = self._exports, {}
        for export in exports.values():
            export.close()

    def __enter__(self) -> "ExecutionRuntime":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "pooled" if self._pool is not None else "idle"
        )
        return f"<ExecutionRuntime workers={self.workers} ({state})>"


# -- the process-wide default ----------------------------------------------

_DEFAULT_RUNTIME: ExecutionRuntime | None = None


def default_runtime(workers: int | None = None) -> ExecutionRuntime:
    """The process-wide runtime, sized for at least ``workers``.

    Created on first use; reused by every subsequent call. Asking for
    more workers than the current default has closes it and builds a
    bigger one (a pool cannot grow in place); asking for fewer reuses
    the existing, larger pool.
    """
    global _DEFAULT_RUNTIME
    workers = resolve_workers(workers)
    runtime = _DEFAULT_RUNTIME
    if runtime is not None and not runtime.closed and runtime.workers >= workers:
        return runtime
    if runtime is not None and not runtime.closed:
        runtime.close()
    runtime = ExecutionRuntime(workers=workers)
    _DEFAULT_RUNTIME = runtime
    return runtime


def set_default_runtime(
    runtime: ExecutionRuntime | None,
) -> ExecutionRuntime | None:
    """Install ``runtime`` as the process-wide default.

    Returns the previous default (not closed — the caller decides its
    fate). Pass ``None`` to clear.
    """
    global _DEFAULT_RUNTIME
    previous, _DEFAULT_RUNTIME = _DEFAULT_RUNTIME, runtime
    return previous


@atexit.register
def _close_default_runtime() -> None:  # pragma: no cover - exit hook
    if _DEFAULT_RUNTIME is not None:
        _DEFAULT_RUNTIME.close()
