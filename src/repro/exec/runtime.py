"""Persistent execution runtime: one pool, one trace export, many batches.

The engine's original dispatch built a fresh ``ProcessPoolExecutor``
per ``simulate_many`` batch and shipped the trace to every worker via
the pool initializer — megabytes of pickling (under spawn) and full
process start-up paid on *every* batch. An exploration session issues
many batches (APEX evaluation, ConEx Phase II per memory architecture,
neighborhood expansion, sweeps), so per-batch setup dominates once the
simulations themselves are fast.

:class:`ExecutionRuntime` amortizes all of it:

* the worker pool is created once (lazily, on first parallel dispatch)
  and reused by every subsequent ``simulate_many`` / ``estimate_many``
  call routed through the runtime;
* each distinct trace is exported once per (runtime, fingerprint) to
  shared memory (:meth:`repro.trace.events.Trace.export_shared`);
  workers attach to the columns zero-copy on first use and keep the
  attached trace in a per-process registry, so a batch dispatch moves
  only job specs and a tiny :class:`~repro.trace.events.SharedTraceHandle`;
* ``close()`` (or the context manager) shuts the pool down and unlinks
  the shared blocks; a process-wide default runtime
  (:func:`default_runtime`) is closed automatically at exit.

**Fault tolerance.** A worker death (OOM kill, segfault, SIGKILL)
breaks a ``ProcessPoolExecutor`` permanently: every in-flight and
future submission raises ``BrokenProcessPool``. The runtime survives
this instead of failing the batch. Dispatch is chunked through
``pool.submit`` with per-chunk bookkeeping, so when a pool breaks (or
a chunk exceeds the per-job timeout from ``REPRO_JOB_TIMEOUT``) the
runtime collects every chunk that already finished, rebuilds the pool,
and re-dispatches only the unfinished job indices — results stay keyed
by job index, so a recovered batch is bit-identical to an undisturbed
one. After ``REPRO_MAX_RETRIES`` pool rebuilds (default 2) the batch
degrades to the serial in-process path rather than erroring. Per-dispatch accounting lands in
:attr:`ExecutionRuntime.last_dispatch` (a :class:`DispatchStats`) and
accumulates in :attr:`ExecutionRuntime.stats`; the engine surfaces it
as ``EngineReport.retries`` / ``pool_rebuilds`` / ``degraded``.

Shared-memory hygiene is crash-safe too: exported blocks carry
PID-tagged names and a sidecar manifest (:mod:`repro.trace.shm`),
SIGTERM/SIGINT unlink whatever is still registered, and runtime
construction sweeps blocks leaked by dead processes.

``workers=1`` keeps the serial in-process fallback: no pool, no
export, bit-identical results — the determinism contract of
:mod:`repro.exec.engine` is unchanged because results stay keyed by
job index and the simulator is deterministic.

Opt-outs: ``REPRO_PERSISTENT_RUNTIME=0`` makes the engine fall back to
the legacy per-batch pool construction (the pre-runtime behaviour);
an explicitly passed runtime is always honoured.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro import obs
from repro.conex.estimator import ConnectivityEstimate, estimate_design
from repro.config import (
    FAULT_INJECT_ENV,
    JOB_TIMEOUT_ENV,
    MAX_RETRIES_ENV,
    RUNTIME_ENV,
    WORKERS_ENV,
    current_settings,
)
from repro.errors import ExecutionError, ExplorationError
from repro.obs.registry import ObsSnapshot
from repro.sim import batch
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import simulate
from repro.stats import StatsReport
from repro.trace import shm as shm_registry
from repro.trace.events import SharedTraceExport, SharedTraceHandle, Trace

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.exec.engine import EstimateJob, SimulationJob

__all__ = [
    "FAULT_INJECT_ENV",
    "JOB_TIMEOUT_ENV",
    "MAX_RETRIES_ENV",
    "RUNTIME_ENV",
    "WORKERS_ENV",
    "DEFAULT_MAX_RETRIES",
    "DispatchStats",
    "ExecutionRuntime",
    "RuntimeStats",
    "default_runtime",
    "dispatch_chunksize",
    "effective_pool_workers",
    "persistent_runtime_enabled",
    "resolve_job_timeout",
    "resolve_max_retries",
    "resolve_workers",
    "set_default_runtime",
]

#: Default pool rebuilds per batch when ``REPRO_MAX_RETRIES`` is unset.
DEFAULT_MAX_RETRIES = 2

#: Processes that already warned about an over-provisioned pool.
_CAP_WARNED: set[int] = set()


def effective_pool_workers(workers: int) -> int:
    """Pool size for a requested worker count, capped at the CPU count.

    ``BENCH_parallel.json`` records speedup 0.98 at ``workers=4`` on a
    one-CPU host: processes beyond the core count only add scheduling
    and pickling overhead. The cap applies to the *pool size only* —
    dispatch accounting, chunk sizing, and the ``workers<=1`` serial
    short-circuit all keep the requested count, so capped and uncapped
    runs stay bit-identical (results are keyed by job index either
    way). Warns once per process; ``REPRO_WORKERS_CAP=0`` disables the
    cap for oversubscription experiments.
    """
    if workers <= 1 or not current_settings().workers_cap:
        return workers
    cap = os.cpu_count() or 1
    if workers <= cap:
        return workers
    pid = os.getpid()
    if pid not in _CAP_WARNED:
        _CAP_WARNED.add(pid)
        import warnings

        warnings.warn(
            f"requested {workers} pool workers on a {cap}-CPU host; "
            f"capping the pool at {cap} processes "
            f"(set REPRO_WORKERS_CAP=0 to oversubscribe anyway)",
            RuntimeWarning,
            stacklevel=3,
        )
        obs.incr("runtime.workers_capped")
    return cap


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: explicit arg, else ``Settings.workers``.

    The settings default (``REPRO_WORKERS`` unset) is 1 — serial — so
    library behaviour (and golden outputs) stays identical to the
    pre-engine code unless a caller or the environment opts into
    parallelism.
    """
    if workers is None:
        return current_settings().workers
    if workers < 1:
        raise ExplorationError(f"workers must be >= 1, got {workers}")
    return workers


def resolve_job_timeout(timeout: float | None = None) -> float | None:
    """Effective per-job timeout: explicit arg, else ``Settings.job_timeout``."""
    if timeout is None:
        return current_settings().job_timeout
    if timeout <= 0:
        raise ExecutionError(f"job timeout must be positive, got {timeout}")
    return float(timeout)


def resolve_max_retries(retries: int | None = None) -> int:
    """Effective rebuild budget: explicit arg, else ``Settings.max_retries``."""
    if retries is None:
        return current_settings().max_retries
    if retries < 0:
        raise ExecutionError(f"max retries must be >= 0, got {retries}")
    return retries


def persistent_runtime_enabled() -> bool:
    """Is the persistent runtime the default parallel dispatch path?"""
    return current_settings().persistent_runtime


def dispatch_chunksize(pending: int, workers: int) -> int:
    """Dispatch granularity: ~4 chunks per worker amortizes the IPC."""
    return max(1, -(-pending // (workers * 4)))


@dataclass
class DispatchStats(StatsReport):
    """Fault accounting for one ``map_simulations``/``map_estimates`` call.

    Attributes:
        jobs: jobs the call was asked to run.
        retries: recovery rounds that re-dispatched unfinished jobs to
            a rebuilt pool.
        pool_rebuilds: worker pools torn down and rebuilt after a fault
            (a broken pool or a chunk timeout).
        timeouts: chunks abandoned because they exceeded the per-job
            timeout budget.
        degraded: the rebuild budget ran out and the remaining jobs
            finished on the serial in-process path.
    """

    jobs: int = 0
    retries: int = 0
    pool_rebuilds: int = 0
    timeouts: int = 0
    degraded: bool = False


@dataclass
class RuntimeStats(StatsReport):
    """Cumulative fault accounting across a runtime's lifetime."""

    batches: int = 0
    jobs: int = 0
    retries: int = 0
    pool_rebuilds: int = 0
    timeouts: int = 0
    degraded_batches: int = 0

    def absorb(self, dispatch: DispatchStats) -> None:
        self.batches += 1
        self.jobs += dispatch.jobs
        self.retries += dispatch.retries
        self.pool_rebuilds += dispatch.pool_rebuilds
        self.timeouts += dispatch.timeouts
        self.degraded_batches += int(dispatch.degraded)

    def fault_summary(self) -> str | None:
        """One-line fault recap, or ``None`` when the run was clean.

        The CLI prints this to stderr after each command instead of
        formatting runtime fields itself.
        """
        if not self.pool_rebuilds and not self.degraded_batches:
            return None
        degraded = (
            f", {self.degraded_batches} batch(es) degraded to serial"
            if self.degraded_batches
            else ""
        )
        return (
            f"recovered from worker faults: "
            f"{self.pool_rebuilds} pool rebuild(s), "
            f"{self.retries} retry round(s), "
            f"{self.timeouts} timeout(s){degraded}"
        )


# -- worker-process side ----------------------------------------------------

#: Traces this worker has attached, keyed by fingerprint. Entries live
#: for the worker's lifetime: the exporting runtime unlinks the blocks
#: only after the pool has shut down, and an attached mapping survives
#: the unlink anyway (POSIX semantics).
_ATTACHED_TRACES: dict[str, Trace] = {}


def _attached_trace(handle: SharedTraceHandle) -> Trace:
    """This worker's view of the shared trace, attached on first use."""
    trace = _ATTACHED_TRACES.get(handle.fingerprint)
    if trace is None:
        trace = Trace.attach_shared(handle)
        _ATTACHED_TRACES[handle.fingerprint] = trace
    return trace


def _maybe_inject_fault(spec: str) -> None:
    """Honour the ``REPRO_FAULT_INJECT`` chaos hook (tests/CI only).

    ``spec`` is ``Settings.fault_inject``, looked up once per chunk by
    the callers (estimates are microseconds each — a per-item settings
    read would dominate them).
    """
    mode, _, path = spec.partition(":")
    if mode == "always":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode not in ("once", "hang") or not path:
        return
    try:
        descriptor = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return  # someone already took the fault
    os.close(descriptor)
    if mode == "once":
        os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(600.0)  # "hang": park until the timeout reaper kills us


def _run_shared_simulation(
    item: "tuple[SharedTraceHandle, SimulationJob]",
) -> SimulationResult:
    handle, job = item
    trace = _attached_trace(handle)
    return simulate(
        trace,
        job.memory,
        job.connectivity,
        sampling=job.sampling,
        posted_writes=job.posted_writes,
    )


def _chunk_observation(collect: bool) -> ObsSnapshot | None:
    """Worker-side setup for one chunk's obs collection.

    When the dispatching process records metrics (``collect``), the
    worker turns its own recording on (it may have been spawned before
    the parent enabled obs, so the import-time ``REPRO_OBS`` check is
    not enough) and returns the baseline snapshot the post-chunk delta
    is computed against.
    """
    if not collect:
        return None
    if not obs.enabled():
        obs.enable()
    obs.reset_span_stack()
    return obs.snapshot()


def _run_simulation_chunk(
    items: "Sequence[tuple[SharedTraceHandle, SimulationJob]]",
    collect: bool = False,
) -> "tuple[list[SimulationResult], ObsSnapshot | None]":
    fault_spec = current_settings().fault_inject
    baseline = _chunk_observation(collect)
    results = []
    for item in items:
        if fault_spec:
            _maybe_inject_fault(fault_spec)
        results.append(_run_shared_simulation(item))
    delta = obs.snapshot().subtract(baseline) if collect else None
    return results, delta


def _run_shared_group(
    item: "tuple[SharedTraceHandle, tuple[SimulationJob, ...]]",
) -> "tuple[list[SimulationResult], int]":
    handle, jobs = item
    trace = _attached_trace(handle)
    return batch.evaluate_group(trace, jobs)


def _run_group_chunk(
    items: "Sequence[tuple[SharedTraceHandle, tuple[SimulationJob, ...]]]",
    collect: bool = False,
) -> "tuple[list[tuple[list[SimulationResult], int]], ObsSnapshot | None]":
    fault_spec = current_settings().fault_inject
    baseline = _chunk_observation(collect)
    results = []
    for item in items:
        if fault_spec:
            _maybe_inject_fault(fault_spec)
        results.append(_run_shared_group(item))
    delta = obs.snapshot().subtract(baseline) if collect else None
    return results, delta


def _run_pool_estimate(job: "EstimateJob") -> ConnectivityEstimate:
    return estimate_design(job.memory, job.connectivity, job.profile)


def _run_estimate_chunk(
    jobs: "Sequence[EstimateJob]",
    collect: bool = False,
) -> "tuple[list[ConnectivityEstimate], ObsSnapshot | None]":
    fault_spec = current_settings().fault_inject
    baseline = _chunk_observation(collect)
    results = []
    for job in jobs:
        if fault_spec:
            _maybe_inject_fault(fault_spec)
        results.append(_run_pool_estimate(job))
    delta = obs.snapshot().subtract(baseline) if collect else None
    return results, delta


# -- the runtime ------------------------------------------------------------

#: Processes that already swept stale shm blocks (once per process).
_SWEPT_PIDS: set[int] = set()


def _startup_sweep() -> None:
    pid = os.getpid()
    if pid in _SWEPT_PIDS:
        return
    _SWEPT_PIDS.add(pid)
    try:
        shm_registry.sweep_stale()
    except Exception:  # pragma: no cover - sweep must never fail a run
        pass


class ExecutionRuntime:
    """A long-lived worker pool plus its shared trace exports.

    Construct one per exploration session (the CLI does this per
    command) or rely on :func:`default_runtime`. Thread it through
    ``simulate_many(..., runtime=...)`` / driver ``runtime=``
    parameters; every batch then reuses the same pool and the same
    shared trace blocks.

    Dispatch is fault tolerant: worker deaths and job timeouts rebuild
    the pool and re-dispatch only the unfinished jobs (see the module
    docstring); :attr:`stats` and :attr:`last_dispatch` expose the
    accounting.

    Args:
        workers: process count; ``None`` consults ``REPRO_WORKERS``
            and falls back to 1 (serial: the runtime stays inert — no
            pool, no exports).
        mp_context: optional :mod:`multiprocessing` start-method name
            (``"fork"``, ``"spawn"``, ``"forkserver"``) or context
            object; ``None`` uses the platform default.
        job_timeout: per-job seconds before a chunk counts as stuck;
            ``None`` consults ``REPRO_JOB_TIMEOUT`` (unset: no timeout).
        max_retries: pool rebuilds per batch before degrading to the
            serial path; ``None`` consults ``REPRO_MAX_RETRIES``
            (default :data:`DEFAULT_MAX_RETRIES`).
    """

    def __init__(
        self,
        workers: int | None = None,
        mp_context: str | multiprocessing.context.BaseContext | None = None,
        job_timeout: float | None = None,
        max_retries: int | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.job_timeout = resolve_job_timeout(job_timeout)
        self.max_retries = resolve_max_retries(max_retries)
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._exports: dict[str, SharedTraceExport] = {}
        self._closed = False
        self.stats = RuntimeStats()
        self.last_dispatch: DispatchStats | None = None
        _startup_sweep()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def healthy(self) -> bool:
        """Can this runtime still dispatch work?

        ``False`` once closed, or when the pool was broken *outside*
        the runtime's own dispatch (which self-heals). Used by
        :func:`default_runtime` to avoid handing out a dead runtime.
        """
        if self._closed:
            return False
        pool = self._pool
        return pool is None or not getattr(pool, "_broken", False)

    def _ensure_open(self) -> None:
        if self._closed:
            raise ExecutionError("execution runtime is closed")

    def _ensure_pool(self) -> ProcessPoolExecutor:
        self._ensure_open()
        if self._pool is not None and getattr(self._pool, "_broken", False):
            # Poisoned between batches (e.g. a worker OOM-killed while
            # idle, or external dispatch broke it): rebuild silently.
            self._discard_pool(kill=True)
            self.stats.pool_rebuilds += 1
            obs.incr("runtime.pool_rebuilds")
        if self._pool is None:
            context = self._mp_context
            if isinstance(context, str):
                context = multiprocessing.get_context(context)
            self._pool = ProcessPoolExecutor(
                max_workers=effective_pool_workers(self.workers),
                mp_context=context,
            )
        return self._pool

    def _discard_pool(self, kill: bool = False) -> None:
        """Tear the current pool down without touching the exports."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        process_map = getattr(pool, "_processes", None)
        processes = (
            list(process_map.values()) if isinstance(process_map, dict) else []
        )
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - shutdown must not raise
            pass
        if kill:
            # A stuck or half-dead pool may never drain: terminate the
            # workers outright so the rebuilt pool has the CPUs.
            for process in processes:
                try:
                    if process.is_alive():
                        process.terminate()
                except Exception:  # pragma: no cover - best-effort kill
                    pass

    def share_trace(self, trace: Trace) -> SharedTraceHandle:
        """The trace's shared handle, exported once per fingerprint."""
        self._ensure_open()
        fingerprint = trace.fingerprint()
        export = self._exports.get(fingerprint)
        if export is None:
            export = trace.export_shared()
            self._exports[fingerprint] = export
            obs.incr("runtime.shm_exports")
        return export.handle

    # -- fault-tolerant dispatch core ----------------------------------

    def _dispatch(
        self,
        worker_fn: Callable,
        items: Sequence,
        inline_fn: Callable,
    ) -> list:
        """Fault-tolerant dispatch, timed under the ``exec.dispatch`` span."""
        with obs.span("exec.dispatch"):
            return self._dispatch_chunks(worker_fn, items, inline_fn)

    def _dispatch_chunks(
        self,
        worker_fn: Callable,
        items: Sequence,
        inline_fn: Callable,
    ) -> list:
        """Run ``worker_fn`` over chunks of ``items`` with recovery.

        Chunk-level bookkeeping keeps results keyed by item index, so a
        recovered dispatch returns exactly what an undisturbed one
        would. Faults (``BrokenProcessPool``, chunk timeouts) rebuild
        the pool and re-dispatch the unfinished indices; once
        ``max_retries`` rebuilds are spent, the remainder runs through
        ``inline_fn`` serially in-process. Job-raised exceptions are
        not faults — they propagate to the caller unchanged.
        """
        stats = DispatchStats(jobs=len(items))
        results: list = [None] * len(items)
        finished = [False] * len(items)
        pending = list(range(len(items)))
        collect = obs.enabled()

        def harvest(payload: tuple) -> list:
            # Chunk runners return (values, obs delta); fold the
            # worker-side spans/counters into the parent registry so
            # the export sees one merged view.
            values, delta = payload
            obs.merge_snapshot(delta)
            return values

        while pending:
            if stats.degraded:
                for index in pending:
                    results[index] = inline_fn(items[index])
                    finished[index] = True
                break
            size = dispatch_chunksize(len(pending), self.workers)
            chunks = [
                pending[i : i + size] for i in range(0, len(pending), size)
            ]
            futures: list[tuple] = []
            fault = False
            try:
                pool = self._ensure_pool()
                for chunk in chunks:
                    futures.append(
                        (
                            pool.submit(
                                worker_fn,
                                [items[i] for i in chunk],
                                collect,
                            ),
                            chunk,
                        )
                    )
            except BrokenProcessPool:
                fault = True
            if not fault:
                for future, chunk in futures:
                    budget = (
                        None
                        if self.job_timeout is None
                        else self.job_timeout * len(chunk)
                    )
                    try:
                        values = harvest(future.result(timeout=budget))
                    except BrokenProcessPool:
                        fault = True
                        break
                    except FuturesTimeoutError:
                        stats.timeouts += 1
                        fault = True
                        break
                    for index, value in zip(chunk, values):
                        results[index] = value
                        finished[index] = True
            if fault:
                # Keep every chunk that did finish before the fault.
                for future, chunk in futures:
                    if finished[chunk[0]]:
                        continue
                    if (
                        future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        values = harvest(future.result())
                        for index, value in zip(chunk, values):
                            results[index] = value
                            finished[index] = True
                self._discard_pool(kill=True)
                stats.pool_rebuilds += 1
                if stats.pool_rebuilds > self.max_retries:
                    stats.degraded = True
                else:
                    stats.retries += 1
            pending = [i for i in pending if not finished[i]]
        self.last_dispatch = stats
        self.stats.absorb(stats)
        if collect:
            # retries / pool_rebuilds / degraded travel on the engine
            # report and are counted there (covering the serial and
            # legacy-pool paths too); only dispatch-local facts the
            # report does not carry are recorded here.
            obs.incr("runtime.dispatches")
            obs.incr("runtime.jobs", stats.jobs)
            obs.incr("runtime.timeouts", stats.timeouts)
        return results

    # -- batch entry points --------------------------------------------

    def map_simulations(
        self, trace: Trace, jobs: "Sequence[SimulationJob]"
    ) -> list[SimulationResult]:
        """Run every job over ``trace``; results ordered like ``jobs``."""
        self._ensure_open()
        if not jobs:
            self.last_dispatch = DispatchStats()
            return []
        if self.workers <= 1:
            self.last_dispatch = DispatchStats(jobs=len(jobs))
            return [
                simulate(
                    trace,
                    job.memory,
                    job.connectivity,
                    sampling=job.sampling,
                    posted_writes=job.posted_writes,
                )
                for job in jobs
            ]
        handle = self.share_trace(trace)

        def inline(item: "tuple[SharedTraceHandle, SimulationJob]"):
            _, job = item
            return simulate(
                trace,
                job.memory,
                job.connectivity,
                sampling=job.sampling,
                posted_writes=job.posted_writes,
            )

        return self._dispatch(
            _run_simulation_chunk,
            [(handle, job) for job in jobs],
            inline,
        )

    def map_simulation_groups(
        self,
        trace: Trace,
        groups: "Sequence[Sequence[SimulationJob]]",
    ) -> "list[tuple[list[SimulationResult], int]]":
        """Run every same-signature candidate group over ``trace``.

        Each group is one :func:`repro.sim.batch.evaluate_group` unit of
        work — the granularity at which trace plans and module columns
        are shared — and is never split across workers. Returns one
        ``(results, delta_candidates)`` pair per group, ordered like
        ``groups``, inner result lists ordered like each group's jobs.
        """
        self._ensure_open()
        if not groups:
            self.last_dispatch = DispatchStats()
            return []
        total = sum(len(group) for group in groups)
        if self.workers <= 1:
            self.last_dispatch = DispatchStats(jobs=total)
            plan = batch.trace_plan(trace)
            return [
                batch.evaluate_group(trace, group, plan)
                for group in groups
            ]
        handle = self.share_trace(trace)

        def inline(
            item: "tuple[SharedTraceHandle, tuple[SimulationJob, ...]]",
        ) -> "tuple[list[SimulationResult], int]":
            _, jobs = item
            return batch.evaluate_group(trace, jobs)

        return self._dispatch(
            _run_group_chunk,
            [(handle, tuple(group)) for group in groups],
            inline,
        )

    def map_estimates(
        self, jobs: "Sequence[EstimateJob]"
    ) -> list[ConnectivityEstimate]:
        """Run every Phase-I estimate; results ordered like ``jobs``."""
        self._ensure_open()
        if not jobs:
            self.last_dispatch = DispatchStats()
            return []
        if self.workers <= 1:
            self.last_dispatch = DispatchStats(jobs=len(jobs))
            return [
                estimate_design(job.memory, job.connectivity, job.profile)
                for job in jobs
            ]
        return self._dispatch(_run_estimate_chunk, list(jobs), _run_pool_estimate)

    def close(self) -> None:
        """Shut the pool down and unlink the shared exports. Idempotent."""
        if self._closed:
            return
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=True)
            except Exception:  # pragma: no cover - broken-pool shutdown
                pass
        exports, self._exports = self._exports, {}
        for export in exports.values():
            export.close()

    def __enter__(self) -> "ExecutionRuntime":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "pooled" if self._pool is not None else "idle"
        )
        return f"<ExecutionRuntime workers={self.workers} ({state})>"


# -- the process-wide default ----------------------------------------------

_DEFAULT_RUNTIME: ExecutionRuntime | None = None


def default_runtime(workers: int | None = None) -> ExecutionRuntime:
    """The process-wide runtime, sized for at least ``workers``.

    Created on first use; reused by every subsequent call. Asking for
    more workers than the current default has closes it and builds a
    bigger one (a pool cannot grow in place); asking for fewer reuses
    the existing, larger pool. A default whose pool died outside the
    runtime's own (self-healing) dispatch — :attr:`ExecutionRuntime.healthy`
    ``False`` — is closed and replaced, so explorers, strategies,
    sweeps, and the CLI never receive a dead runtime.
    """
    global _DEFAULT_RUNTIME
    workers = resolve_workers(workers)
    runtime = _DEFAULT_RUNTIME
    if runtime is not None and runtime.healthy and runtime.workers >= workers:
        return runtime
    if runtime is not None and not runtime.closed:
        runtime.close()
    runtime = ExecutionRuntime(workers=workers)
    _DEFAULT_RUNTIME = runtime
    return runtime


def set_default_runtime(
    runtime: ExecutionRuntime | None,
) -> ExecutionRuntime | None:
    """Install ``runtime`` as the process-wide default.

    Returns the previous default (not closed — the caller decides its
    fate). Pass ``None`` to clear.
    """
    global _DEFAULT_RUNTIME
    previous, _DEFAULT_RUNTIME = _DEFAULT_RUNTIME, runtime
    return previous


@atexit.register
def _close_default_runtime() -> None:  # pragma: no cover - exit hook
    if _DEFAULT_RUNTIME is not None:
        _DEFAULT_RUNTIME.close()
