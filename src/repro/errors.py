"""Exception hierarchy for the ConEx reproduction library.

All library-raised errors derive from :class:`ReproError` so downstream
users can catch a single base class. Subclasses mark the subsystem the
failure originated in.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A component, library, or architecture was configured inconsistently.

    Examples: a cache whose line size is not a power of two, a bus with
    zero width, a memory architecture that maps no data structures.
    """


class LibraryError(ReproError):
    """A component lookup failed or a library was built incorrectly."""


class UnknownPresetError(LibraryError, KeyError):
    """A library lookup named a preset that is not registered.

    Also a :class:`KeyError` so callers treating libraries as mappings
    can use the dict idiom; the message names the missing preset and
    lists the registered alternatives.
    """

    def __str__(self) -> str:
        # KeyError.__str__ reprs args[0] (it expects a bare key); this
        # error carries a full sentence, so show it verbatim.
        return self.args[0] if self.args else ""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class ExplorationError(ReproError):
    """An exploration algorithm received unusable inputs.

    For instance, ConEx invoked with an empty set of memory
    architectures, or a pareto query over mismatched objective axes.
    """


class ExecutionError(ExplorationError):
    """The execution runtime failed or was misconfigured.

    Raised eagerly for dispatch through a closed runtime and for
    unusable fault-tolerance knobs (``REPRO_JOB_TIMEOUT``,
    ``REPRO_MAX_RETRIES``). Subclasses :class:`ExplorationError` so
    pre-existing ``except ExplorationError`` handlers keep working.
    """


class ServiceError(ReproError):
    """An exploration-service request failed.

    Carries an HTTP-ish status code so the daemon can map validation
    failures, unknown jobs, full queues, and drain rejections to
    distinct wire statuses while the CLI client re-raises one type.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class TraceError(ReproError):
    """A trace or profile is malformed (negative sizes, unknown kinds...)."""
