"""Streaming statistics accumulator.

The simulator accumulates per-access latency and energy over traces that
can be millions of events long; :class:`RunningStats` keeps count, mean,
and variance in O(1) memory using Welford's algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class RunningStats:
    """Single-pass mean/variance/min/max accumulator."""

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: list[float]) -> None:
        """Fold a batch of observations."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Population variance (0.0 until two observations exist)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        """Sum of all observations (mean * count)."""
        return self.mean * self.count

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equal to folding both inputs.

        Used to combine per-sample-window statistics from time-sampled
        simulation into a whole-run estimate.
        """
        if other.count == 0:
            return RunningStats(
                self.count, self.mean, self._m2, self.minimum, self.maximum
            )
        if self.count == 0:
            return RunningStats(
                other.count, other.mean, other._m2, other.minimum, other.maximum
            )
        count = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / count
        m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / count
        return RunningStats(
            count,
            mean,
            m2,
            min(self.minimum, other.minimum),
            max(self.maximum, other.maximum),
        )
