"""Plain-text table rendering for benchmark and report output.

The benchmark harness prints the paper's Tables 1 and 2 as aligned text;
this formatter keeps that presentation in one place.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Every cell is stringified with ``str``; numeric alignment is left to
    the caller (pre-format floats before passing them in).
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)
