"""Shared utilities: pareto mathematics, statistics, formatting, RNG.

These helpers are deliberately dependency-light; everything operates on
plain sequences of floats so the exploration layers can stay decoupled
from the simulator's richer record types.
"""

from repro.util.pareto import (
    ParetoCoverage,
    average_axis_distance,
    dominates,
    is_pareto_point,
    pareto_coverage,
    pareto_front,
    pareto_indices,
)
from repro.util.rng import make_rng
from repro.util.selection import knee_point, weighted_best
from repro.util.stats import RunningStats
from repro.util.tables import format_table

__all__ = [
    "ParetoCoverage",
    "RunningStats",
    "average_axis_distance",
    "dominates",
    "format_table",
    "is_pareto_point",
    "knee_point",
    "make_rng",
    "pareto_coverage",
    "pareto_front",
    "pareto_indices",
    "weighted_best",
]
