"""Design-selection helpers on top of pareto fronts.

The paper leaves the final pick to the designer ("allowing the designer
to further refine the choice, according to the goals of the system").
These utilities support that step programmatically: a knee-point
detector for "best bang per gate" picks, and a normalized weighted
score for explicit priorities.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, TypeVar

from repro.errors import ExplorationError

T = TypeVar("T")


def knee_point(
    items: Sequence[T],
    key: Callable[[T], tuple[float, float]],
) -> T:
    """The knee of a 2-D trade-off curve.

    Normalizes both axes to [0, 1] over the input, then returns the
    item farthest below the chord from the first to the last point of
    the cost-ordered curve — the classic maximum-deviation knee. With
    fewer than three points, returns the first item (no interior
    exists).
    """
    if not items:
        raise ExplorationError("knee_point needs at least one item")
    ordered = sorted(items, key=lambda it: key(it)[0])
    if len(ordered) < 3:
        return ordered[0]
    points = [key(it) for it in ordered]
    x_values = [p[0] for p in points]
    y_values = [p[1] for p in points]
    x_span = max(x_values) - min(x_values) or 1.0
    y_span = max(y_values) - min(y_values) or 1.0
    normalized = [
        ((x - min(x_values)) / x_span, (y - min(y_values)) / y_span)
        for x, y in points
    ]
    (x0, y0), (x1, y1) = normalized[0], normalized[-1]
    chord = math.hypot(x1 - x0, y1 - y0) or 1.0

    def deviation(point: tuple[float, float]) -> float:
        # Signed distance from the chord; knees bow below it.
        x, y = point
        return ((x1 - x0) * (y0 - y) - (x0 - x) * (y1 - y0)) / chord

    best_index = max(range(len(normalized)), key=lambda i: deviation(normalized[i]))
    return ordered[best_index]


def weighted_best(
    items: Sequence[T],
    key: Callable[[T], Sequence[float]],
    weights: Sequence[float],
) -> T:
    """The item minimizing a normalized weighted objective sum.

    Each axis is min-max normalized over the input before weighting, so
    weights express relative priorities rather than unit conversions.
    """
    if not items:
        raise ExplorationError("weighted_best needs at least one item")
    if any(w < 0 for w in weights) or not any(weights):
        raise ExplorationError(f"weights must be non-negative, not all zero: {weights}")
    vectors = [tuple(key(it)) for it in items]
    dims = len(vectors[0])
    if len(weights) != dims:
        raise ExplorationError(
            f"{len(weights)} weights for {dims}-dimensional objectives"
        )
    lows = [min(v[d] for v in vectors) for d in range(dims)]
    spans = [
        (max(v[d] for v in vectors) - lows[d]) or 1.0 for d in range(dims)
    ]

    def score(vector: Sequence[float]) -> float:
        return sum(
            w * (vector[d] - lows[d]) / spans[d]
            for d, w in enumerate(weights)
        )

    def weighted_axes(vector: Sequence[float]) -> tuple[float, ...]:
        # Score ties between distinct vectors can only come from
        # floating-point degeneracy (e.g. subnormal values underflowing
        # during normalization); break them on the weighted axes
        # themselves, falling back to input order for true duplicates.
        return tuple(vector[d] for d, w in enumerate(weights) if w)

    best_index = min(
        range(len(items)),
        key=lambda i: (score(vectors[i]), weighted_axes(vectors[i])),
    )
    return items[best_index]
