"""Pareto-front mathematics used throughout the exploration layers.

The paper evaluates designs in two- and three-dimensional objective
spaces (cost/performance, performance/power, cost/power, and the full
cost/performance/power space). Throughout this module every objective is
*minimized*: cost in gates, average memory latency in cycles, and energy
per access in nJ all improve downward, matching the paper's axes.

Besides front extraction, this module implements the two quality metrics
of the paper's Table 2:

* **coverage** — the percentage of reference pareto points that the
  exploration actually found, and
* **average axis distance** — for each missed pareto point, the
  per-axis percentile deviation to the closest point the exploration did
  produce ("there are no significant gaps in the coverage of the pareto
  curve" when this is small).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ExplorationError

T = TypeVar("T")

Vector = Sequence[float]


def dominates(a: Vector, b: Vector) -> bool:
    """Return True if point ``a`` pareto-dominates point ``b``.

    ``a`` dominates ``b`` when it is no worse on every axis and strictly
    better on at least one (all axes minimized). Matches the paper's
    definition: "a design is on the pareto curve if there is no other
    design which is better in both cost and performance".
    """
    if len(a) != len(b):
        raise ExplorationError(
            f"dimension mismatch in dominance test: {len(a)} vs {len(b)}"
        )
    no_worse = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return no_worse and strictly_better


def pareto_indices(points: Sequence[Vector]) -> list[int]:
    """Indices of the non-dominated points of ``points``, in input order.

    Duplicate coordinates are all retained (none of two equal points
    dominates the other), mirroring the paper's plots where distinct
    architectures may share a cost/latency pair.
    """
    indices: list[int] = []
    for i, p in enumerate(points):
        dominated = any(
            dominates(q, p) for j, q in enumerate(points) if j != i
        )
        if not dominated:
            indices.append(i)
    return indices


def pareto_front(
    items: Iterable[T], key: Callable[[T], Vector]
) -> list[T]:
    """Return the pareto-optimal subset of ``items`` under ``key``.

    ``key`` maps an item to its objective vector (all axes minimized).
    The result preserves input order, so deterministic exploration runs
    yield deterministic fronts.
    """
    materialized = list(items)
    vectors = [tuple(key(item)) for item in materialized]
    return [materialized[i] for i in pareto_indices(vectors)]


def is_pareto_point(point: Vector, points: Sequence[Vector]) -> bool:
    """True when no point of ``points`` dominates ``point``."""
    return not any(dominates(q, point) for q in points)


@dataclass(frozen=True)
class ParetoCoverage:
    """Coverage of a reference pareto front by an exploration result.

    Attributes mirror the rows of the paper's Table 2:

    * ``coverage`` — fraction in [0, 1] of reference pareto points that
      the exploration found (within ``rel_tol`` on every axis).
    * ``axis_distances`` — per-axis average percentile deviation between
      each *missed* pareto point and the closest explored point; empty
      axes deviation is 0.0 when nothing was missed.
    * ``found`` / ``missed`` — the partitioned reference points.
    """

    coverage: float
    axis_distances: tuple[float, ...]
    found: tuple[tuple[float, ...], ...]
    missed: tuple[tuple[float, ...], ...]

    @property
    def coverage_percent(self) -> float:
        """Coverage as a percentage, as printed in Table 2."""
        return 100.0 * self.coverage


def _matches(a: Vector, b: Vector, rel_tol: float) -> bool:
    return all(
        math.isclose(x, y, rel_tol=rel_tol, abs_tol=1e-12)
        for x, y in zip(a, b)
    )


def _closest(point: Vector, candidates: Sequence[Vector]) -> Vector:
    """Candidate minimizing the summed relative deviation to ``point``."""

    def rel_dev(c: Vector) -> float:
        return sum(
            abs(x - y) / abs(y) if y else abs(x - y)
            for x, y in zip(c, point)
        )

    return min(candidates, key=rel_dev)


def average_axis_distance(
    missed: Sequence[Vector], explored: Sequence[Vector]
) -> tuple[float, ...]:
    """Average per-axis percentile deviation of missed pareto points.

    For every missed reference point, finds the closest explored point
    (by summed relative deviation) and accumulates ``|x - ref| / ref``
    per axis; returns per-axis averages in percent. This is the paper's
    "average percentile deviation in terms of cost, performance and
    energy consumption, between the pareto points which have not been
    covered, and the closest exploration point which approximates them".
    """
    if not missed:
        return ()
    if not explored:
        raise ExplorationError("cannot measure distance to an empty exploration")
    dims = len(missed[0])
    totals = [0.0] * dims
    for ref in missed:
        near = _closest(ref, explored)
        for axis in range(dims):
            denom = abs(ref[axis]) or 1.0
            totals[axis] += 100.0 * abs(near[axis] - ref[axis]) / denom
    return tuple(total / len(missed) for total in totals)


def pareto_coverage(
    reference: Sequence[Vector],
    explored: Sequence[Vector],
    rel_tol: float = 1e-9,
) -> ParetoCoverage:
    """Measure how well ``explored`` covers the ``reference`` pareto front.

    ``reference`` should already be a pareto front (typically produced by
    full simulation of the design space); ``explored`` is whatever the
    heuristic produced. A reference point counts as *found* when some
    explored point matches it within ``rel_tol`` on every axis.
    """
    if not reference:
        raise ExplorationError("reference pareto front is empty")
    found: list[tuple[float, ...]] = []
    missed: list[tuple[float, ...]] = []
    for ref in reference:
        ref_t = tuple(ref)
        if any(_matches(ref_t, tuple(e), rel_tol) for e in explored):
            found.append(ref_t)
        else:
            missed.append(ref_t)
    dims = len(reference[0])
    if missed:
        distances = average_axis_distance(missed, [tuple(e) for e in explored])
    else:
        distances = tuple(0.0 for _ in range(dims))
    return ParetoCoverage(
        coverage=len(found) / len(reference),
        axis_distances=distances,
        found=tuple(found),
        missed=tuple(missed),
    )
