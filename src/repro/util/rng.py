"""Deterministic random-number helpers.

Every stochastic element of the library (synthetic workload inputs,
randomized ablations) draws from a :class:`numpy.random.Generator`
seeded through :func:`make_rng`, so that traces, explorations, and
benchmark tables are reproducible run-to-run.
"""

from __future__ import annotations

import zlib

import numpy as np


def make_rng(seed: int | str | None = 0) -> np.random.Generator:
    """Create a deterministic generator from an int or string seed.

    String seeds are hashed with CRC32 so call sites can use readable
    labels (``make_rng("compress-input")``) without colliding on small
    integers.
    """
    if seed is None:
        seed = 0
    if isinstance(seed, str):
        seed = zlib.crc32(seed.encode("utf-8"))
    return np.random.default_rng(int(seed))
