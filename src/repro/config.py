"""Typed runtime configuration: one object for every ``REPRO_*`` knob.

Four PRs of engine work grew a dozen ``REPRO_*`` environment variables,
each parsed ad hoc at its point of use (``os.environ.get`` sprinkled
through :mod:`repro.exec`, :mod:`repro.sim`, :mod:`repro.conex`). This
module replaces the scatter with one documented, typed snapshot:

* :class:`Settings` — a frozen dataclass holding every knob, built
  from the environment with :meth:`Settings.from_env` (each field
  validated with the same error types the old per-site parsers
  raised) or constructed directly in tests.
* :func:`current_settings` — what the library consults. When no
  explicit settings are installed it re-reads the environment on every
  call, so ``monkeypatch.setenv`` and shell exports keep working
  exactly as before; environment variables remain the override layer
  for end users.
* :func:`set_settings` / :func:`use_settings` — install an explicit
  :class:`Settings` (tests, embedders). An installed object wins over
  the environment until removed.

The consumers (``repro.exec.runtime``, ``repro.exec.cache``,
``repro.sim.kernels``, ``repro.conex.estimator``, ``repro.trace.shm``,
``repro.obs``) all route through :func:`current_settings`; no library
code reads a ``REPRO_*`` variable directly anymore.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, fields
from typing import Iterator, Mapping

from repro.errors import ExecutionError, ExplorationError

#: Worker-process count for simulation/estimation batches.
WORKERS_ENV = "REPRO_WORKERS"

#: ``0`` disables the persistent execution runtime (legacy per-batch pools).
RUNTIME_ENV = "REPRO_PERSISTENT_RUNTIME"

#: Per-job timeout in seconds for fault-tolerant dispatch.
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"

#: Pool rebuilds allowed per batch before degrading to serial.
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"

#: Directory enabling the on-disk layer of the default simulation cache.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Execution backend for simulation/estimate batches: ``serial``,
#: ``pool``, or ``remote`` (unset keeps the engine's built-in dispatch).
BACKEND_ENV = "REPRO_BACKEND"

#: Comma-separated ``host:port`` list of remote ``repro worker``
#: processes used by the ``remote`` backend.
WORKER_ADDRS_ENV = "REPRO_WORKER_ADDRS"

#: ``host:port`` of a networked simulation-cache server (any
#: ``repro worker`` serves the cache protocol).
CACHE_URL_ENV = "REPRO_CACHE_URL"

#: Size cap in megabytes for the on-disk cache layer (LRU by mtime).
#: Socket workers also honour it as the byte cap of their in-memory
#: blob/trace stores.
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"

#: Largest frame (megabytes) a socket peer may declare; oversized
#: frames are rejected as a dead-peer fault instead of allocated.
MAX_FRAME_MB_ENV = "REPRO_MAX_FRAME_MB"

#: Interface the exploration service daemon binds.
SERVICE_HOST_ENV = "REPRO_SERVICE_HOST"

#: TCP port of the exploration service daemon (0 lets the OS pick).
SERVICE_PORT_ENV = "REPRO_SERVICE_PORT"

#: Exploration jobs the service runs concurrently.
SERVICE_JOBS_ENV = "REPRO_SERVICE_JOBS"

#: Queued-job bound of the service; submissions beyond it are rejected.
SERVICE_QUEUE_MAX_ENV = "REPRO_SERVICE_QUEUE_MAX"

#: Seconds the service's graceful drain waits for running jobs.
SERVICE_DRAIN_TIMEOUT_ENV = "REPRO_SERVICE_DRAIN_TIMEOUT"

#: Base URL the service client commands talk to.
SERVICE_URL_ENV = "REPRO_SERVICE_URL"

#: ``0`` disables capping pool sizes at ``os.cpu_count()``.
WORKERS_CAP_ENV = "REPRO_WORKERS_CAP"

#: Chaos hook for fault-injection tests (``once:<path>`` / ``hang:<path>``
#: / ``always``); consulted only by pool workers.
FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"

#: Truthy forces the scalar reference simulation loop everywhere.
REFERENCE_SIM_ENV = "REPRO_REFERENCE_SIM"

#: Truthy reverts Phase-I estimation to the per-candidate scalar path.
REFERENCE_ESTIMATOR_ENV = "REPRO_REFERENCE_ESTIMATOR"

#: Truthy shrinks benchmark workloads to CI smoke size.
BENCH_SMOKE_ENV = "REPRO_BENCH_SMOKE"

#: Truthy enables the observability layer (:mod:`repro.obs`) at import.
OBS_ENV = "REPRO_OBS"

#: Override directory for shared-memory sidecar manifests.
SHM_MANIFEST_DIR_ENV = "REPRO_SHM_MANIFEST_DIR"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def parse_bool(value: str | None) -> bool:
    """Shared truthy parse for boolean ``REPRO_*`` variables."""
    return (value or "").strip().lower() in _TRUTHY


def _get(env: Mapping[str, str], name: str) -> str:
    return (env.get(name) or "").strip()


@dataclass(frozen=True)
class Settings:
    """One validated snapshot of every ``REPRO_*`` knob.

    Attributes mirror the environment variables one-to-one:

    ==========================  =============================  ==========
    attribute                   environment variable           default
    ==========================  =============================  ==========
    ``workers``                 ``REPRO_WORKERS``              ``1``
    ``persistent_runtime``      ``REPRO_PERSISTENT_RUNTIME``   ``True``
    ``job_timeout``             ``REPRO_JOB_TIMEOUT``          ``None``
    ``max_retries``             ``REPRO_MAX_RETRIES``          ``2``
    ``cache_dir``               ``REPRO_CACHE_DIR``            ``None``
    ``backend``                 ``REPRO_BACKEND``              ``""``
    ``worker_addrs``            ``REPRO_WORKER_ADDRS``         ``()``
    ``cache_url``               ``REPRO_CACHE_URL``            ``None``
    ``cache_max_mb``            ``REPRO_CACHE_MAX_MB``         ``None``
    ``workers_cap``             ``REPRO_WORKERS_CAP``          ``True``
    ``max_frame_mb``            ``REPRO_MAX_FRAME_MB``         ``256.0``
    ``service_host``            ``REPRO_SERVICE_HOST``         ``"127.0.0.1"``
    ``service_port``            ``REPRO_SERVICE_PORT``         ``8753``
    ``service_jobs``            ``REPRO_SERVICE_JOBS``         ``1``
    ``service_queue_max``       ``REPRO_SERVICE_QUEUE_MAX``    ``64``
    ``service_drain_timeout``   ``REPRO_SERVICE_DRAIN_TIMEOUT``  ``30.0``
    ``service_url``             ``REPRO_SERVICE_URL``          ``None``
    ``fault_inject``            ``REPRO_FAULT_INJECT``         ``""``
    ``reference_sim``           ``REPRO_REFERENCE_SIM``        ``False``
    ``reference_estimator``     ``REPRO_REFERENCE_ESTIMATOR``  ``False``
    ``bench_smoke``             ``REPRO_BENCH_SMOKE``          ``False``
    ``obs``                     ``REPRO_OBS``                  ``False``
    ``shm_manifest_dir``        ``REPRO_SHM_MANIFEST_DIR``     ``None``
    ==========================  =============================  ==========

    Validation happens at construction with the same exception types
    the historical per-site parsers used (:class:`ExplorationError`
    for the worker count, :class:`ExecutionError` for the
    fault-tolerance knobs), so error-handling callers see no change.
    """

    workers: int = 1
    persistent_runtime: bool = True
    job_timeout: float | None = None
    max_retries: int = 2
    cache_dir: str | None = None
    backend: str = ""
    worker_addrs: tuple[str, ...] = ()
    cache_url: str | None = None
    cache_max_mb: float | None = None
    workers_cap: bool = True
    max_frame_mb: float = 256.0
    service_host: str = "127.0.0.1"
    service_port: int = 8753
    service_jobs: int = 1
    service_queue_max: int = 64
    service_drain_timeout: float = 30.0
    service_url: str | None = None
    fault_inject: str = ""
    reference_sim: bool = False
    reference_estimator: bool = False
    bench_smoke: bool = False
    obs: bool = False
    shm_manifest_dir: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ExplorationError(f"workers must be >= 1, got {self.workers}")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ExecutionError(
                f"job timeout must be positive, got {self.job_timeout}"
            )
        if self.max_retries < 0:
            raise ExecutionError(
                f"max retries must be >= 0, got {self.max_retries}"
            )
        if self.backend not in ("", "serial", "pool", "remote"):
            raise ExecutionError(
                f"unknown execution backend {self.backend!r} "
                f"(expected serial, pool, or remote)"
            )
        if self.cache_max_mb is not None and self.cache_max_mb <= 0:
            raise ExecutionError(
                f"cache size cap must be positive, got {self.cache_max_mb}"
            )
        if self.max_frame_mb <= 0:
            raise ExecutionError(
                f"max frame size must be positive, got {self.max_frame_mb}"
            )
        if not 0 <= self.service_port <= 65535:
            raise ExecutionError(
                f"service port must be 0..65535, got {self.service_port}"
            )
        if self.service_jobs < 1:
            raise ExecutionError(
                f"service jobs must be >= 1, got {self.service_jobs}"
            )
        if self.service_queue_max < 1:
            raise ExecutionError(
                f"service queue bound must be >= 1, "
                f"got {self.service_queue_max}"
            )
        if self.service_drain_timeout <= 0:
            raise ExecutionError(
                f"service drain timeout must be positive, "
                f"got {self.service_drain_timeout}"
            )

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "Settings":
        """Snapshot ``env`` (default: ``os.environ``) into a Settings."""
        env = os.environ if env is None else env

        workers = 1
        raw = _get(env, WORKERS_ENV)
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ExplorationError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from None

        job_timeout: float | None = None
        raw = _get(env, JOB_TIMEOUT_ENV)
        if raw:
            try:
                job_timeout = float(raw)
            except ValueError:
                raise ExecutionError(
                    f"{JOB_TIMEOUT_ENV} must be a number of seconds, "
                    f"got {raw!r}"
                ) from None

        max_retries = 2
        raw = _get(env, MAX_RETRIES_ENV)
        if raw:
            try:
                max_retries = int(raw)
            except ValueError:
                raise ExecutionError(
                    f"{MAX_RETRIES_ENV} must be an integer, got {raw!r}"
                ) from None

        cache_max_mb: float | None = None
        raw = _get(env, CACHE_MAX_MB_ENV)
        if raw:
            try:
                cache_max_mb = float(raw)
            except ValueError:
                raise ExecutionError(
                    f"{CACHE_MAX_MB_ENV} must be a number of megabytes, "
                    f"got {raw!r}"
                ) from None

        worker_addrs = tuple(
            part.strip()
            for part in _get(env, WORKER_ADDRS_ENV).split(",")
            if part.strip()
        )

        def _int_knob(name: str, default: int) -> int:
            raw = _get(env, name)
            if not raw:
                return default
            try:
                return int(raw)
            except ValueError:
                raise ExecutionError(
                    f"{name} must be an integer, got {raw!r}"
                ) from None

        def _float_knob(name: str, default: float) -> float:
            raw = _get(env, name)
            if not raw:
                return default
            try:
                return float(raw)
            except ValueError:
                raise ExecutionError(
                    f"{name} must be a number, got {raw!r}"
                ) from None

        return cls(
            workers=workers,
            persistent_runtime=_get(env, RUNTIME_ENV) != "0",
            job_timeout=job_timeout,
            max_retries=max_retries,
            cache_dir=_get(env, CACHE_DIR_ENV) or None,
            backend=_get(env, BACKEND_ENV),
            worker_addrs=worker_addrs,
            cache_url=_get(env, CACHE_URL_ENV) or None,
            cache_max_mb=cache_max_mb,
            workers_cap=_get(env, WORKERS_CAP_ENV) != "0",
            max_frame_mb=_float_knob(MAX_FRAME_MB_ENV, 256.0),
            service_host=_get(env, SERVICE_HOST_ENV) or "127.0.0.1",
            service_port=_int_knob(SERVICE_PORT_ENV, 8753),
            service_jobs=_int_knob(SERVICE_JOBS_ENV, 1),
            service_queue_max=_int_knob(SERVICE_QUEUE_MAX_ENV, 64),
            service_drain_timeout=_float_knob(SERVICE_DRAIN_TIMEOUT_ENV, 30.0),
            service_url=_get(env, SERVICE_URL_ENV) or None,
            fault_inject=_get(env, FAULT_INJECT_ENV),
            reference_sim=parse_bool(env.get(REFERENCE_SIM_ENV)),
            reference_estimator=parse_bool(env.get(REFERENCE_ESTIMATOR_ENV)),
            bench_smoke=parse_bool(env.get(BENCH_SMOKE_ENV)),
            obs=parse_bool(env.get(OBS_ENV)),
            shm_manifest_dir=_get(env, SHM_MANIFEST_DIR_ENV) or None,
        )

    def as_env(self) -> dict[str, str]:
        """The environment-variable form of this snapshot.

        ``Settings.from_env(settings.as_env())`` round-trips to an
        equal object; ``None``-valued knobs are omitted (unset).
        Useful for propagating an explicit configuration to a
        subprocess.
        """
        env: dict[str, str] = {
            WORKERS_ENV: str(self.workers),
            RUNTIME_ENV: "1" if self.persistent_runtime else "0",
            MAX_RETRIES_ENV: str(self.max_retries),
            WORKERS_CAP_ENV: "1" if self.workers_cap else "0",
            MAX_FRAME_MB_ENV: repr(self.max_frame_mb),
            SERVICE_HOST_ENV: self.service_host,
            SERVICE_PORT_ENV: str(self.service_port),
            SERVICE_JOBS_ENV: str(self.service_jobs),
            SERVICE_QUEUE_MAX_ENV: str(self.service_queue_max),
            SERVICE_DRAIN_TIMEOUT_ENV: repr(self.service_drain_timeout),
            REFERENCE_SIM_ENV: "1" if self.reference_sim else "0",
            REFERENCE_ESTIMATOR_ENV: "1" if self.reference_estimator else "0",
            BENCH_SMOKE_ENV: "1" if self.bench_smoke else "0",
            OBS_ENV: "1" if self.obs else "0",
        }
        if self.job_timeout is not None:
            env[JOB_TIMEOUT_ENV] = repr(self.job_timeout)
        if self.cache_dir is not None:
            env[CACHE_DIR_ENV] = self.cache_dir
        if self.backend:
            env[BACKEND_ENV] = self.backend
        if self.worker_addrs:
            env[WORKER_ADDRS_ENV] = ",".join(self.worker_addrs)
        if self.cache_url is not None:
            env[CACHE_URL_ENV] = self.cache_url
        if self.cache_max_mb is not None:
            env[CACHE_MAX_MB_ENV] = repr(self.cache_max_mb)
        if self.service_url is not None:
            env[SERVICE_URL_ENV] = self.service_url
        if self.fault_inject:
            env[FAULT_INJECT_ENV] = self.fault_inject
        if self.shm_manifest_dir is not None:
            env[SHM_MANIFEST_DIR_ENV] = self.shm_manifest_dir
        return env

    def as_dict(self) -> dict:
        """Plain-dict form (for the observability JSON export)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


_INSTALLED: Settings | None = None


def current_settings() -> Settings:
    """The settings the library consults.

    The installed override when :func:`set_settings` was called with a
    non-``None`` object; otherwise a fresh snapshot of the process
    environment (so env-var changes take effect immediately, as they
    did before :class:`Settings` existed).
    """
    if _INSTALLED is not None:
        return _INSTALLED
    return Settings.from_env()


def set_settings(settings: Settings | None) -> Settings | None:
    """Install ``settings`` as the process-wide override.

    Returns the previously installed override (``None`` when the
    environment layer was active). Pass ``None`` to go back to reading
    the environment.
    """
    global _INSTALLED
    previous, _INSTALLED = _INSTALLED, settings
    return previous


@contextlib.contextmanager
def use_settings(settings: Settings) -> Iterator[Settings]:
    """Context manager installing ``settings`` for the block (tests)."""
    previous = set_settings(settings)
    try:
        yield settings
    finally:
        set_settings(previous)
