"""Job records and the thread-safe job store.

A :class:`Job` is the unit the daemon tracks end to end: a validated
:class:`~repro.service.schemas.JobSpec` plus scheduling state, a
monotonically numbered progress-event log (what the poll and long-poll
endpoints read), the result payload, and a cooperative cancel flag the
runner checks between exploration phases.

The :class:`JobStore` holds every job the daemon has seen (bounded —
finished jobs beyond a retention cap are forgotten oldest-first) and
owns the condition variable long-pollers block on: appending an event
wakes every waiter, which re-checks its own job/sequence filter.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ServiceError
from repro.service.schemas import JobSpec, spec_payload

__all__ = [
    "Job",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Finished jobs kept for result pickup before the store forgets them.
_RETAIN_FINISHED = 256

#: Progress events kept per job (oldest dropped first).
_MAX_EVENTS = 200

_SEQ = itertools.count(1)


@dataclass
class Job:
    """One exploration job's full lifecycle record."""

    spec: JobSpec
    id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    #: Global admission order; the queue's FIFO axis.
    seq: int = field(default_factory=lambda: next(_SEQ))
    state: str = QUEUED
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    result: dict | None = None
    error: str | None = None
    #: Why the job left the queue without running ("cancelled by
    #: client", "service draining", ...) — the "clear status" drain
    #: and cancel report.
    note: str | None = None
    events: list[dict] = field(default_factory=list)
    _event_seq: int = 0
    cancel_event: threading.Event = field(default_factory=threading.Event)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def payload(self, queue_position: int | None = None) -> dict:
        """The JSON status form of this job."""
        data = {
            "id": self.id,
            "state": self.state,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "spec": spec_payload(self.spec),
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "events_seq": self._event_seq,
            "cancel_requested": self.cancel_event.is_set(),
        }
        if queue_position is not None:
            data["queue_position"] = queue_position
        if self.error is not None:
            data["error"] = self.error
        if self.note is not None:
            data["note"] = self.note
        if self.events:
            data["progress"] = self.events[-1]["stage"]
        return data


class JobStore:
    """Thread-safe registry of every job plus the long-poll condition."""

    def __init__(self, retain_finished: int = _RETAIN_FINISHED) -> None:
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._condition = threading.Condition()
        self._retain_finished = retain_finished

    def add(self, job: Job) -> None:
        with self._condition:
            self._jobs[job.id] = job
            self._prune()

    def get(self, job_id: str) -> Job:
        with self._condition:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        return job

    def jobs(self, tenant: str | None = None) -> list[Job]:
        with self._condition:
            jobs = list(self._jobs.values())
        if tenant is not None:
            jobs = [job for job in jobs if job.spec.tenant == tenant]
        return jobs

    def _prune(self) -> None:
        """Forget the oldest finished jobs beyond the retention cap."""
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.terminal
        ]
        for job_id in finished[: max(0, len(finished) - self._retain_finished)]:
            del self._jobs[job_id]

    # -- state transitions (all notify long-pollers) -------------------

    def record_event(self, job: Job, stage: str, **data) -> dict:
        """Append one progress event and wake every long-poller."""
        with self._condition:
            job._event_seq += 1
            event = {"seq": job._event_seq, "ts": time.time(), "stage": stage}
            event.update(data)
            job.events.append(event)
            del job.events[:-_MAX_EVENTS]
            self._condition.notify_all()
        return event

    def transition(self, job: Job, state: str, **event_data) -> None:
        """Move ``job`` to ``state`` and log it as a progress event."""
        with self._condition:
            job.state = state
            now = time.time()
            if state == RUNNING and job.started is None:
                job.started = now
            if state in TERMINAL_STATES:
                job.finished = now
            self._prune()
        self.record_event(job, state, **event_data)

    def events_since(
        self, job: Job, since: int = 0, wait: float | None = None
    ) -> list[dict]:
        """Events of ``job`` with ``seq > since``; optionally long-poll.

        With ``wait``, blocks up to that many seconds for a new event
        (or a terminal state) before returning what exists — the
        long-poll primitive behind ``GET /v1/jobs/<id>/events``.
        """

        def fresh() -> list[dict]:
            return [event for event in job.events if event["seq"] > since]

        with self._condition:
            events = fresh()
            if events or not wait or job.terminal:
                return events
            deadline = time.monotonic() + wait
            while not events and not job.terminal:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._condition.wait(remaining)
                events = fresh()
            return events
