"""Wire schemas of the exploration service: job specs and payloads.

Everything the daemon accepts or returns is JSON built from these
helpers, so the HTTP layer (:mod:`repro.service.server`), the queue,
and the CLI client agree on one vocabulary:

* :class:`JobSpec` — a validated exploration request (what to run:
  workload, strategy knobs, backend choice; and how to schedule it:
  tenant, priority).
* :func:`parse_job_spec` — turn an untrusted JSON body into a
  :class:`JobSpec`, raising :class:`~repro.errors.ServiceError`
  (status 400) with a message naming the offending field.
* :func:`job_payload` / :func:`spec_payload` — the JSON form of a job
  and its spec (see :mod:`repro.service.jobs` for job state).

Tenants are both a fairness bucket and a cache namespace — the tenant
string becomes a directory component under the service cache dir — so
it is restricted to a filesystem-safe slug.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass

from repro import registry
from repro.errors import ServiceError
from repro.workloads import workload_names

__all__ = [
    "JOB_KINDS",
    "DEFAULT_TENANT",
    "JobSpec",
    "job_kind_names",
    "parse_job_spec",
    "spec_payload",
]

#: Exploration kinds the service runs. ``apex`` is Phase-0 memory
#: exploration only; ``explore`` is the full MemorEx pipeline whose
#: result matches ``repro explore --json``.
JOB_KINDS = ("apex", "explore")

DEFAULT_TENANT = "default"

#: Tenant slugs become cache-directory components; keep them path-safe.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_BACKENDS = (None, "serial", "pool", "remote")


@dataclass(frozen=True)
class JobSpec:
    """One validated exploration request."""

    kind: str
    workload: str
    scale: float = 0.25
    seed: int = 0
    select: int = 5
    keep: int = 8
    backend: str | None = None
    workers: int | None = None
    priority: int = 0
    tenant: str = DEFAULT_TENANT
    #: Registered IP-library pair (repro.registry); None = default.
    library: str | None = None


def job_kind_names() -> tuple[str, ...]:
    return JOB_KINDS


def _field(payload: dict, name: str, kind, default):
    """Fetch and coerce one spec field, 400ing with the field name."""
    value = payload.get(name, default)
    if value is None and default is None:
        return None
    try:
        if kind is int and isinstance(value, bool):
            raise TypeError  # True/False are not job integers
        return kind(value)
    except (TypeError, ValueError):
        raise ServiceError(
            f"job field {name!r} must be {kind.__name__}, got {value!r}"
        ) from None


def parse_job_spec(payload: object, tenant: str | None = None) -> JobSpec:
    """Validate an untrusted JSON body into a :class:`JobSpec`.

    ``tenant`` (from the ``X-Repro-Tenant`` header) wins over a
    ``tenant`` field in the body; both default to
    :data:`DEFAULT_TENANT`.
    """
    if not isinstance(payload, dict):
        raise ServiceError("job body must be a JSON object")
    kind = payload.get("kind", "explore")
    if kind not in JOB_KINDS:
        raise ServiceError(
            f"unknown job kind {kind!r} (expected one of {JOB_KINDS})"
        )
    workload = payload.get("workload")
    if workload not in workload_names():
        raise ServiceError(
            f"unknown workload {workload!r} "
            f"(expected one of {workload_names()})"
        )
    backend = payload.get("backend")
    if backend not in _BACKENDS:
        raise ServiceError(
            f"unknown backend {backend!r} (expected serial, pool, or remote)"
        )
    library = payload.get("library")
    if library is not None and library not in registry.library_names():
        raise ServiceError(
            f"unknown library {library!r} "
            f"(expected one of {registry.library_names()})"
        )
    tenant = tenant if tenant is not None else payload.get("tenant")
    tenant = tenant if tenant not in (None, "") else DEFAULT_TENANT
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise ServiceError(
            f"tenant must be a 1-64 char [A-Za-z0-9._-] slug, got {tenant!r}"
        )
    spec = JobSpec(
        kind=kind,
        workload=workload,
        scale=_field(payload, "scale", float, 0.25),
        seed=_field(payload, "seed", int, 0),
        select=_field(payload, "select", int, 5),
        keep=_field(payload, "keep", int, 8),
        backend=backend,
        workers=_field(payload, "workers", int, None),
        priority=_field(payload, "priority", int, 0),
        tenant=tenant,
        library=library,
    )
    if spec.scale <= 0:
        raise ServiceError(f"scale must be positive, got {spec.scale}")
    if spec.select < 1:
        raise ServiceError(f"select must be >= 1, got {spec.select}")
    if spec.keep < 1:
        raise ServiceError(f"keep must be >= 1, got {spec.keep}")
    if spec.workers is not None and spec.workers < 1:
        raise ServiceError(f"workers must be >= 1, got {spec.workers}")
    return spec


def spec_payload(spec: JobSpec) -> dict:
    """The JSON form of a spec (round-trips through parse_job_spec)."""
    return asdict(spec)
