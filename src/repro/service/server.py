"""The exploration daemon: service core plus HTTP/JSON front end.

Two layers, separable for tests:

* :class:`ExplorationService` — the long-lived application object: the
  job store, the fair multi-tenant :class:`~repro.service.queue.JobQueue`,
  N runner threads (each with its own persistent
  :class:`~repro.exec.runtime.ExecutionRuntime`, reused across every
  job it runs), the per-tenant cache namespaces, an optional embedded
  cache :class:`~repro.exec.worker.WorkerServer`, and the drain state
  machine. Tests drive it directly.
* :class:`ServiceServer` — a stdlib ``ThreadingHTTPServer`` exposing
  the service as JSON over HTTP (see ``docs/service.md`` for the
  API). Connection threads are per-request; long-polls block in the
  job store's condition variable, not in busy loops.

Graceful drain (``SIGTERM``, ``POST /v1/drain``, or
:meth:`ExplorationService.drain`): the service stops admitting
(submissions get 503), pending jobs leave the queue as ``cancelled``
with note ``"service draining"``, running jobs get up to the drain
timeout to finish (then a cooperative cancel lands at their next phase
checkpoint), and finally runtimes, caches, and the embedded worker —
via :meth:`~repro.exec.worker.WorkerServer.stop` with a drain join —
shut down clean.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.config import current_settings
from repro.errors import ServiceError
from repro.exec.runtime import ExecutionRuntime
from repro.exec.worker import WorkerServer
from repro.service import jobs as jobstates
from repro.service.jobs import Job, JobStore
from repro.service.queue import JobQueue
from repro.service.runner import TenantCaches, execute_job
from repro.service.schemas import parse_job_spec

__all__ = ["ExplorationService", "ServiceServer", "serve"]

SERVING = "serving"
DRAINING = "draining"
STOPPED = "stopped"

#: Ceiling on one long-poll's ``wait`` (clients re-issue to wait more).
_MAX_LONGPOLL_SECONDS = 30.0


class ExplorationService:
    """The daemon's application core, independent of the HTTP layer.

    Args:
        jobs: concurrent exploration jobs (runner threads); ``None``
            consults ``REPRO_SERVICE_JOBS``.
        queue_max: pending-job bound; ``None`` consults
            ``REPRO_SERVICE_QUEUE_MAX``.
        cache_dir: base directory for per-tenant disk cache
            namespaces; ``None`` consults ``REPRO_CACHE_DIR`` (unset:
            memory-only namespaces).
        workers: per-runner :class:`ExecutionRuntime` pool size;
            ``None`` consults ``REPRO_WORKERS``.
        backend: default execution backend spec for jobs that do not
            choose one (``serial``/``pool``/``remote`` or ``None`` for
            the classic dispatch).
        drain_timeout: seconds :meth:`drain` waits for running jobs;
            ``None`` consults ``REPRO_SERVICE_DRAIN_TIMEOUT``.
    """

    def __init__(
        self,
        jobs: int | None = None,
        queue_max: int | None = None,
        cache_dir: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
        drain_timeout: float | None = None,
    ) -> None:
        settings = current_settings()
        self.concurrency = jobs if jobs is not None else settings.service_jobs
        self.queue_max = (
            queue_max if queue_max is not None else settings.service_queue_max
        )
        self.drain_timeout = (
            drain_timeout
            if drain_timeout is not None
            else settings.service_drain_timeout
        )
        self.workers = workers
        self.backend = backend
        cache_dir = cache_dir if cache_dir is not None else settings.cache_dir
        self.caches = TenantCaches(
            base_dir=cache_dir, max_mb=settings.cache_max_mb
        )
        self.store = JobStore()
        self.queue = JobQueue(max_pending=self.queue_max)
        self.started_at = time.time()
        self.state = SERVING
        self._state_lock = threading.Lock()
        self._runners: list[threading.Thread] = []
        self._running: dict[str, Job] = {}
        self._stop = threading.Event()
        self._idle = threading.Condition()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spin up the runner threads (idempotent)."""
        if self._runners:
            return
        for index in range(self.concurrency):
            thread = threading.Thread(
                target=self._run_loop, name=f"repro-runner-{index}", daemon=True
            )
            thread.start()
            self._runners.append(thread)

    def _run_loop(self) -> None:
        # One persistent runtime per runner thread: pools and shared
        # trace exports amortize across every job this thread runs,
        # and no two threads ever share one (ExecutionRuntime dispatch
        # is not thread-safe).
        with ExecutionRuntime(workers=self.workers) as runtime:
            while not self._stop.is_set():
                job = self.queue.pop(timeout=0.2)
                if job is None:
                    continue
                if job.cancel_event.is_set():
                    job.note = job.note or "cancelled by client"
                    self.store.transition(job, jobstates.CANCELLED)
                    continue
                self._running[job.id] = job
                try:
                    execute_job(
                        job,
                        self.store,
                        self.caches,
                        runtime=runtime,
                        default_backend=self.backend,
                    )
                finally:
                    self._running.pop(job.id, None)
                    with self._idle:
                        self._idle.notify_all()

    # -- request operations --------------------------------------------

    def submit(self, payload: object, tenant: str | None = None) -> dict:
        """Validate, admit, and enqueue one job; returns its status."""
        spec = parse_job_spec(payload, tenant=tenant)
        with self._state_lock:
            if self.state != SERVING:
                raise ServiceError(
                    f"service is {self.state}; not accepting jobs", status=503
                )
            job = Job(spec=spec)
            self.store.add(job)
            position = self.queue.push(job)
        self.store.record_event(job, "queued", position=position)
        obs.incr("service.submitted")
        return job.payload(queue_position=position)

    def status(self, job_id: str) -> dict:
        job = self.store.get(job_id)
        return job.payload(queue_position=self.queue.position(job_id))

    def job_list(self, tenant: str | None = None) -> list[dict]:
        return [
            job.payload(queue_position=self.queue.position(job.id))
            for job in self.store.jobs(tenant)
        ]

    def events(
        self, job_id: str, since: int = 0, wait: float | None = None
    ) -> dict:
        job = self.store.get(job_id)
        if wait is not None:
            wait = max(0.0, min(wait, _MAX_LONGPOLL_SECONDS))
        events = self.store.events_since(job, since=since, wait=wait)
        return {"id": job.id, "state": job.state, "events": events}

    def result(self, job_id: str) -> dict:
        job = self.store.get(job_id)
        if job.state == jobstates.FAILED:
            raise ServiceError(f"job {job_id} failed: {job.error}", status=409)
        if job.state == jobstates.CANCELLED:
            raise ServiceError(
                f"job {job_id} was cancelled ({job.note})", status=409
            )
        if job.state != jobstates.DONE or job.result is None:
            raise ServiceError(
                f"job {job_id} is {job.state}; result not ready", status=409
            )
        return {"id": job.id, "state": job.state, "result": job.result}

    def cancel(self, job_id: str) -> dict:
        """Cancel a job: dequeue if pending, flag if running."""
        job = self.store.get(job_id)
        removed = self.queue.remove(job_id)
        job.cancel_event.set()
        if removed is not None:
            job.note = "cancelled by client"
            self.store.transition(job, jobstates.CANCELLED)
        elif not job.terminal:
            self.store.record_event(job, "cancel_requested")
        obs.incr("service.cancelled")
        return job.payload()

    def health(self) -> dict:
        return {
            "state": self.state,
            "uptime_seconds": time.time() - self.started_at,
            "queued": len(self.queue),
            "running": len(self._running),
            "concurrency": self.concurrency,
            "tenants": list(self.caches.tenants()),
        }

    # -- drain ---------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown; returns ``True`` if all work finished.

        Stops admission, rejects the pending queue with a clear
        status, waits up to ``timeout`` (default: the configured drain
        timeout) for running jobs, then requests cooperative cancel
        and stops the runner threads. Idempotent.
        """
        with self._state_lock:
            if self.state == STOPPED:
                return True
            self.state = DRAINING
        timeout = timeout if timeout is not None else self.drain_timeout
        for job in self.queue.drain():
            job.note = "service draining"
            self.store.transition(job, jobstates.CANCELLED)
        deadline = time.monotonic() + timeout
        clean = True
        with self._idle:
            while self._running:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    clean = False
                    break
            # Out of patience: ask the stragglers to stop at their
            # next phase checkpoint and wait a short grace period.
                self._idle.wait(min(remaining, 0.5))
        if not clean:
            for job in list(self._running.values()):
                job.cancel_event.set()
            grace = time.monotonic() + 5.0
            with self._idle:
                while self._running and time.monotonic() < grace:
                    self._idle.wait(0.5)
        self._stop.set()
        for thread in self._runners:
            thread.join(timeout=5.0)
        self._runners = []
        self.state = STOPPED
        obs.incr("service.drains")
        return clean and not self._running

    def close(self) -> None:
        """Hard stop (tests): drain with a tiny timeout."""
        self.drain(timeout=0.1)


class ServiceServer:
    """The HTTP/JSON front end over one :class:`ExplorationService`."""

    def __init__(
        self,
        service: ExplorationService,
        host: str | None = None,
        port: int | None = None,
    ) -> None:
        settings = current_settings()
        host = host if host is not None else settings.service_host
        port = port if port is not None else settings.service_port
        self.service = service
        handler = _make_handler(service)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self.address = f"{self.host}:{self.port}"
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        """Serve requests on a background thread; start the runners."""
        self.service.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
        )
        self._thread.start()

    def shutdown(self) -> None:
        """Stop the HTTP listener (does not drain the service)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.service.close()
        self.shutdown()


def _make_handler(service: ExplorationService):
    """A request-handler class closed over ``service``."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-service/1"
        protocol_version = "HTTP/1.1"

        # -- plumbing --------------------------------------------------

        def log_message(self, *_args) -> None:
            pass  # request logging is the caller's concern, not stderr's

        def _reply(self, status: int, payload: dict | list) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _body(self) -> object:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                return {}
            raw = self.rfile.read(length)
            try:
                return json.loads(raw)
            except ValueError:
                raise ServiceError("request body is not valid JSON") from None

        def _tenant(self) -> str | None:
            return self.headers.get("X-Repro-Tenant")

        def _route(self, method: str) -> None:
            url = urlparse(self.path)
            parts = [part for part in url.path.split("/") if part]
            query = parse_qs(url.query)
            try:
                handled = self._dispatch(method, parts, query)
            except ServiceError as error:
                self._reply(error.status, {"error": str(error)})
                return
            except Exception as error:  # pragma: no cover - defensive
                self._reply(
                    500, {"error": f"{type(error).__name__}: {error}"}
                )
                return
            if not handled:
                self._reply(404, {"error": f"no route {method} {url.path}"})

        # -- routes ----------------------------------------------------

        def _dispatch(self, method: str, parts: list[str], query) -> bool:
            if parts == ["healthz"] and method == "GET":
                self._reply(200, service.health())
                return True
            if not parts or parts[0] != "v1":
                return False
            parts = parts[1:]
            if parts == ["drain"] and method == "POST":
                # Drain blocks until running jobs finish; do it off
                # this connection thread and answer immediately.
                threading.Thread(target=service.drain, daemon=True).start()
                self._reply(202, {"state": DRAINING})
                return True
            if parts == ["jobs"]:
                if method == "POST":
                    self._reply(
                        202, service.submit(self._body(), self._tenant())
                    )
                    return True
                if method == "GET":
                    tenant = (query.get("tenant") or [None])[0]
                    self._reply(200, {"jobs": service.job_list(tenant)})
                    return True
                return False
            if len(parts) == 2 and parts[0] == "jobs" and method == "GET":
                self._reply(200, service.status(parts[1]))
                return True
            if len(parts) == 3 and parts[0] == "jobs":
                job_id, action = parts[1], parts[2]
                if action == "events" and method == "GET":
                    since = int((query.get("since") or ["0"])[0])
                    wait_raw = (query.get("wait") or [None])[0]
                    wait = float(wait_raw) if wait_raw is not None else None
                    self._reply(200, service.events(job_id, since, wait))
                    return True
                if action == "result" and method == "GET":
                    self._reply(200, service.result(job_id))
                    return True
                if action == "cancel" and method == "POST":
                    self._reply(200, service.cancel(job_id))
                    return True
            return False

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            self._route("GET")

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            self._route("POST")

    return Handler


def serve(
    host: str | None = None,
    port: int | None = None,
    jobs: int | None = None,
    queue_max: int | None = None,
    cache_dir: str | None = None,
    workers: int | None = None,
    backend: str | None = None,
    cache_worker_port: int | None = None,
) -> None:
    """Blocking entry point behind ``python -m repro serve``.

    Prints ``serving on host:port`` before accepting so launchers
    that requested port 0 can read the bound address back, runs until
    ``SIGTERM``/``SIGINT`` (or a ``POST /v1/drain``), then drains
    gracefully and exits clean. With ``cache_worker_port`` the daemon
    also embeds a :class:`~repro.exec.worker.WorkerServer` on that
    port serving the shared-cache socket protocol (point the worker
    fleet's ``REPRO_CACHE_URL`` at it); the embedded worker drains on
    the same path.
    """
    import signal

    obs.enable()  # progress events are fed by obs counters
    service = ExplorationService(
        jobs=jobs,
        queue_max=queue_max,
        cache_dir=cache_dir,
        workers=workers,
        backend=backend,
    )
    server = ServiceServer(service, host=host, port=port)
    cache_worker: WorkerServer | None = None
    if cache_worker_port is not None:
        cache_worker = WorkerServer(
            host=server.host,
            port=cache_worker_port,
            cache_dir=service.caches.base_dir,
        )
        cache_worker.start()
        print(f"cache worker on {cache_worker.address}", flush=True)

    stop = threading.Event()

    def _signal_drain(_signum, _frame) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _signal_drain)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    server.start()
    print(f"serving on {server.address}", flush=True)
    try:
        while not stop.is_set() and service.state == SERVING:
            stop.wait(0.2)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        clean = service.drain()
        if cache_worker is not None:
            cache_worker.stop(drain_timeout=service.drain_timeout)
        server.shutdown()
        print(
            "drained cleanly" if clean else "drain timed out", flush=True
        )
