"""The multi-tenant job queue: FIFO with priority and tenant fairness.

Ordering rules, in precedence order:

1. **Priority** — higher ``spec.priority`` pops first, full stop.
2. **Tenant fairness** — within one priority band, the next pop goes
   to the eligible tenant served least recently (a tenant never served
   ranks first, by the age of its oldest job). A tenant that queues a
   hundred jobs cannot starve a tenant that queues one: after each of
   the flood's pops, the other tenant's oldest job outranks the rest
   of the flood.
3. **FIFO** — within one tenant and priority, admission order.

The queue is bounded (:class:`~repro.errors.ServiceError` status 429
once ``max_pending`` jobs wait) and supports removal by id (cancel)
and wholesale drain; consumers block on :meth:`pop` with a timeout.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import ServiceError
from repro.service.jobs import Job

__all__ = ["JobQueue"]


class JobQueue:
    """Bounded priority queue with per-tenant round-robin fairness."""

    def __init__(self, max_pending: int | None = None) -> None:
        self.max_pending = max_pending
        #: priority -> tenant -> FIFO of jobs.
        self._pending: dict[int, dict[str, deque[Job]]] = {}
        #: tenant -> serve counter at its last pop (fairness clock).
        self._last_served: dict[str, int] = {}
        self._serve_clock = 0
        self._count = 0
        self._condition = threading.Condition()

    def __len__(self) -> int:
        with self._condition:
            return self._count

    def push(self, job: Job) -> int:
        """Enqueue ``job``; returns its 0-based queue position."""
        with self._condition:
            if (
                self.max_pending is not None
                and self._count >= self.max_pending
            ):
                raise ServiceError(
                    f"job queue is full ({self._count} pending); retry later",
                    status=429,
                )
            band = self._pending.setdefault(job.spec.priority, {})
            band.setdefault(job.spec.tenant, deque()).append(job)
            self._count += 1
            self._condition.notify()
            return self._position_locked(job.id)

    def pop(self, timeout: float | None = None) -> Job | None:
        """The next job by the ordering rules; ``None`` on timeout."""
        with self._condition:
            if self._count == 0 and not self._condition.wait_for(
                lambda: self._count > 0, timeout
            ):
                return None
            priority = max(
                p for p, band in self._pending.items() if any(band.values())
            )
            band = self._pending[priority]
            tenant = min(
                (t for t, jobs in band.items() if jobs),
                key=lambda t: (self._last_served.get(t, -1), band[t][0].seq),
            )
            job = band[tenant].popleft()
            self._serve_clock += 1
            self._last_served[tenant] = self._serve_clock
            self._count -= 1
            self._gc_locked()
            return job

    def remove(self, job_id: str) -> Job | None:
        """Remove a pending job by id (cancel); ``None`` if not queued."""
        with self._condition:
            for band in self._pending.values():
                for jobs in band.values():
                    for job in jobs:
                        if job.id == job_id:
                            jobs.remove(job)
                            self._count -= 1
                            self._gc_locked()
                            return job
            return None

    def drain(self) -> list[Job]:
        """Remove and return every pending job (service shutdown)."""
        with self._condition:
            drained = sorted(
                (
                    job
                    for band in self._pending.values()
                    for jobs in band.values()
                    for job in jobs
                ),
                key=lambda job: job.seq,
            )
            self._pending.clear()
            self._count = 0
            return drained

    def position(self, job_id: str) -> int | None:
        """0-based pops-before-this-job estimate; ``None`` if absent.

        Exact on priority and FIFO; tenant fairness can reorder jobs
        inside one priority band, so within a band this is the
        admission-order index, an upper bound on the wait.
        """
        with self._condition:
            return self._position_locked(job_id)

    def _position_locked(self, job_id: str) -> int | None:
        ordered = sorted(
            (
                job
                for band in self._pending.values()
                for jobs in band.values()
                for job in jobs
            ),
            key=lambda job: (-job.spec.priority, job.seq),
        )
        for index, job in enumerate(ordered):
            if job.id == job_id:
                return index
        return None

    def _gc_locked(self) -> None:
        """Drop empty tenants/bands so the dicts don't accrete keys."""
        for priority in [p for p, band in self._pending.items()]:
            band = self._pending[priority]
            for tenant in [t for t, jobs in band.items() if not jobs]:
                del band[tenant]
            if not band:
                del self._pending[priority]
        # The fairness clock keeps one int per tenant ever served; in a
        # many-tenant deployment that too must stay bounded. Idle
        # tenants pruned here just rank as "never served" again.
        if len(self._last_served) > 4096:
            active = {
                tenant
                for band in self._pending.values()
                for tenant in band
            }
            recent = dict(
                sorted(self._last_served.items(), key=lambda kv: -kv[1])[:1024]
            )
            for tenant in active:
                if tenant in self._last_served:
                    recent[tenant] = self._last_served[tenant]
            self._last_served = recent
