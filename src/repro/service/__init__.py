"""Exploration-as-a-service: the daemon behind ``python -m repro serve``.

The package turns the persistent execution stack — runtimes, pluggable
backends, the layered simulation cache — into a long-lived HTTP/JSON
daemon that many clients (and many tenants) share:

* :mod:`repro.service.schemas` — wire formats: validated job specs.
* :mod:`repro.service.jobs` — job records, the thread-safe store, and
  the long-poll condition.
* :mod:`repro.service.queue` — bounded FIFO-with-priority queue with
  per-tenant fairness.
* :mod:`repro.service.runner` — executes one job with cancel
  checkpoints, per-tenant cache namespaces, and obs-fed progress.
* :mod:`repro.service.server` — the service core, the stdlib HTTP
  front end, and the graceful-drain ``serve()`` loop.
* :mod:`repro.service.client` — urllib client used by the CLI's
  ``submit``/``status``/``result``/``cancel`` subcommands.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobStore
from repro.service.queue import JobQueue
from repro.service.schemas import JobSpec, parse_job_spec
from repro.service.server import ExplorationService, ServiceServer, serve

__all__ = [
    "ExplorationService",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobStore",
    "ServiceClient",
    "ServiceServer",
    "parse_job_spec",
    "serve",
]
