"""Job execution: one exploration job against shared service state.

The runner replays the :func:`repro.core.memorex.run_memorex` pipeline
phase by phase instead of calling it whole, because the service needs
seams the one-shot call doesn't have:

* a **cancel checkpoint** between trace generation, APEX, and ConEx —
  a cooperative cancel (or a drain running out of patience) lands at
  the next seam instead of being ignored until the job ends;
* a **progress event** after every phase, carrying counts (accesses,
  evaluated/selected architectures, pareto size) plus the phase's
  :mod:`repro.obs` counter delta (simulations run, cache hits, ...),
  which is what the poll/long-poll endpoints stream to clients;
* **per-tenant caches** — each tenant's jobs run against that tenant's
  :class:`~repro.exec.cache.SimulationCache` namespace
  (:class:`TenantCaches`), so one tenant's workloads warm only their
  own cache while the runtime/backend (compute, not results) is shared.

Results are plain JSON: an ``explore`` job's ``design_points`` rows
are exactly what ``repro explore --json`` writes for the same spec,
so a service client and a CLI user can diff outputs byte for byte.
"""

from __future__ import annotations

import pathlib
import threading

from repro import obs, registry
from repro.apex.explorer import ApexConfig, explore_memory_architectures
from repro.conex.explorer import ConExConfig, explore_connectivity
from repro.core.design_point import summarize
from repro.errors import ReproError
from repro.exec.backend import ExecutionBackend, resolve_backend
from repro.exec.cache import SimulationCache
from repro.exec.runtime import ExecutionRuntime
from repro.service import jobs as jobstates
from repro.service.jobs import Job, JobStore
from repro.workloads import get_workload

__all__ = ["CancelledJob", "TenantCaches", "execute_job"]

#: Obs counters surfaced in per-phase progress events.
_PROGRESS_COUNTERS = {
    "exec.jobs": "simulations",
    "exec.cache_hits": "cache_hits",
    "exec.cache_misses": "cache_misses",
    "backend.bytes_sent": "bytes_sent",
    "backend.bytes_received": "bytes_received",
}


class CancelledJob(Exception):
    """Internal signal: the job's cancel flag was set at a checkpoint."""


class TenantCaches:
    """One :class:`SimulationCache` namespace per tenant.

    In memory, namespaces are simply distinct cache instances. When the
    service has a cache directory, each tenant's disk layer lives under
    ``<base>/<tenant>/`` — the tenant slug is validated path-safe at
    parse time — so namespaces persist across restarts and never share
    or evict each other's files. The per-layer size cap applies to each
    namespace individually (same semantics as ``REPRO_CACHE_MAX_MB``
    on a single cache).
    """

    def __init__(
        self,
        base_dir: str | pathlib.Path | None = None,
        max_mb: float | None = None,
    ) -> None:
        self.base_dir = (
            pathlib.Path(base_dir) if base_dir is not None else None
        )
        self.max_mb = max_mb
        self._caches: dict[str, SimulationCache] = {}
        self._lock = threading.Lock()

    def get(self, tenant: str) -> SimulationCache:
        with self._lock:
            cache = self._caches.get(tenant)
            if cache is None:
                directory = (
                    self.base_dir / tenant
                    if self.base_dir is not None
                    else None
                )
                cache = SimulationCache(
                    directory=directory, max_mb=self.max_mb
                )
                self._caches[tenant] = cache
        return cache

    def tenants(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._caches)


def _checkpoint(job: Job) -> None:
    if job.cancel_event.is_set():
        raise CancelledJob


def _phase_delta(baseline: "obs.ObsSnapshot | None") -> dict:
    """Interesting obs-counter movement since ``baseline`` (may be {})."""
    if baseline is None:
        return {}
    delta = obs.snapshot().subtract(baseline)
    metrics = {}
    for counter, label in _PROGRESS_COUNTERS.items():
        value = delta.counters.get(counter)
        if value:
            metrics[label] = int(value)
    return metrics


def execute_job(
    job: Job,
    store: JobStore,
    caches: TenantCaches,
    runtime: ExecutionRuntime | None = None,
    default_backend: "ExecutionBackend | str | None" = None,
) -> None:
    """Run one job to a terminal state, recording progress events.

    Never raises: failures land in ``job.error`` / the ``failed``
    state, cancellation in ``cancelled`` — the runner thread must
    survive any job.
    """
    spec = job.spec
    try:
        store.transition(job, jobstates.RUNNING)
        cache = caches.get(spec.tenant)
        backend_spec = spec.backend if spec.backend is not None else default_backend
        backend = resolve_backend(backend_spec, spec.workers)
        try:
            result = _run_spec(job, store, cache, runtime, backend)
        finally:
            # Close only backends this job instantiated from a string
            # spec; an injected instance belongs to the caller.
            if backend is not None and not isinstance(
                backend_spec, ExecutionBackend
            ):
                backend.close()
        _checkpoint(job)
        job.result = result
        store.transition(job, jobstates.DONE)
    except CancelledJob:
        job.note = job.note or "cancelled by client"
        store.transition(job, jobstates.CANCELLED)
    except ReproError as error:
        job.error = str(error)
        store.transition(job, jobstates.FAILED)
    except Exception as error:  # pragma: no cover - defensive
        job.error = f"{type(error).__name__}: {error}"
        store.transition(job, jobstates.FAILED)


def _run_spec(
    job: Job,
    store: JobStore,
    cache: SimulationCache,
    runtime: ExecutionRuntime | None,
    backend: "ExecutionBackend | None",
) -> dict:
    spec = job.spec
    collect = obs.enabled()
    workload = get_workload(spec.workload, scale=spec.scale, seed=spec.seed)

    _checkpoint(job)
    baseline = obs.snapshot() if collect else None
    trace = workload.trace()
    store.record_event(
        job,
        "trace",
        accesses=len(trace),
        cycles=int(trace.duration),
        **_phase_delta(baseline),
    )

    _checkpoint(job)
    baseline = obs.snapshot() if collect else None
    apex = explore_memory_architectures(
        trace,
        registry.memory_library(spec.library),
        ApexConfig(select_count=spec.select),
        hints=workload.pattern_hints,
        workers=spec.workers,
        cache=cache,
        runtime=runtime,
        backend=backend,
    )
    store.record_event(
        job,
        "apex",
        evaluated=len(apex.evaluated),
        selected=len(apex.selected),
        **_phase_delta(baseline),
    )
    if spec.kind == "apex":
        return {
            "kind": "apex",
            "workload": spec.workload,
            "architectures": [
                {
                    "name": e.architecture.name,
                    "cost_gates": e.cost_gates,
                    "miss_ratio": e.miss_ratio,
                    "avg_latency": e.avg_latency,
                    "modules": list(e.architecture.modules),
                }
                for e in apex.selected
            ],
        }

    _checkpoint(job)
    baseline = obs.snapshot() if collect else None
    conex = explore_connectivity(
        trace,
        apex.selected,
        registry.connectivity_library(spec.library),
        ConExConfig(phase1_keep=spec.keep),
        workers=spec.workers,
        cache=cache,
        runtime=runtime,
        backend=backend,
    )
    store.record_event(
        job,
        "conex",
        estimated=len(conex.estimated),
        simulated=len(conex.simulated),
        selected=len(conex.selected),
        **_phase_delta(baseline),
    )
    summaries = [summarize(point) for point in conex.selected]
    return {
        "kind": "explore",
        "workload": spec.workload,
        "design_points": [
            {
                "label": s.label,
                "cost_gates": s.cost_gates,
                "avg_latency_cycles": s.avg_latency,
                "avg_energy_nj": s.avg_energy_nj,
                "miss_ratio": s.miss_ratio,
                "memory_modules": list(s.memory_modules),
                "connections": list(s.connections),
            }
            for s in summaries
        ],
    }
