"""A dependency-free client for the exploration service.

Wraps the daemon's HTTP/JSON API (``docs/service.md``) in plain
method calls over :mod:`urllib`, translating error payloads back into
:class:`~repro.errors.ServiceError` with the original HTTP status.
The CLI's ``repro submit/status/result/cancel`` subcommands are thin
shims over this class; tests and scripts can use it directly::

    client = ServiceClient("http://127.0.0.1:8753", tenant="ci")
    job = client.submit({"kind": "explore", "workload": "apex_like"})
    done = client.wait(job["id"])
    pareto = client.result(job["id"])["result"]["design_points"]
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from urllib.parse import quote, urlencode

from repro.config import current_settings
from repro.errors import ServiceError
from repro.service.jobs import TERMINAL_STATES

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to one exploration daemon.

    Args:
        base_url: daemon address (``http://host:port``); ``None``
            consults ``REPRO_SERVICE_URL``, falling back to the
            configured service host/port.
        tenant: tenant slug sent as ``X-Repro-Tenant`` on every
            request (``None``: the daemon's default tenant).
        timeout: per-request socket timeout in seconds; long-poll
            requests extend it by the poll's wait.
    """

    def __init__(
        self,
        base_url: str | None = None,
        tenant: str | None = None,
        timeout: float = 10.0,
    ) -> None:
        if base_url is None:
            settings = current_settings()
            base_url = settings.service_url or (
                f"http://{settings.service_host}:{settings.service_port}"
            )
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        timeout: float | None = None,
    ) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, headers=headers, method=method
        )
        timeout = timeout if timeout is not None else self.timeout
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read()).get("error", str(error))
            except ValueError:
                message = str(error)
            raise ServiceError(message, status=error.code) from None
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            raise ServiceError(
                f"service at {self.base_url} unreachable: {error}", status=503
            ) from None

    # -- API -----------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, spec: dict) -> dict:
        """Enqueue one job; returns its status (id, queue position)."""
        return self._request("POST", "/v1/jobs", payload=spec)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{quote(job_id)}")

    def jobs(self, tenant: str | None = None) -> list[dict]:
        path = "/v1/jobs"
        if tenant is not None:
            path += "?" + urlencode({"tenant": tenant})
        return self._request("GET", path)["jobs"]

    def events(
        self, job_id: str, since: int = 0, wait: float | None = None
    ) -> dict:
        """Progress events after ``since``; ``wait`` long-polls."""
        params = {"since": since}
        if wait is not None:
            params["wait"] = wait
        path = f"/v1/jobs/{quote(job_id)}/events?" + urlencode(params)
        timeout = self.timeout + (wait or 0.0)
        return self._request("GET", path, timeout=timeout)

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{quote(job_id)}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{quote(job_id)}/cancel")

    def drain(self) -> dict:
        return self._request("POST", "/v1/drain")

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_wait: float = 10.0,
        on_event=None,
    ) -> dict:
        """Long-poll until the job reaches a terminal state.

        Calls ``on_event(event)`` for each new progress event (the
        CLI's live progress line). Returns the final status payload;
        raises :class:`ServiceError` (status 504) on timeout.
        """
        deadline = time.monotonic() + timeout
        since = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"timed out waiting for job {job_id}", status=504
                )
            page = self.events(
                job_id, since=since, wait=min(poll_wait, remaining)
            )
            for event in page["events"]:
                since = max(since, event["seq"])
                if on_event is not None:
                    on_event(event)
            if page["state"] in TERMINAL_STATES:
                return self.status(job_id)
