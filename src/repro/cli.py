"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``workloads`` — list the registered workloads.
* ``libraries`` — list the memory and connectivity IP libraries.
* ``trace`` — generate a workload trace; print its profile, optionally
  save it to ``.npz``.
* ``apex`` — run the APEX memory-modules exploration and print the
  selected architectures.
* ``explore`` — run the full MemorEx pipeline and print the complete
  report; optionally export the pareto set to CSV/JSON.
* ``coverage`` — compare the Pruned / Neighborhood / Full strategies
  on a reduced design space (the Table 2 experiment).
* ``worker`` — serve simulate/estimate jobs and cache traffic over a
  socket; the exploration commands dispatch to workers with
  ``--backend remote`` (addresses from ``REPRO_WORKER_ADDRS``).
* ``serve`` — run the exploration service daemon: an HTTP/JSON API
  where clients submit apex/explore jobs, poll progress, and fetch
  pareto results (see ``docs/service.md``).
* ``submit`` / ``status`` / ``result`` / ``cancel`` — client commands
  against a running daemon (``--url`` or ``REPRO_SERVICE_URL``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import obs, registry
from repro.apex.explorer import ApexConfig, explore_memory_architectures
from repro.conex.explorer import ConExConfig
from repro.connectivity.library import default_connectivity_library
from repro.core.memorex import MemorExConfig, run_memorex
from repro.core.report import render_full_report
from repro.core.strategies import (
    coverage_rows,
    run_full,
    run_neighborhood,
    run_pruned,
)
from repro.errors import ReproError
from repro.exec.runtime import ExecutionRuntime
from repro.io import (
    export_design_points_csv,
    export_design_points_json,
    save_trace,
)
from repro.memory.library import default_memory_library
from repro.trace.profiler import profile_trace
from repro.workloads import get_workload, workload_names


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", choices=workload_names())
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="workload size multiplier (default 0.25)",
    )
    parser.add_argument("--seed", type=int, default=0)


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for simulation batches "
        "(default: REPRO_WORKERS or serial)",
    )


def _add_library_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memory-lib",
        default=None,
        metavar="NAME",
        help="registered memory IP library (default: 'default'; "
        "see repro.registry)",
    )
    parser.add_argument(
        "--conn-lib",
        default=None,
        metavar="NAME",
        help="registered connectivity IP library (default: 'default')",
    )


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=("serial", "pool", "remote"),
        default=None,
        help="execution backend for simulation batches (default: "
        "REPRO_BACKEND, else the classic workers dispatch; 'remote' "
        "shards over the REPRO_WORKER_ADDRS socket workers)",
    )


def _add_metrics_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-json",
        metavar="FILE.json",
        default=None,
        help="enable observability and write spans/counters as JSON",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="enable observability and print a summary to stderr",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ConEx memory-system connectivity exploration (DATE 2002)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("workloads", help="list registered workloads")
    commands.add_parser("libraries", help="list the IP libraries")

    trace_cmd = commands.add_parser("trace", help="generate and profile a trace")
    _add_workload_arguments(trace_cmd)
    trace_cmd.add_argument("--save", metavar="FILE.npz", default=None)

    apex_cmd = commands.add_parser(
        "apex", help="run the APEX memory-modules exploration"
    )
    _add_workload_arguments(apex_cmd)
    _add_jobs_argument(apex_cmd)
    _add_library_arguments(apex_cmd)
    _add_backend_argument(apex_cmd)
    _add_metrics_arguments(apex_cmd)
    apex_cmd.add_argument("--select", type=int, default=5)

    explore_cmd = commands.add_parser(
        "explore", help="run the full MemorEx pipeline"
    )
    _add_workload_arguments(explore_cmd)
    _add_jobs_argument(explore_cmd)
    _add_library_arguments(explore_cmd)
    _add_backend_argument(explore_cmd)
    _add_metrics_arguments(explore_cmd)
    explore_cmd.add_argument("--select", type=int, default=5)
    explore_cmd.add_argument("--keep", type=int, default=8, help="Phase-I keep")
    explore_cmd.add_argument("--csv", metavar="FILE.csv", default=None)
    explore_cmd.add_argument("--json", metavar="FILE.json", default=None)
    explore_cmd.add_argument(
        "--report", metavar="FILE.txt", default=None,
        help="also write the full report to a file",
    )

    coverage_cmd = commands.add_parser(
        "coverage",
        help="compare Pruned / Neighborhood / Full strategies (Table 2)",
    )
    _add_workload_arguments(coverage_cmd)
    _add_jobs_argument(coverage_cmd)
    _add_library_arguments(coverage_cmd)
    _add_backend_argument(coverage_cmd)
    _add_metrics_arguments(coverage_cmd)

    worker_cmd = commands.add_parser(
        "worker",
        help="serve simulate/estimate jobs and cache traffic over a socket",
    )
    worker_cmd.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default loopback)",
    )
    worker_cmd.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 lets the OS pick (printed on stdout)",
    )
    worker_cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist served cache entries to DIR "
        "(share one REPRO_CACHE_DIR across workers to pool results)",
    )

    serve_cmd = commands.add_parser(
        "serve", help="run the exploration service daemon (HTTP/JSON)"
    )
    serve_cmd.add_argument(
        "--host", default=None,
        help="interface to bind (default: REPRO_SERVICE_HOST or loopback)",
    )
    serve_cmd.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default: REPRO_SERVICE_PORT; 0 lets the OS pick, "
        "printed on stdout)",
    )
    serve_cmd.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="concurrent exploration jobs (default: REPRO_SERVICE_JOBS)",
    )
    serve_cmd.add_argument(
        "--queue-max", type=int, default=None, metavar="N",
        help="pending-job bound before submissions get 429 "
        "(default: REPRO_SERVICE_QUEUE_MAX)",
    )
    serve_cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="base directory for per-tenant cache namespaces "
        "(default: REPRO_CACHE_DIR; unset keeps caches in memory)",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="simulation workers per job runner (default: REPRO_WORKERS)",
    )
    _add_backend_argument(serve_cmd)
    serve_cmd.add_argument(
        "--cache-worker-port", type=int, default=None, metavar="PORT",
        help="also serve the shared-cache socket protocol on PORT "
        "(point worker fleets' REPRO_CACHE_URL here)",
    )

    def _add_client_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--url", default=None,
            help="daemon base URL (default: REPRO_SERVICE_URL or the "
            "configured service host/port)",
        )
        sub.add_argument(
            "--tenant", default=None,
            help="tenant slug (scheduling fairness + cache namespace)",
        )

    submit_cmd = commands.add_parser(
        "submit", help="submit an exploration job to a running daemon"
    )
    _add_client_arguments(submit_cmd)
    submit_cmd.add_argument("workload", choices=workload_names())
    submit_cmd.add_argument(
        "--kind", choices=("apex", "explore"), default="explore"
    )
    submit_cmd.add_argument("--scale", type=float, default=0.25)
    submit_cmd.add_argument("--seed", type=int, default=0)
    submit_cmd.add_argument("--select", type=int, default=5)
    submit_cmd.add_argument("--keep", type=int, default=8)
    submit_cmd.add_argument("--priority", type=int, default=0)
    submit_cmd.add_argument(
        "--library", default=None, metavar="NAME",
        help="registered IP-library pair for the job (repro.registry)",
    )
    submit_cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="simulation workers for this job",
    )
    _add_backend_argument(submit_cmd)
    submit_cmd.add_argument(
        "--wait", action="store_true",
        help="stream progress events and block until the job finishes",
    )

    status_cmd = commands.add_parser(
        "status", help="show a job (or, with no id, every job)"
    )
    _add_client_arguments(status_cmd)
    status_cmd.add_argument("job_id", nargs="?", default=None)

    result_cmd = commands.add_parser(
        "result", help="fetch a finished job's result as JSON"
    )
    _add_client_arguments(result_cmd)
    result_cmd.add_argument("job_id")
    result_cmd.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes before fetching",
    )

    cancel_cmd = commands.add_parser("cancel", help="cancel a job")
    _add_client_arguments(cancel_cmd)
    cancel_cmd.add_argument("job_id")
    return parser


def _cmd_workloads(_: argparse.Namespace) -> None:
    for name in workload_names():
        workload = get_workload(name)
        patterns = ", ".join(
            f"{struct}:{pattern.value}"
            for struct, pattern in workload.pattern_hints.items()
        )
        print(f"{name:10s} {patterns}")


def _cmd_libraries(_: argparse.Namespace) -> None:
    from repro.connectivity.library import component_families
    from repro.memory.library import module_types

    print(f"registered libraries: {', '.join(registry.library_names())}")
    print(
        "module families: "
        + ", ".join(entry.name for entry in module_types())
    )
    print(
        "connectivity families: "
        + ", ".join(entry.name for entry in component_families())
    )
    memory = default_memory_library()
    print(f"\nmemory IP library ({len(memory)} presets):")
    for name in memory.names():
        module = memory.get(name).instantiate()
        print(
            f"  {name:22s} {module.kind:18s} {module.area_gates:>10,.0f} gates"
        )
    connectivity = default_connectivity_library()
    print(f"\nconnectivity IP library ({len(connectivity)} presets):")
    for name in connectivity.names():
        component = connectivity.get(name).instantiate()
        print(f"  {name:22s} {component.describe()}")


def _cmd_trace(args: argparse.Namespace) -> None:
    workload = get_workload(args.workload, scale=args.scale, seed=args.seed)
    trace = workload.trace()
    profile = profile_trace(trace)
    print(
        f"{trace.name}: {len(trace)} accesses, {trace.duration} cycles, "
        f"{trace.total_bytes} bytes"
    )
    for stats in sorted(
        profile.by_struct.values(), key=lambda s: s.bandwidth, reverse=True
    ):
        print(
            f"  {stats.struct:16s} {stats.bandwidth:8.4f} B/cyc  "
            f"{stats.accesses:8d} accesses"
        )
    if args.save:
        save_trace(trace, args.save)
        print(f"saved to {args.save}")


def _print_runtime_faults(runtime: ExecutionRuntime) -> None:
    """One stderr line when the batch survived worker faults.

    Silent on a clean run; on a faulted one, makes the recovery
    visible without disturbing stdout (which scripts parse).
    """
    summary = runtime.stats.fault_summary()
    if summary is not None:
        print(f"[runtime] {summary}", file=sys.stderr)


def _cmd_apex(args: argparse.Namespace) -> None:
    workload = get_workload(args.workload, scale=args.scale, seed=args.seed)
    trace = workload.trace()
    with ExecutionRuntime(workers=args.jobs) as runtime:
        result = explore_memory_architectures(
            trace,
            registry.memory_library(args.memory_lib),
            ApexConfig(select_count=args.select),
            hints=workload.pattern_hints,
            workers=args.jobs,
            runtime=runtime,
            backend=args.backend,
        )
        _print_runtime_faults(runtime)
        args._runtime_stats = runtime.stats.as_dict()
    print(
        f"evaluated {len(result.evaluated)} architectures, "
        f"selected {len(result.selected)}:"
    )
    for i, evaluated in enumerate(result.selected, 1):
        modules = ", ".join(evaluated.architecture.modules) or "(uncached)"
        print(
            f"  [{i}] {evaluated.cost_gates:>10,.0f} gates  "
            f"miss {evaluated.miss_ratio:6.3f}  "
            f"lat {evaluated.avg_latency:5.2f}  {modules}"
        )


def _cmd_explore(args: argparse.Namespace) -> None:
    workload = get_workload(args.workload, scale=args.scale, seed=args.seed)
    config = MemorExConfig(
        apex=ApexConfig(select_count=args.select),
        conex=ConExConfig(phase1_keep=args.keep),
    )
    with ExecutionRuntime(workers=args.jobs) as runtime:
        result = run_memorex(
            workload,
            memory_library=args.memory_lib,
            connectivity_library=args.conn_lib,
            config=config, workers=args.jobs, runtime=runtime,
            backend=args.backend,
        )
        _print_runtime_faults(runtime)
        args._runtime_stats = runtime.stats.as_dict()
    report = render_full_report(result)
    print(report)
    if args.report:
        import pathlib

        pathlib.Path(args.report).write_text(report + "\n")
        print(f"\nreport written to {args.report}")
    if args.csv:
        export_design_points_csv(result.selected_points, args.csv)
        print(f"\npareto set exported to {args.csv}")
    if args.json:
        export_design_points_json(result.selected_points, args.json)
        print(f"pareto set exported to {args.json}")


def _cmd_coverage(args: argparse.Namespace) -> None:
    from repro.util.tables import format_table

    workload = get_workload(args.workload, scale=args.scale, seed=args.seed)
    trace = workload.trace()
    hints = dict(workload.pattern_hints)
    # A reduced space keeps the Full reference tractable from the CLI.
    apex_config = ApexConfig(
        cache_options=(None, "cache_4k_16b_1w", "cache_16k_32b_2w"),
        stream_buffer_options=(None, "stream_buffer_4"),
        dma_options=(None, "si_dma_32"),
        map_indexed_to_sram=(False,),
        select_count=5,
    )
    conex_config = ConExConfig(
        max_logical_connections=3,
        max_assignments_per_level=48,
        phase1_keep=12,
    )
    common = (
        trace,
        registry.memory_library(args.memory_lib),
        registry.connectivity_library(args.conn_lib),
        apex_config,
        conex_config,
    )
    # One persistent runtime serves all three strategies: the pool is
    # built once and the trace is exported to shared memory once.
    with ExecutionRuntime(workers=args.jobs) as runtime:
        pruned = run_pruned(
            *common, hints=hints, workers=args.jobs, runtime=runtime,
            backend=args.backend,
        )
        neighborhood = run_neighborhood(
            *common, hints=hints, workers=args.jobs, runtime=runtime,
            backend=args.backend,
        )
        full = run_full(
            *common, hints=hints, workers=args.jobs, runtime=runtime,
            backend=args.backend,
        )
        _print_runtime_faults(runtime)
        args._runtime_stats = runtime.stats.as_dict()
    rows = []
    for row in coverage_rows(full, [pruned, neighborhood]):
        cost_d, perf_d, energy_d = row.distances
        rows.append(
            (
                row.strategy,
                f"{row.seconds:.1f}s",
                f"{row.coverage_percent:.0f}%",
                f"{cost_d:.2f}%",
                f"{perf_d:.2f}%",
                f"{energy_d:.2f}%",
            )
        )
    print(
        format_table(
            ["strategy", "time", "coverage", "cost dist", "perf dist", "energy dist"],
            rows,
            title=f"Pareto coverage — {args.workload} (reduced space)",
        )
    )


def _cmd_worker(args: argparse.Namespace) -> None:
    from repro.exec.worker import serve

    serve(host=args.host, port=args.port, cache_dir=args.cache_dir)


def _cmd_serve(args: argparse.Namespace) -> None:
    from repro.service.server import serve

    serve(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        queue_max=args.queue_max,
        cache_dir=args.cache_dir,
        workers=args.workers,
        backend=args.backend,
        cache_worker_port=args.cache_worker_port,
    )


def _service_client(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    return ServiceClient(base_url=args.url, tenant=args.tenant)


def _print_event(event: dict) -> None:
    detail = ", ".join(
        f"{key}={value}"
        for key, value in event.items()
        if key not in ("seq", "ts", "stage")
    )
    line = f"[{event['seq']:3d}] {event['stage']}"
    print(f"{line}  {detail}" if detail else line, file=sys.stderr)


def _cmd_submit(args: argparse.Namespace) -> None:
    import json

    client = _service_client(args)
    spec = {
        "kind": args.kind,
        "workload": args.workload,
        "scale": args.scale,
        "seed": args.seed,
        "select": args.select,
        "keep": args.keep,
        "priority": args.priority,
    }
    if args.library is not None:
        spec["library"] = args.library
    if args.backend is not None:
        spec["backend"] = args.backend
    if args.workers is not None:
        spec["workers"] = args.workers
    job = client.submit(spec)
    print(
        f"job {job['id']} queued "
        f"(tenant {job['tenant']}, position {job.get('queue_position')})",
        file=sys.stderr,
    )
    if not args.wait:
        print(job["id"])
        return
    final = client.wait(job["id"], on_event=_print_event)
    if final["state"] != "done":
        reason = final.get("error") or final.get("note") or final["state"]
        raise ReproError(f"job {job['id']} {final['state']}: {reason}")
    print(json.dumps(client.result(job["id"])["result"], indent=2))


def _cmd_status(args: argparse.Namespace) -> None:
    import json

    client = _service_client(args)
    if args.job_id is not None:
        print(json.dumps(client.status(args.job_id), indent=2))
        return
    for job in client.jobs(tenant=args.tenant):
        position = job.get("queue_position")
        queue = f" queue={position}" if position is not None else ""
        print(
            f"{job['id']}  {job['state']:9s} {job['tenant']:12s} "
            f"{job['spec']['kind']}/{job['spec']['workload']}{queue}"
        )


def _cmd_result(args: argparse.Namespace) -> None:
    import json

    client = _service_client(args)
    if args.wait:
        client.wait(args.job_id, on_event=_print_event)
    print(json.dumps(client.result(args.job_id)["result"], indent=2))


def _cmd_cancel(args: argparse.Namespace) -> None:
    client = _service_client(args)
    job = client.cancel(args.job_id)
    print(f"job {job['id']} {job['state']}", file=sys.stderr)


_COMMANDS = {
    "workloads": _cmd_workloads,
    "libraries": _cmd_libraries,
    "trace": _cmd_trace,
    "apex": _cmd_apex,
    "explore": _cmd_explore,
    "coverage": _cmd_coverage,
    "worker": _cmd_worker,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "result": _cmd_result,
    "cancel": _cmd_cancel,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    metrics_json = getattr(args, "metrics_json", None)
    metrics_text = getattr(args, "metrics", False)
    if metrics_json or metrics_text:
        obs.enable()
    try:
        _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if metrics_json or metrics_text:
            runtime_stats = getattr(args, "_runtime_stats", None)
            extra = (
                {"runtime": runtime_stats} if runtime_stats is not None else None
            )
            if metrics_json:
                obs.export_json(metrics_json, extra=extra)
                print(f"metrics written to {metrics_json}", file=sys.stderr)
            if metrics_text:
                print(obs.render_text(), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
