"""Contract tests over every registered memory-module family.

:func:`repro.memory.library.register_module_type` is the extension
point for new module families; these tests hold *every* registered
family — built-in or added later — to the contracts the rest of the
system assumes:

* ``config_signature()`` identifies the configuration, not the
  simulation state: equal for fresh twins, hashable, and unchanged by
  accesses or :meth:`reset`.
* ``access_many`` (where provided) is bit-identical to the scalar
  ``access`` stream, including state carried across batch boundaries.
* DRAM families keep ``open_row_latencies`` in lockstep with the
  scalar row-state walk.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory.dram import Dram
from repro.memory.library import module_type, module_types
from repro.memory.module import MemoryModule
from repro.trace.events import AccessKind

FAMILIES = {entry.name: entry for entry in module_types()}


def _mixed_columns(seed: int, n: int = 400, span: int = 1 << 14):
    rng = np.random.default_rng(seed)
    addresses = np.where(
        rng.random(n) < 0.6,
        np.cumsum(rng.integers(1, 9, n)) % span,
        rng.integers(0, span, n),
    ).astype(np.int64)
    sizes = rng.choice([1, 2, 4, 8], n).astype(np.int32)
    kinds = rng.integers(0, 2, n).astype(np.int8)
    return addresses, sizes, kinds


def _scalar_columns(module, addresses, sizes, kinds):
    columns = ([], [], [], [], [])
    for i in range(len(addresses)):
        response = module.access(
            int(addresses[i]), int(sizes[i]), AccessKind(int(kinds[i])), tick=0
        )
        for column, value in zip(
            columns,
            (
                response.hit,
                response.latency,
                response.refill_bytes,
                response.writeback_bytes,
                response.prefetch_bytes,
            ),
        ):
            column.append(value)
    return columns


@pytest.mark.parametrize("name", sorted(FAMILIES))
def test_registered_family_is_consistent(name):
    entry = FAMILIES[name]
    assert module_type(name) is entry
    assert issubclass(entry.cls, MemoryModule)
    example = entry.example()
    assert isinstance(example, entry.cls)


@pytest.mark.parametrize("name", sorted(FAMILIES))
def test_signature_ignores_simulation_state(name):
    entry = FAMILIES[name]
    module, twin = entry.example(), entry.example()
    signature = module.config_signature()
    assert signature == twin.config_signature()
    assert signature[0] == type(module).__name__
    hash(signature)  # must stay usable as a cache key

    addresses, sizes, kinds = _mixed_columns(seed=11)
    if hasattr(module, "prime"):
        module.prime([int(a) for a in addresses])
    _scalar_columns(module, addresses, sizes, kinds)
    assert module.config_signature() == signature
    module.reset()
    assert module.config_signature() == signature


@pytest.mark.parametrize("name", sorted(FAMILIES))
@pytest.mark.parametrize("seed", [0, 3])
def test_access_many_matches_scalar_stream(name, seed):
    entry = FAMILIES[name]
    addresses, sizes, kinds = _mixed_columns(seed)
    batch_module = entry.example()
    mid = len(addresses) // 3
    halves = [
        batch_module.access_many(addresses[:mid], sizes[:mid], kinds[:mid]),
        batch_module.access_many(addresses[mid:], sizes[mid:], kinds[mid:]),
    ]
    if halves[0] is None:
        # No batched path: the default access_many must consistently
        # decline so the kernel falls back to the scalar walk.
        assert halves[1] is None
        return
    assert entry.example().supports_batch

    scalar_module = entry.example()
    hits, latencies, refills, writebacks, prefetches = _scalar_columns(
        scalar_module, addresses, sizes, kinds
    )

    def merged(field):
        parts = []
        for half, count in zip(halves, (mid, len(addresses) - mid)):
            column = getattr(half, field)
            parts.append(
                np.zeros(count, dtype=np.int64) if column is None else column
            )
        return np.concatenate(parts)

    assert merged("hit").astype(bool).tolist() == hits
    assert merged("latency").tolist() == latencies
    assert merged("refill_bytes").tolist() == refills
    assert merged("writeback_bytes").tolist() == writebacks
    assert merged("prefetch_bytes").tolist() == prefetches
    for stat in ("hits", "misses", "accesses", "conflicts"):
        assert getattr(scalar_module, stat, None) == getattr(
            batch_module, stat, None
        )


@pytest.mark.parametrize(
    "name",
    sorted(n for n, e in FAMILIES.items() if issubclass(e.cls, Dram)),
)
@pytest.mark.parametrize("seed", [1, 4])
def test_dram_batched_row_walk_matches_scalar(name, seed):
    entry = FAMILIES[name]
    addresses, _, _ = _mixed_columns(seed)
    scalar, batched = entry.example(), entry.example()
    scalar_latencies = [
        scalar.access(int(a), 8, AccessKind.READ, tick=0).latency
        for a in addresses
    ]
    mid = len(addresses) // 3
    batched_latencies = np.concatenate(
        [
            batched.open_row_latencies(addresses[:mid]),
            batched.open_row_latencies(addresses[mid:]),
        ]
    )
    assert batched_latencies.tolist() == scalar_latencies
    assert scalar.page_hits == batched.page_hits
    assert scalar.accesses == batched.accesses
