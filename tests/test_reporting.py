"""Unit tests for report rendering."""

import pytest

from repro.core.design_point import DesignPointSummary
from repro.core.reporting import (
    ascii_scatter,
    format_design_points,
    format_pareto_table,
)
from repro.errors import ExplorationError


def make_summary(label="d1", cost=1000.0, latency=5.0, energy=10.0):
    return DesignPointSummary(
        label=label,
        cost_gates=cost,
        avg_latency=latency,
        avg_energy_nj=energy,
        miss_ratio=0.1,
        memory_modules=("cache c",),
        connections=("ahb bus",),
    )


class TestFormatDesignPoints:
    def test_columns_present(self):
        out = format_design_points([make_summary()], title="T")
        assert "T" in out
        assert "cost [gates]" in out
        assert "1,000" in out
        assert "5.00" in out
        assert "10.0%" in out

    def test_sorted_by_cost(self):
        out = format_design_points(
            [make_summary("b", cost=2000.0), make_summary("a", cost=100.0)]
        )
        lines = out.splitlines()
        assert lines[2].startswith("a")
        assert lines[3].startswith("b")


class TestFormatParetoTable:
    def test_rows(self):
        out = format_pareto_table([("x", 100.0, 2.5, 7.25)])
        assert "x" in out and "2.50" in out and "7.25" in out


class TestAsciiScatter:
    def test_renders_all_points(self):
        out = ascii_scatter(
            [(0, 0), (10, 10), (5, 5)], width=20, height=10
        )
        assert out.count("*") == 3

    def test_custom_marks(self):
        out = ascii_scatter(
            [(0, 0), (10, 10)], width=20, height=10, marks=["a", "b"]
        )
        assert "a" in out and "b" in out

    def test_axis_labels(self):
        out = ascii_scatter(
            [(0, 1), (2, 3)], x_label="cost", y_label="latency"
        )
        assert "cost" in out and "latency" in out

    def test_degenerate_single_point(self):
        out = ascii_scatter([(5, 5)], width=10, height=5)
        assert out.count("*") == 1

    def test_empty_rejected(self):
        with pytest.raises(ExplorationError):
            ascii_scatter([])

    def test_too_small_rejected(self):
        with pytest.raises(ExplorationError):
            ascii_scatter([(0, 0)], width=2, height=2)
