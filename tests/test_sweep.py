"""Unit tests for the parameter-sweep utilities."""

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.core.sweep import (
    series,
    sweep_cache_size,
    sweep_cpu_bus,
    sweep_offchip_bus,
)
from repro.errors import ExplorationError

CACHES = ["cache_4k_16b_1w", "cache_8k_32b_2w", "cache_16k_32b_2w"]


@pytest.fixture
def cache_arch(mem_library):
    cache = mem_library.get("cache_8k_32b_2w").instantiate("cache")
    dram = mem_library.get("dram").instantiate()
    return MemoryArchitecture("m", [cache], dram, {}, "cache")


class TestCacheSizeSweep:
    def test_miss_ratio_monotone_decreasing(
        self, compress_trace, mem_library, conn_library
    ):
        points = sweep_cache_size(
            compress_trace, mem_library, conn_library, CACHES
        )
        ratios = [p.result.miss_ratio for p in points]
        assert ratios == sorted(ratios, reverse=True)

    def test_cost_monotone_increasing(
        self, compress_trace, mem_library, conn_library
    ):
        points = sweep_cache_size(
            compress_trace, mem_library, conn_library, CACHES
        )
        costs = [p.result.cost_gates for p in points]
        assert costs == sorted(costs)

    def test_settings_recorded(self, compress_trace, mem_library, conn_library):
        points = sweep_cache_size(
            compress_trace, mem_library, conn_library, CACHES[:2]
        )
        assert [p.setting for p in points] == CACHES[:2]

    def test_empty_rejected(self, compress_trace, mem_library, conn_library):
        with pytest.raises(ExplorationError):
            sweep_cache_size(compress_trace, mem_library, conn_library, [])


class TestBusSweeps:
    def test_cpu_bus_ordering(
        self, compress_trace, cache_arch, conn_library
    ):
        points = sweep_cpu_bus(
            compress_trace, cache_arch, conn_library, ["apb", "asb", "dedicated"]
        )
        by_name = {p.setting: p.result.avg_latency for p in points}
        # The slow peripheral bus is worst; the dedicated link is best.
        assert by_name["apb"] > by_name["asb"] >= by_name["dedicated"]

    def test_offchip_width_helps(
        self, compress_trace, cache_arch, conn_library
    ):
        points = sweep_offchip_bus(
            compress_trace, cache_arch, conn_library,
            ["offchip_16", "offchip_32"],
        )
        by_name = {p.setting: p.result.avg_latency for p in points}
        assert by_name["offchip_32"] <= by_name["offchip_16"]

    def test_memory_held_constant(
        self, compress_trace, cache_arch, conn_library
    ):
        points = sweep_cpu_bus(
            compress_trace, cache_arch, conn_library, ["asb", "ahb"]
        )
        memory_costs = {p.result.memory_cost_gates for p in points}
        assert len(memory_costs) == 1
        miss_ratios = {p.result.miss_ratio for p in points}
        assert len(miss_ratios) == 1  # connectivity cannot change misses


class TestSeriesExtraction:
    def test_series(self, compress_trace, cache_arch, conn_library):
        points = sweep_cpu_bus(
            compress_trace, cache_arch, conn_library, ["asb", "ahb"]
        )
        pairs = series(points, "avg_latency")
        assert len(pairs) == 2
        assert all(isinstance(v, float) for _, v in pairs)

    def test_unknown_metric_rejected(
        self, compress_trace, cache_arch, conn_library
    ):
        points = sweep_cpu_bus(
            compress_trace, cache_arch, conn_library, ["asb"]
        )
        with pytest.raises(ExplorationError):
            series(points, "nonsense")
        with pytest.raises(ExplorationError):
            series(points, "summary")  # callable, not numeric

    def test_empty_rejected(self):
        with pytest.raises(ExplorationError):
            series([], "avg_latency")
