"""Unit tests for the 2-D DCT workload."""

import numpy as np
import pytest

from repro.trace.events import AccessKind
from repro.workloads import DctWorkload
from repro.workloads.dct import BLOCK, ZIGZAG, _dct_basis


@pytest.fixture(scope="module")
def trace():
    return DctWorkload(scale=0.5, seed=2).trace()


class TestDctMath:
    def test_basis_is_orthonormal(self):
        basis = _dct_basis()
        identity = basis @ basis.T
        assert np.allclose(identity, np.eye(BLOCK), atol=1e-12)

    def test_zigzag_visits_every_cell_once(self):
        assert len(ZIGZAG) == BLOCK * BLOCK
        assert len(set(ZIGZAG)) == BLOCK * BLOCK
        assert ZIGZAG[0] == (0, 0)

    def test_zigzag_diagonal_order(self):
        sums = [i + j for i, j in ZIGZAG]
        assert sums == sorted(sums)


class TestDctTrace:
    def test_structures(self, trace):
        assert set(trace.structs) == {
            "image_in",
            "block_buf",
            "coeff_table",
            "quant_table",
            "coded_out",
            "misc",
        }

    def test_every_pixel_read_once(self, trace):
        mask = trace.struct_mask("image_in")
        addresses = trace.addresses[mask]
        # side x side pixels, each read exactly once.
        assert len(addresses) == len(np.unique(addresses))

    def test_block_buffer_hot_and_small(self, trace):
        mask = trace.struct_mask("block_buf")
        addresses = trace.addresses[mask]
        footprint = int(addresses.max() - addresses.min()) + 32
        assert footprint <= BLOCK * BLOCK * 4
        assert len(addresses) > 4 * len(np.unique(addresses))

    def test_output_is_writes(self, trace):
        mask = trace.struct_mask("coded_out")
        assert (trace.kinds[mask] == int(AccessKind.WRITE)).all()
        assert mask.sum() > 0

    def test_coeff_table_read_only(self, trace):
        mask = trace.struct_mask("coeff_table")
        assert (trace.kinds[mask] == int(AccessKind.READ)).all()

    def test_determinism(self):
        a = DctWorkload(scale=0.3, seed=5).trace()
        b = DctWorkload(scale=0.3, seed=5).trace()
        assert (a.addresses == b.addresses).all()

    def test_scale_grows_image(self):
        small = DctWorkload(scale=0.3, seed=1).trace()
        large = DctWorkload(scale=2.0, seed=1).trace()
        assert len(large) > 2 * len(small)

    def test_energy_compaction_limits_output(self, trace):
        # DCT compacts energy: far fewer coded symbols than pixels.
        counts = trace.counts_by_struct()
        assert counts["coded_out"] < counts["image_in"]
