"""Unit tests for interface timing diagrams."""

import pytest

from repro.connectivity.amba import AhbBus, ApbBus
from repro.errors import ConfigurationError
from repro.timing.diagrams import (
    SignalWaveform,
    TimingDiagram,
    ahb_read_diagram,
    apb_read_diagram,
    diagram_to_table,
)


class TestSignalWaveform:
    def test_cycles(self):
        waveform = SignalWaveform("s", ((0, 2), (4, 5)))
        assert waveform.cycles() == {0, 1, 4}
        assert waveform.last_cycle == 4

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            SignalWaveform("s", ((2, 2),))
        with pytest.raises(ConfigurationError):
            SignalWaveform("s", ((-1, 2),))

    def test_overlapping_intervals_rejected(self):
        with pytest.raises(ConfigurationError):
            SignalWaveform("s", ((0, 3), (2, 5)))

    def test_unsorted_intervals_rejected(self):
        with pytest.raises(ConfigurationError):
            SignalWaveform("s", ((4, 5), (0, 1)))


class TestTimingDiagram:
    def test_length(self):
        diagram = TimingDiagram(
            "d",
            (
                SignalWaveform("a", ((0, 2),)),
                SignalWaveform("b", ((3, 6),)),
            ),
        )
        assert diagram.length == 6

    def test_duplicate_signal_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingDiagram(
                "d",
                (
                    SignalWaveform("a", ((0, 1),)),
                    SignalWaveform("a", ((1, 2),)),
                ),
            )

    def test_unknown_class_member_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingDiagram(
                "d",
                (SignalWaveform("a", ((0, 1),)),),
                resource_classes={"bus": ("ghost",)},
            )

    def test_signal_lookup(self):
        diagram = TimingDiagram("d", (SignalWaveform("a", ((0, 1),)),))
        assert diagram.signal("a").name == "a"
        with pytest.raises(ConfigurationError):
            diagram.signal("z")


class TestDiagramToTable:
    def test_resource_classes_merge_signals(self):
        diagram = TimingDiagram(
            "d",
            (
                SignalWaveform("req", ((0, 1),)),
                SignalWaveform("gnt", ((1, 2),)),
                SignalWaveform("data", ((2, 4),)),
            ),
            resource_classes={"d.ctl": ("req", "gnt")},
        )
        table = diagram_to_table(diagram)
        assert table.cycles("d.ctl") == frozenset({0, 1})
        assert table.cycles("d.data") == frozenset({2, 3})

    def test_unclassified_signals_own_resources(self):
        diagram = TimingDiagram(
            "d", (SignalWaveform("x", ((0, 2),)),)
        )
        table = diagram_to_table(diagram)
        assert table.resources == ("d.x",)


class TestProtocolDiagrams:
    """The diagrams abstract to the same timing the component models use."""

    @pytest.mark.parametrize("beats", [1, 4, 8])
    def test_ahb_diagram_matches_component(self, beats):
        ahb = AhbBus()
        table = diagram_to_table(ahb_read_diagram(beats))
        component_table = ahb.reservation_table(beats * ahb.width_bytes)
        # Same end-to-end latency and same initiation interval.
        assert table.length == component_table.length
        assert (
            table.min_initiation_interval()
            == component_table.min_initiation_interval()
        )

    @pytest.mark.parametrize("beats", [1, 2, 4])
    def test_apb_diagram_matches_component(self, beats):
        apb = ApbBus()
        table = diagram_to_table(apb_read_diagram(beats))
        component_table = apb.reservation_table(beats * apb.width_bytes)
        assert table.length == component_table.length
        assert (
            table.min_initiation_interval()
            == component_table.min_initiation_interval()
        )

    def test_ahb_pipelining_visible(self):
        table = diagram_to_table(ahb_read_diagram(4))
        assert table.min_initiation_interval() < table.length

    def test_apb_no_pipelining(self):
        table = diagram_to_table(apb_read_diagram(2))
        assert table.min_initiation_interval() == table.length

    def test_bad_beats_rejected(self):
        with pytest.raises(ConfigurationError):
            ahb_read_diagram(0)
        with pytest.raises(ConfigurationError):
            apb_read_diagram(-1)
