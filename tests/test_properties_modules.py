"""Property-based tests on module and exploration-layer invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.dma import SelfIndirectDma
from repro.memory.stream_buffer import StreamBuffer
from repro.trace.events import AccessKind, TraceBuilder
from repro.util.selection import knee_point, weighted_best

addresses_strategy = st.lists(
    st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200
)


class TestStreamBufferProperties:
    @settings(max_examples=50)
    @given(addresses_strategy)
    def test_never_crashes_and_counts_consistent(self, addresses):
        buffer = StreamBuffer("sb", depth=4, line_size=32)
        for tick, address in enumerate(addresses):
            response = buffer.access(address, 4, AccessKind.READ, tick)
            assert response.latency >= 1
            assert response.refill_bytes >= 0
            assert response.prefetch_bytes >= 0
        assert buffer.hits + buffer.misses == len(addresses)

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=1000))
    def test_pure_sequential_stream_has_one_miss(self, length):
        buffer = StreamBuffer("sb", depth=4, line_size=32)
        for i in range(length):
            buffer.access(0x1000 + 4 * i, 4, AccessKind.READ, i)
        assert buffer.misses == 1

    @settings(max_examples=30)
    @given(addresses_strategy)
    def test_total_prefetch_bounded_by_window_slides(self, addresses):
        buffer = StreamBuffer("sb", depth=4, line_size=32)
        total_prefetch = 0
        for tick, address in enumerate(addresses):
            response = buffer.access(address, 4, AccessKind.READ, tick)
            total_prefetch += response.prefetch_bytes
        # Prefetch per event never exceeds the window size.
        assert total_prefetch <= len(addresses) * 4 * 32


class TestDmaProperties:
    @settings(max_examples=50)
    @given(addresses_strategy, st.integers(min_value=1, max_value=32))
    def test_buffer_never_exceeds_capacity(self, addresses, entries):
        dma = SelfIndirectDma("d", entries=entries, node_size=16, lookahead=2)
        dma.prime(addresses)
        for tick, address in enumerate(addresses):
            dma.access(address, 8, AccessKind.READ, tick * 3)
            assert len(dma._buffer) <= entries
        assert dma.hits + dma.misses == len(addresses)

    @settings(max_examples=30)
    @given(addresses_strategy)
    def test_priming_never_hurts_hit_count(self, addresses):
        """Knowing the chain can only help (with slack to absorb LRU
        order noise on adversarial sequences)."""
        blind = SelfIndirectDma("b", entries=16, node_size=16, lookahead=2)
        primed = SelfIndirectDma("p", entries=16, node_size=16, lookahead=2)
        primed.prime(addresses)
        primed.backing_latency_hint = 0
        for tick, address in enumerate(addresses):
            blind.access(address, 8, AccessKind.READ, tick * 50)
            primed.access(address, 8, AccessKind.READ, tick * 50)
        assert primed.hits >= blind.hits - 2

    @settings(max_examples=30)
    @given(addresses_strategy)
    def test_repeated_same_address_hits(self, addresses):
        dma = SelfIndirectDma("d", entries=8, node_size=16)
        for tick, address in enumerate(addresses):
            dma.access(address, 8, AccessKind.READ, tick)
            repeat = dma.access(address, 8, AccessKind.READ, tick)
            assert repeat.hit


class TestTraceBuilderProperties:
    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 30),
                st.sampled_from([1, 2, 4, 8]),
                st.booleans(),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=100,
        )
    )
    def test_ticks_strictly_increase(self, events):
        builder = TraceBuilder("p")
        for address, size, write, gap in events:
            builder.compute(gap)
            if write:
                builder.write(address, size, "s")
            else:
                builder.read(address, size, "s")
        trace = builder.build()
        ticks = list(trace.ticks)
        assert all(b > a for a, b in zip(ticks, ticks[1:]))
        assert trace.duration > ticks[-1]


objective_points = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)


class TestSelectionProperties:
    @given(objective_points)
    def test_knee_is_member(self, points):
        assert knee_point(points, key=lambda p: p) in points

    @given(objective_points)
    def test_weighted_best_is_member(self, points):
        best = weighted_best(points, key=lambda p: p, weights=(1.0, 2.0))
        assert best in points

    @given(objective_points)
    def test_single_axis_weight_matches_min(self, points):
        best = weighted_best(points, key=lambda p: p, weights=(1.0, 0.0))
        assert best[0] == min(p[0] for p in points)
