"""Exploration-service tests: schemas, queue, store, and the daemon.

Unit layers (schema validation, queue ordering/fairness, job store
long-poll) are tested directly; the end-to-end class drives a real
``ThreadingHTTPServer`` on loopback through :class:`ServiceClient` —
submit → poll → result, CLI parity, cancel, multi-tenant cache
namespaces, and graceful drain.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.apex.explorer import ApexConfig
from repro.conex.explorer import ConExConfig
from repro.core.memorex import MemorExConfig, run_memorex
from repro.errors import ServiceError
from repro.io import export_design_points_json
from repro.service import (
    ExplorationService,
    Job,
    JobQueue,
    JobStore,
    ServiceClient,
    ServiceServer,
    parse_job_spec,
)
from repro.service import jobs as jobstates
from repro.workloads import get_workload

_WORKLOAD = "dct"
_SCALE = 0.05
_SEED = 3


def _spec(**overrides) -> dict:
    base = {"kind": "explore", "workload": _WORKLOAD, "scale": _SCALE,
            "seed": _SEED}
    base.update(overrides)
    return base


def _job(tenant: str = "t", priority: int = 0) -> Job:
    return Job(spec=parse_job_spec(_spec(tenant=tenant, priority=priority)))


class TestSchemas:
    def test_defaults(self):
        spec = parse_job_spec({"workload": _WORKLOAD})
        assert spec.kind == "explore"
        assert spec.tenant == "default"
        assert spec.priority == 0

    def test_header_tenant_wins_over_body(self):
        spec = parse_job_spec(_spec(tenant="body"), tenant="header")
        assert spec.tenant == "header"

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            _spec(kind="nope"),
            {"kind": "explore", "workload": "nope"},
            _spec(backend="fancy"),
            _spec(tenant="../escape"),
            _spec(scale=-1.0),
            _spec(scale="wide"),
            _spec(select=0),
            _spec(keep=0),
            _spec(workers=0),
            _spec(priority=True),  # bools are not job integers
        ],
    )
    def test_rejects_bad_specs(self, payload):
        with pytest.raises(ServiceError) as excinfo:
            parse_job_spec(payload)
        assert excinfo.value.status == 400

    def test_empty_tenant_falls_back_to_default(self):
        assert parse_job_spec(_spec(tenant="")).tenant == "default"

    def test_tenant_slug_is_path_safe(self):
        for bad in ("a/b", "a\\b", ".", "..", "a" * 65, "-lead"):
            with pytest.raises(ServiceError):
                parse_job_spec(_spec(tenant=bad))


class TestJobQueue:
    def test_fifo_within_tenant(self):
        queue = JobQueue()
        jobs = [_job() for _ in range(3)]
        for job in jobs:
            queue.push(job)
        assert [queue.pop() for _ in range(3)] == jobs

    def test_priority_beats_fifo(self):
        queue = JobQueue()
        low = _job(priority=0)
        high = _job(priority=5)
        queue.push(low)
        queue.push(high)
        assert queue.pop() is high
        assert queue.pop() is low

    def test_tenant_fairness_stops_flood_starvation(self):
        queue = JobQueue()
        flood = [_job("flood") for _ in range(10)]
        for job in flood:
            queue.push(job)
        single = _job("single")
        queue.push(single)
        # The flood tenant gets exactly one pop before the single
        # tenant's job is served, despite ten earlier admissions.
        first, second = queue.pop(), queue.pop()
        assert first is flood[0]
        assert second is single

    def test_fairness_round_robins_between_tenants(self):
        queue = JobQueue()
        for _ in range(3):
            queue.push(_job("a"))
            queue.push(_job("b"))
        served = [queue.pop().spec.tenant for _ in range(6)]
        assert served == ["a", "b", "a", "b", "a", "b"]

    def test_bounded_queue_raises_429(self):
        queue = JobQueue(max_pending=2)
        queue.push(_job())
        queue.push(_job())
        with pytest.raises(ServiceError) as excinfo:
            queue.push(_job())
        assert excinfo.value.status == 429

    def test_remove_and_position(self):
        queue = JobQueue()
        first, second = _job(), _job()
        assert queue.push(first) == 0
        assert queue.push(second) == 1
        assert queue.remove(first.id) is first
        assert queue.position(second.id) == 0
        assert queue.remove("nonesuch") is None

    def test_drain_returns_all_pending_in_order(self):
        queue = JobQueue()
        jobs = [_job("a"), _job("b"), _job("a")]
        for job in jobs:
            queue.push(job)
        assert queue.drain() == jobs
        assert len(queue) == 0
        assert queue.pop(timeout=0.01) is None

    def test_pop_blocks_until_push(self):
        queue = JobQueue()
        job = _job()
        threading.Timer(0.05, queue.push, args=(job,)).start()
        assert queue.pop(timeout=2.0) is job


class TestJobStore:
    def test_get_unknown_is_404(self):
        store = JobStore()
        with pytest.raises(ServiceError) as excinfo:
            store.get("nonesuch")
        assert excinfo.value.status == 404

    def test_events_since_filters_by_seq(self):
        store = JobStore()
        job = _job()
        store.add(job)
        store.record_event(job, "one")
        store.record_event(job, "two")
        assert [e["stage"] for e in store.events_since(job)] == ["one", "two"]
        assert [e["stage"] for e in store.events_since(job, since=1)] == ["two"]

    def test_long_poll_wakes_on_new_event(self):
        store = JobStore()
        job = _job()
        store.add(job)
        threading.Timer(0.05, store.record_event, args=(job, "late")).start()
        start = time.monotonic()
        events = store.events_since(job, wait=2.0)
        assert [e["stage"] for e in events] == ["late"]
        assert time.monotonic() - start < 1.5  # woke early, no full wait

    def test_long_poll_returns_immediately_when_terminal(self):
        store = JobStore()
        job = _job()
        store.add(job)
        job.state = jobstates.DONE
        start = time.monotonic()
        assert store.events_since(job, since=99, wait=5.0) == []
        assert time.monotonic() - start < 1.0

    def test_finished_jobs_pruned_oldest_first(self):
        store = JobStore(retain_finished=2)
        done = [_job() for _ in range(3)]
        for job in done:
            store.add(job)
            store.transition(job, jobstates.DONE)
        live = _job()
        store.add(live)
        with pytest.raises(ServiceError):
            store.get(done[0].id)
        assert store.get(done[-1].id) is done[-1]
        assert store.get(live.id) is live


@pytest.fixture(scope="module")
def running_server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("service-cache")
    service = ExplorationService(
        jobs=2, queue_max=16, cache_dir=str(cache_dir), drain_timeout=10.0
    )
    server = ServiceServer(service, host="127.0.0.1", port=0)
    server.start()
    yield server, cache_dir
    service.close()
    server.shutdown()


def _client(server: ServiceServer, tenant: str | None = None) -> ServiceClient:
    return ServiceClient(f"http://{server.address}", tenant=tenant)


class TestServiceEndToEnd:
    def test_submit_poll_result_matches_cli(self, running_server, tmp_path):
        server, _cache_dir = running_server
        client = _client(server)
        job = client.submit(_spec())
        assert job["state"] == "queued"
        stages = []
        final = client.wait(
            job["id"], timeout=120.0,
            on_event=lambda e: stages.append(e["stage"]),
        )
        assert final["state"] == "done"
        assert {"queued", "running", "trace", "apex", "conex", "done"} <= set(
            stages
        )
        points = client.result(job["id"])["result"]["design_points"]
        assert points

        # Byte-for-byte parity with `repro explore --json` on the
        # same workload/spec.
        workload = get_workload(_WORKLOAD, scale=_SCALE, seed=_SEED)
        result = run_memorex(
            workload,
            config=MemorExConfig(
                apex=ApexConfig(select_count=5),
                conex=ConExConfig(phase1_keep=8),
            ),
        )
        json_path = tmp_path / "cli.json"
        export_design_points_json(result.selected_points, json_path)
        assert points == json.loads(json_path.read_text())["design_points"]

    def test_health_and_status_endpoints(self, running_server):
        server, _cache_dir = running_server
        client = _client(server)
        health = client.health()
        assert health["state"] == "serving"
        assert health["concurrency"] == 2
        job = client.submit(_spec(kind="apex"))
        client.wait(job["id"], timeout=120.0)
        status = client.status(job["id"])
        assert status["id"] == job["id"]
        assert any(item["id"] == job["id"] for item in client.jobs())

    def test_unknown_job_is_404(self, running_server):
        server, _cache_dir = running_server
        client = _client(server)
        with pytest.raises(ServiceError) as excinfo:
            client.status("nonesuch")
        assert excinfo.value.status == 404

    def test_result_before_done_is_409(self, running_server):
        server, _cache_dir = running_server
        client = _client(server)
        job = client.submit(_spec())
        with pytest.raises(ServiceError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.status == 409
        client.wait(job["id"], timeout=120.0)

    def test_bad_spec_is_400(self, running_server):
        server, _cache_dir = running_server
        client = _client(server)
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "explore", "workload": "nonesuch"})
        assert excinfo.value.status == 400

    def test_failed_job_reports_error(self, running_server):
        server, _cache_dir = running_server
        client = _client(server)
        # A spec that parses but whose run fails: workers=1 is valid,
        # but a huge select with scale tiny still succeeds — instead
        # force failure via a scale so small the trace is degenerate?
        # The robust route: bad backend config. "remote" with no
        # REPRO_WORKER_ADDRS set fails at backend resolution.
        job = client.submit(_spec(backend="remote"))
        final = client.wait(job["id"], timeout=60.0)
        assert final["state"] == "failed"
        assert "error" in final
        with pytest.raises(ServiceError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.status == 409

    def test_two_tenants_get_distinct_cache_namespaces(self, running_server):
        server, cache_dir = running_server
        alpha = _client(server, tenant="alpha")
        beta = _client(server, tenant="beta")
        job_a = alpha.submit(_spec(kind="apex"))
        job_b = beta.submit(_spec(kind="apex"))
        final_a = alpha.wait(job_a["id"], timeout=120.0)
        final_b = beta.wait(job_b["id"], timeout=120.0)
        assert final_a["state"] == "done"
        assert final_b["state"] == "done"
        assert final_a["tenant"] == "alpha"
        # Identical work, isolated namespaces: same answer, two
        # separate on-disk cache directories, each non-empty.
        result_a = alpha.result(job_a["id"])["result"]
        result_b = beta.result(job_b["id"])["result"]
        assert result_a["architectures"] == result_b["architectures"]
        for tenant in ("alpha", "beta"):
            files = list((cache_dir / tenant).glob("*.simres.pkl"))
            assert files, f"tenant {tenant} has no cache namespace"

    def test_cancel_queued_job(self):
        # A service with zero runners: submissions stay queued.
        service = ExplorationService(jobs=0, queue_max=4)
        with ServiceServer(service, host="127.0.0.1", port=0) as server:
            client = _client(server)
            job = client.submit(_spec())
            cancelled = client.cancel(job["id"])
            assert cancelled["state"] == "cancelled"
            assert cancelled["note"] == "cancelled by client"
            with pytest.raises(ServiceError) as excinfo:
                client.result(job["id"])
            assert excinfo.value.status == 409

    def test_drain_rejects_new_work_and_cancels_queued(self):
        # Zero runners again: the submitted job is still queued when
        # drain fires, so it must come back cancelled with the
        # draining note.
        service = ExplorationService(jobs=0, queue_max=8)
        server = ServiceServer(service, host="127.0.0.1", port=0)
        server.start()
        try:
            client = _client(server)
            queued = client.submit(_spec())
            assert service.drain(timeout=5.0)
            status = client.status(queued["id"])
            assert status["state"] == "cancelled"
            assert status["note"] == "service draining"
            with pytest.raises(ServiceError) as excinfo:
                client.submit(_spec())
            assert excinfo.value.status == 503
            assert client.health()["state"] == "stopped"
        finally:
            server.shutdown()

    def test_http_soak_hundreds_of_sequential_requests(self, running_server):
        """Sequential request churn leaves the daemon healthy and bounded.

        Each request is its own HTTP connection (thread churn in the
        ThreadingHTTPServer) and each rejected submit exercises the
        error path; afterwards the daemon still serves and its job
        store holds only real jobs.
        """
        server, _cache_dir = running_server
        client = _client(server)
        jobs_before = len(client.jobs())
        for i in range(100):
            assert client.health()["state"] == "serving"
            with pytest.raises(ServiceError) as excinfo:
                client.status(f"nonesuch{i}")
            assert excinfo.value.status == 404
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"kind": "explore", "workload": "nope"})
            assert excinfo.value.status == 400
        assert len(client.jobs()) == jobs_before
        assert threading.active_count() < 50

    def test_drain_waits_for_running_job(self):
        service = ExplorationService(jobs=1, queue_max=8)
        service.start()
        client_spec = parse_job_spec(_spec())
        job = Job(spec=client_spec)
        service.store.add(job)
        service.queue.push(job)
        # Give the runner a moment to pick the job up, then drain: the
        # running job must finish (state done), not be killed.
        deadline = time.monotonic() + 5.0
        while job.state == "queued" and time.monotonic() < deadline:
            time.sleep(0.02)
        assert service.drain(timeout=60.0)
        assert job.state == jobstates.DONE
        assert job.result is not None
