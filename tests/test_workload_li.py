"""Unit tests for the mini-Lisp interpreter workload.

Covers both the interpreter semantics (it is a real evaluator — wrong
results would mean the recorded traffic is fiction) and the trace it
generates.
"""

import pytest

from repro.errors import TraceError
from repro.trace.events import TraceBuilder
from repro.workloads import LiWorkload
from repro.workloads.base import AddressMap
from repro.workloads.li import (
    NIL,
    CellRef,
    Machine,
    Symbol,
    _eval,
    _install_builtins,
    parse,
    tokenize,
)


@pytest.fixture
def machine():
    builder = TraceBuilder("li-test")
    m = Machine(builder, AddressMap(), seed=0)
    _install_builtins(m)
    return m


def run(machine, source):
    return _eval(machine, parse(machine, source), NIL)


class TestParser:
    def test_tokenize(self):
        assert tokenize("(+ 1 (f x))") == ["(", "+", "1", "(", "f", "x", ")", ")"]

    def test_parse_atom(self, machine):
        assert parse(machine, "42") == 42
        assert isinstance(parse(machine, "foo"), Symbol)

    def test_parse_list_structure(self, machine):
        expr = parse(machine, "(1 2 3)")
        assert isinstance(expr, CellRef)
        assert machine.car(expr) == 1
        assert machine.car(machine.cdr(expr)) == 2

    def test_unbalanced_rejected(self, machine):
        with pytest.raises(TraceError):
            parse(machine, "(1 2")
        with pytest.raises(TraceError):
            parse(machine, "1 2")


class TestEvaluator:
    def test_arithmetic(self, machine):
        assert run(machine, "(+ 1 2 3)") == 6
        assert run(machine, "(* 2 (- 10 4))") == 12

    def test_comparison(self, machine):
        assert run(machine, "(< 1 2)") == 1
        assert run(machine, "(< 2 1)") is NIL

    def test_if(self, machine):
        assert run(machine, "(if (< 1 2) 10 20)") == 10
        assert run(machine, "(if (< 2 1) 10 20)") == 20
        assert run(machine, "(if (< 2 1) 10)") is NIL

    def test_quote(self, machine):
        value = run(machine, "(quote (1 2))")
        assert isinstance(value, CellRef)
        assert machine.car(value) == 1

    def test_define_and_lookup(self, machine):
        run(machine, "(define x 41)")
        assert run(machine, "(+ x 1)") == 42

    def test_lambda_application(self, machine):
        run(machine, "(define inc (lambda (n) (+ n 1)))")
        assert run(machine, "(inc 41)") == 42

    def test_define_function_sugar(self, machine):
        run(machine, "(define (double n) (* n 2))")
        assert run(machine, "(double 21)") == 42

    def test_recursion_fib(self, machine):
        run(
            machine,
            "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
        )
        assert run(machine, "(fib 10)") == 55

    def test_list_operations(self, machine):
        run(machine, "(define (iota n) (if (= n 0) (quote ()) (cons n (iota (- n 1)))))")
        run(machine, "(define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))")
        assert run(machine, "(sum (iota 10))") == 55

    def test_quicksort(self, machine):
        for source in (
            "(define (iota n) (if (= n 0) (quote ()) (cons n (iota (- n 1)))))",
            "(define (append2 a b) (if (null? a) b "
            "(cons (car a) (append2 (cdr a) b))))",
            "(define (less l p) (if (null? l) (quote ()) "
            "(if (< (car l) p) (cons (car l) (less (cdr l) p)) (less (cdr l) p))))",
            "(define (geq l p) (if (null? l) (quote ()) "
            "(if (< (car l) p) (geq (cdr l) p) (cons (car l) (geq (cdr l) p)))))",
            "(define (qsort l) (if (null? l) (quote ()) "
            "(append2 (qsort (less (cdr l) (car l))) "
            "(cons (car l) (qsort (geq (cdr l) (car l)))))))",
        ):
            run(machine, source)
        sorted_list = run(machine, "(qsort (iota 8))")
        values = []
        cursor = sorted_list
        while cursor is not NIL:
            values.append(machine.car(cursor))
            cursor = machine.cdr(cursor)
        assert values == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_higher_order_map(self, machine):
        run(machine, "(define (iota n) (if (= n 0) (quote ()) (cons n (iota (- n 1)))))")
        run(machine, "(define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))")
        run(machine, "(define (map1 f l) (if (null? l) (quote ()) "
                     "(cons (f (car l)) (map1 f (cdr l)))))")
        assert run(machine, "(sum (map1 (lambda (x) (* x x)) (iota 4)))") == 30

    def test_closure_captures_environment(self, machine):
        run(machine, "(define (adder n) (lambda (m) (+ n m)))")
        run(machine, "(define add5 (adder 5))")
        assert run(machine, "(add5 3)") == 8

    def test_unbound_symbol_raises(self, machine):
        with pytest.raises(TraceError):
            run(machine, "nosuchthing")

    def test_car_of_non_pair_raises(self, machine):
        with pytest.raises(TraceError):
            run(machine, "(car 5)")


class TestMachineInstrumentation:
    def test_cons_records_two_writes(self):
        builder = TraceBuilder("t")
        machine = Machine(builder, AddressMap())
        machine.cons(1, NIL)
        trace = builder.build()
        assert len(trace) == 2
        assert trace.counts_by_struct()["cons_heap"] == 2

    def test_car_cdr_record_reads(self):
        builder = TraceBuilder("t")
        machine = Machine(builder, AddressMap())
        cell = machine.cons(1, 2)
        machine.car(cell)
        machine.cdr(cell)
        trace = builder.build()
        reads = int((trace.kinds == 0).sum())
        assert reads == 2

    def test_gc_sweeps_and_reuses(self):
        builder = TraceBuilder("t")
        machine = Machine(builder, AddressMap())
        from repro.workloads.li import HEAP_CELLS

        for _ in range(HEAP_CELLS + 10):
            machine.cons(0, NIL)
        assert machine.gc_count == 1

    def test_gc_addresses_wrap_within_region(self):
        from repro.workloads.li import CELL_BYTES, HEAP_CELLS

        builder = TraceBuilder("t")
        machine = Machine(builder, AddressMap())
        for _ in range(2 * HEAP_CELLS):
            machine.cons(0, NIL)
        trace = builder.build()
        mask = trace.struct_mask("cons_heap")
        addresses = trace.addresses[mask]
        assert int(addresses.max()) < machine.heap_base + HEAP_CELLS * CELL_BYTES

    def test_live_data_survives_gc(self):
        """Regression: the GC must not clobber live lists (the old
        compacting reset overwrote cells still referenced by the
        program)."""
        from repro.workloads.li import HEAP_CELLS

        builder = TraceBuilder("t")
        machine = Machine(builder, AddressMap())
        head = machine.cons(1, machine.cons(2, NIL))
        for _ in range(HEAP_CELLS + 50):
            machine.cons(0, NIL)
        assert machine.gc_count >= 1
        assert machine.car(head) == 1
        assert machine.car(machine.cdr(head)) == 2

    def test_interning_is_stable(self, machine):
        assert machine.intern("foo") is machine.intern("foo")


class TestLiTrace:
    def test_trace_structures(self):
        trace = LiWorkload(scale=0.08, seed=1).trace()
        assert set(trace.structs) == {
            "cons_heap",
            "symbol_table",
            "eval_stack",
            "globals",
            "misc",
        }
        counts = trace.counts_by_struct()
        assert counts["cons_heap"] > counts["symbol_table"]

    def test_determinism(self):
        a = LiWorkload(scale=0.05, seed=4).trace()
        b = LiWorkload(scale=0.05, seed=4).trace()
        assert len(a) == len(b)
        assert (a.addresses == b.addresses).all()
