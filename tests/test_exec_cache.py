"""Unit tests for the content-addressed simulation result cache."""

import pickle

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.exec.cache import (
    CACHE_DIR_ENV,
    NULL_CACHE,
    NullCache,
    SimulationCache,
    default_cache,
    key_digest,
    sampling_signature,
    set_default_cache,
    simulation_key,
)
from repro.sim.metrics import SimulationResult
from repro.sim.sampling import SamplingConfig


def _arch(mem_library, preset: str, name: str) -> MemoryArchitecture:
    cache = mem_library.get(preset).instantiate("cache")
    dram = mem_library.get("dram").instantiate()
    return MemoryArchitecture(name, [cache], dram, {}, "cache")


def _result(label: str = "r") -> SimulationResult:
    return SimulationResult(
        trace_name="t",
        memory_name=label,
        connectivity_name="c",
        accesses=1,
        sampled_accesses=1,
        avg_latency=1.0,
        total_cycles=1,
        avg_energy_nj=1.0,
        total_energy_nj=1.0,
        miss_ratio=0.0,
        cost_gates=1.0,
        memory_cost_gates=1.0,
        connectivity_cost_gates=0.0,
    )


class TestSimulationKey:
    def test_key_is_stable_across_instances(self, tiny_trace, mem_library):
        a = _arch(mem_library, "cache_8k_32b_2w", "one")
        b = _arch(mem_library, "cache_8k_32b_2w", "one")
        assert simulation_key(tiny_trace, a, None) == simulation_key(
            tiny_trace, b, None
        )

    def test_architecture_name_excluded(self, tiny_trace, mem_library):
        """Content addressing: identical configs share a key, names apart."""
        a = _arch(mem_library, "cache_8k_32b_2w", "alpha")
        b = _arch(mem_library, "cache_8k_32b_2w", "beta")
        assert simulation_key(tiny_trace, a, None) == simulation_key(
            tiny_trace, b, None
        )

    def test_module_config_changes_key(self, tiny_trace, mem_library):
        a = _arch(mem_library, "cache_8k_32b_2w", "m")
        b = _arch(mem_library, "cache_16k_32b_2w", "m")
        assert simulation_key(tiny_trace, a, None) != simulation_key(
            tiny_trace, b, None
        )

    def test_sampling_and_posted_writes_change_key(
        self, tiny_trace, mem_library
    ):
        arch = _arch(mem_library, "cache_8k_32b_2w", "m")
        plain = simulation_key(tiny_trace, arch, None)
        sampled = simulation_key(
            tiny_trace, arch, None,
            sampling=SamplingConfig(on_window=1024, off_ratio=3),
        )
        posted = simulation_key(
            tiny_trace, arch, None, posted_writes=True
        )
        assert len({plain, sampled, posted}) == 3

    def test_connectivity_changes_key(
        self, tiny_trace, cache_architecture, cache_connectivity
    ):
        ideal = simulation_key(tiny_trace, cache_architecture, None)
        wired = simulation_key(
            tiny_trace, cache_architecture, cache_connectivity
        )
        assert ideal != wired

    def test_simulation_does_not_perturb_key(
        self, tiny_trace, cache_architecture
    ):
        """Mutable module counters must stay out of the signature."""
        from repro.sim import simulate

        before = simulation_key(tiny_trace, cache_architecture, None)
        simulate(tiny_trace, cache_architecture)
        after = simulation_key(tiny_trace, cache_architecture, None)
        assert before == after

    def test_key_is_picklable_and_digestible(self, tiny_trace, mem_library):
        key = simulation_key(
            tiny_trace, _arch(mem_library, "cache_8k_32b_2w", "m"), None
        )
        assert pickle.loads(pickle.dumps(key)) == key
        digest = key_digest(key)
        assert len(digest) == 64
        assert digest == key_digest(key)

    def test_sampling_signature_none(self):
        assert sampling_signature(None) is None


class TestSimulationCacheMemory:
    def test_miss_then_hit(self):
        cache = SimulationCache()
        key = ("k",)
        assert cache.get(key) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put(key, _result())
        assert cache.get(key) is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1
        assert key in cache

    def test_clear_resets_everything(self):
        cache = SimulationCache()
        cache.put(("k",), _result())
        cache.get(("k",))
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)

    def test_repr_mentions_counts(self):
        cache = SimulationCache()
        cache.put(("k",), _result())
        assert "1 entries" in repr(cache)


class TestSimulationCacheDisk:
    def test_results_persist_across_instances(self, tmp_path):
        key = ("shared",)
        writer = SimulationCache(tmp_path)
        writer.put(key, _result("persisted"))
        reader = SimulationCache(tmp_path)
        found = reader.get(key)
        assert found is not None
        assert found.memory_name == "persisted"
        assert (reader.hits, reader.misses) == (1, 0)

    @pytest.mark.parametrize(
        "garbage",
        [b"not a pickle", b"garbage\n", b"", b"\x80\x05"],
        ids=["text", "int-opcode", "empty", "truncated-frame"],
    )
    def test_corrupt_file_is_a_miss(self, tmp_path, garbage):
        key = ("torn",)
        cache = SimulationCache(tmp_path)
        cache.put(key, _result())
        path = cache._disk_path(key)
        path.write_bytes(garbage)
        fresh = SimulationCache(tmp_path)
        assert fresh.get(key) is None
        # The corrupt file is evicted so it cannot shadow a later put
        # or cost a doomed read on every future lookup.
        assert not path.exists()

    def test_clear_removes_files(self, tmp_path):
        cache = SimulationCache(tmp_path)
        cache.put(("k",), _result())
        assert list(tmp_path.glob("*.simres.pkl"))
        cache.clear()
        assert not list(tmp_path.glob("*.simres.pkl"))

    def test_contains_consults_disk(self, tmp_path):
        SimulationCache(tmp_path).put(("k",), _result())
        assert ("k",) in SimulationCache(tmp_path)


class TestNullCache:
    def test_never_stores(self):
        cache = NullCache()
        cache.put(("k",), _result())
        assert cache.get(("k",)) is None
        assert ("k",) not in cache
        assert len(cache) == 0

    def test_shared_instance_is_null(self):
        assert isinstance(NULL_CACHE, NullCache)


class TestDefaultCache:
    @pytest.fixture(autouse=True)
    def _isolate_default(self):
        set_default_cache(None)
        yield
        set_default_cache(None)

    def test_lazy_singleton(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        first = default_cache()
        assert first is default_cache()
        assert first.directory is None

    def test_env_enables_disk_layer(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        assert default_cache().directory == tmp_path / "cache"

    def test_set_default_cache(self):
        mine = SimulationCache()
        set_default_cache(mine)
        assert default_cache() is mine
