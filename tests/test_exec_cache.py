"""Unit tests for the content-addressed simulation result cache."""

import os
import pickle
import subprocess
import sys

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.config import CACHE_MAX_MB_ENV, CACHE_URL_ENV
from repro.exec.cache import (
    CACHE_DIR_ENV,
    NULL_CACHE,
    NullCache,
    SimulationCache,
    default_cache,
    key_digest,
    sampling_signature,
    set_default_cache,
    simulation_key,
)
from repro.exec.engine import SimulationJob, simulate_many
from repro.sim.metrics import SimulationResult
from repro.sim.sampling import SamplingConfig


def _arch(mem_library, preset: str, name: str) -> MemoryArchitecture:
    cache = mem_library.get(preset).instantiate("cache")
    dram = mem_library.get("dram").instantiate()
    return MemoryArchitecture(name, [cache], dram, {}, "cache")


def _result(label: str = "r") -> SimulationResult:
    return SimulationResult(
        trace_name="t",
        memory_name=label,
        connectivity_name="c",
        accesses=1,
        sampled_accesses=1,
        avg_latency=1.0,
        total_cycles=1,
        avg_energy_nj=1.0,
        total_energy_nj=1.0,
        miss_ratio=0.0,
        cost_gates=1.0,
        memory_cost_gates=1.0,
        connectivity_cost_gates=0.0,
    )


class TestSimulationKey:
    def test_key_is_stable_across_instances(self, tiny_trace, mem_library):
        a = _arch(mem_library, "cache_8k_32b_2w", "one")
        b = _arch(mem_library, "cache_8k_32b_2w", "one")
        assert simulation_key(tiny_trace, a, None) == simulation_key(
            tiny_trace, b, None
        )

    def test_architecture_name_excluded(self, tiny_trace, mem_library):
        """Content addressing: identical configs share a key, names apart."""
        a = _arch(mem_library, "cache_8k_32b_2w", "alpha")
        b = _arch(mem_library, "cache_8k_32b_2w", "beta")
        assert simulation_key(tiny_trace, a, None) == simulation_key(
            tiny_trace, b, None
        )

    def test_module_config_changes_key(self, tiny_trace, mem_library):
        a = _arch(mem_library, "cache_8k_32b_2w", "m")
        b = _arch(mem_library, "cache_16k_32b_2w", "m")
        assert simulation_key(tiny_trace, a, None) != simulation_key(
            tiny_trace, b, None
        )

    def test_sampling_and_posted_writes_change_key(
        self, tiny_trace, mem_library
    ):
        arch = _arch(mem_library, "cache_8k_32b_2w", "m")
        plain = simulation_key(tiny_trace, arch, None)
        sampled = simulation_key(
            tiny_trace, arch, None,
            sampling=SamplingConfig(on_window=1024, off_ratio=3),
        )
        posted = simulation_key(
            tiny_trace, arch, None, posted_writes=True
        )
        assert len({plain, sampled, posted}) == 3

    def test_connectivity_changes_key(
        self, tiny_trace, cache_architecture, cache_connectivity
    ):
        ideal = simulation_key(tiny_trace, cache_architecture, None)
        wired = simulation_key(
            tiny_trace, cache_architecture, cache_connectivity
        )
        assert ideal != wired

    def test_simulation_does_not_perturb_key(
        self, tiny_trace, cache_architecture
    ):
        """Mutable module counters must stay out of the signature."""
        from repro.sim import simulate

        before = simulation_key(tiny_trace, cache_architecture, None)
        simulate(tiny_trace, cache_architecture)
        after = simulation_key(tiny_trace, cache_architecture, None)
        assert before == after

    def test_key_is_picklable_and_digestible(self, tiny_trace, mem_library):
        key = simulation_key(
            tiny_trace, _arch(mem_library, "cache_8k_32b_2w", "m"), None
        )
        assert pickle.loads(pickle.dumps(key)) == key
        digest = key_digest(key)
        assert len(digest) == 64
        assert digest == key_digest(key)

    def test_sampling_signature_none(self):
        assert sampling_signature(None) is None


class TestSimulationCacheMemory:
    def test_miss_then_hit(self):
        cache = SimulationCache()
        key = ("k",)
        assert cache.get(key) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put(key, _result())
        assert cache.get(key) is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1
        assert key in cache

    def test_clear_resets_everything(self):
        cache = SimulationCache()
        cache.put(("k",), _result())
        cache.get(("k",))
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)

    def test_repr_mentions_counts(self):
        cache = SimulationCache()
        cache.put(("k",), _result())
        assert "1 entries" in repr(cache)


class TestSimulationCacheDisk:
    def test_results_persist_across_instances(self, tmp_path):
        key = ("shared",)
        writer = SimulationCache(tmp_path)
        writer.put(key, _result("persisted"))
        reader = SimulationCache(tmp_path)
        found = reader.get(key)
        assert found is not None
        assert found.memory_name == "persisted"
        assert (reader.hits, reader.misses) == (1, 0)

    @pytest.mark.parametrize(
        "garbage",
        [b"not a pickle", b"garbage\n", b"", b"\x80\x05"],
        ids=["text", "int-opcode", "empty", "truncated-frame"],
    )
    def test_corrupt_file_is_a_miss(self, tmp_path, garbage):
        key = ("torn",)
        cache = SimulationCache(tmp_path)
        cache.put(key, _result())
        path = cache._disk_path(key)
        path.write_bytes(garbage)
        fresh = SimulationCache(tmp_path)
        assert fresh.get(key) is None
        # The corrupt file is evicted so it cannot shadow a later put
        # or cost a doomed read on every future lookup.
        assert not path.exists()

    def test_clear_removes_files(self, tmp_path):
        cache = SimulationCache(tmp_path)
        cache.put(("k",), _result())
        assert list(tmp_path.glob("*.simres.pkl"))
        cache.clear()
        assert not list(tmp_path.glob("*.simres.pkl"))

    def test_contains_consults_disk(self, tmp_path):
        SimulationCache(tmp_path).put(("k",), _result())
        assert ("k",) in SimulationCache(tmp_path)


class TestLayerCounters:
    def test_memory_and_disk_hits_attributed(self, tmp_path):
        key = ("layered",)
        SimulationCache(tmp_path).put(key, _result())
        cache = SimulationCache(tmp_path)
        assert cache.get(key) is not None  # served from disk
        assert cache.get(key) is not None  # read-through: now in memory
        assert (cache.disk_hits, cache.memory_hits) == (1, 1)
        assert cache.layer_counts() == {
            "memory_hits": 1,
            "disk_hits": 1,
            "net_hits": 0,
            "hits": 2,
            "misses": 0,
        }

    def test_clear_resets_layer_counters(self, tmp_path):
        key = ("layered",)
        SimulationCache(tmp_path).put(key, _result())
        cache = SimulationCache(tmp_path)
        cache.get(key)
        cache.get(("absent",))
        cache.clear()
        assert cache.layer_counts() == {
            "memory_hits": 0,
            "disk_hits": 0,
            "net_hits": 0,
            "hits": 0,
            "misses": 0,
        }

    def test_engine_report_surfaces_disk_hits(
        self, tmp_path, tiny_trace, mem_library
    ):
        jobs = [
            SimulationJob(memory=_arch(mem_library, preset, f"m{i}"))
            for i, preset in enumerate(
                ("cache_4k_16b_1w", "cache_8k_32b_1w", "cache_8k_32b_2w")
            )
        ]
        simulate_many(tiny_trace, jobs, cache=SimulationCache(tmp_path))
        cold = SimulationCache(tmp_path)
        report = simulate_many(tiny_trace, jobs, cache=cold)
        assert report.cache_disk_hits == len(jobs)
        assert report.cache_memory_hits == 0
        assert report.cache_net_hits == 0
        assert cold.misses == 0


class TestDiskCap:
    def _entry_size(self, tmp_path) -> int:
        probe = SimulationCache(tmp_path / "probe")
        probe.put(("probe",), _result())
        (path,) = (tmp_path / "probe").glob("*.simres.pkl")
        return path.stat().st_size

    def test_oldest_entries_evicted_first(self, tmp_path):
        size = self._entry_size(tmp_path)
        store = tmp_path / "store"
        uncapped = SimulationCache(store)
        for i in range(3):
            uncapped.put((f"k{i}",), _result(f"r{i}"))
        now = 1_000_000_000
        for i in range(3):  # k0 oldest, k2 newest
            os.utime(uncapped._disk_path((f"k{i}",)), (now + i, now + i))
        capped = SimulationCache(store, max_mb=(3.5 * size) / (1024 * 1024))
        capped.put(("k3",), _result("r3"))
        assert not uncapped._disk_path(("k0",)).exists()
        for name in ("k1", "k2", "k3"):
            assert capped._disk_path((name,)).exists()

    def test_reads_refresh_lru_position(self, tmp_path):
        size = self._entry_size(tmp_path)
        store = tmp_path / "store"
        uncapped = SimulationCache(store)
        for i in range(3):
            uncapped.put((f"k{i}",), _result(f"r{i}"))
        now = 1_000_000_000
        for i in range(3):
            os.utime(uncapped._disk_path((f"k{i}",)), (now + i, now + i))
        # A fresh instance reads k0 from disk, touching its mtime: k1
        # becomes the eviction candidate despite k0's older write.
        reader = SimulationCache(store)
        assert reader.get(("k0",)) is not None
        capped = SimulationCache(store, max_mb=(3.5 * size) / (1024 * 1024))
        capped.put(("k3",), _result("r3"))
        assert capped._disk_path(("k0",)).exists()
        assert not capped._disk_path(("k1",)).exists()

    def test_no_cap_means_no_eviction(self, tmp_path):
        cache = SimulationCache(tmp_path)
        for i in range(8):
            cache.put((f"k{i}",), _result(f"r{i}"))
        assert len(list(tmp_path.glob("*.simres.pkl"))) == 8


_CONTENTION_SCRIPT = """
import pathlib, sys

from repro.exec.cache import SimulationCache
from repro.sim.metrics import SimulationResult

directory = pathlib.Path(sys.argv[1])
tag = sys.argv[2]

def result(label):
    return SimulationResult(
        trace_name="t", memory_name=label, connectivity_name="c",
        accesses=1, sampled_accesses=1, avg_latency=1.0, total_cycles=1,
        avg_energy_nj=1.0, total_energy_nj=1.0, miss_ratio=0.0,
        cost_gates=1.0, memory_cost_gates=1.0, connectivity_cost_gates=0.0,
    )

cache = SimulationCache(directory, max_mb=0.01)
for round_number in range(60):
    for i in range(6):
        key = ("contend", i)
        cache.put(key, result(f"{tag}-{round_number}-{i}"))
        cache._memory.clear()  # force every read through the disk layer
        found = cache.get(key)
        assert found is None or found.memory_name.rsplit("-", 2)[0] in (
            "parent", "child"
        )
    if round_number % 7 == 0:
        # Plant a torn file: readers in either process must treat it
        # as a miss and evict it, never raise.
        victim = cache._disk_path(("contend", round_number % 6))
        try:
            victim.write_bytes(b"torn garbage")
        except OSError:
            pass
print("contention-ok", flush=True)
"""


class TestConcurrentDiskAccess:
    def test_two_processes_share_one_directory(self, tmp_path):
        """Atomic write-rename and corrupt-entry eviction under contention.

        A child process and this one hammer the same six keys in one
        shared cache directory — interleaved puts, forced disk reads,
        LRU eviction from a tiny cap, and periodically planted corrupt
        files. Success means neither process ever crashes and no
        temporary files leak.
        """
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, "-c", _CONTENTION_SCRIPT, str(tmp_path), "child"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        parent = subprocess.run(
            [sys.executable, "-c", _CONTENTION_SCRIPT, str(tmp_path), "parent"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        child_out, _ = child.communicate(timeout=120)
        assert parent.returncode == 0, parent.stdout + parent.stderr
        assert child.returncode == 0, child_out
        assert "contention-ok" in parent.stdout
        assert "contention-ok" in child_out
        # os.replace never leaves half-written files behind.
        assert not list(tmp_path.glob("*.tmp*"))
        # Whatever survived the contention decodes cleanly.
        survivor_cache = SimulationCache(tmp_path)
        for i in range(6):
            survivor_cache.get(("contend", i))  # must not raise


class TestNullCache:
    def test_never_stores(self):
        cache = NullCache()
        cache.put(("k",), _result())
        assert cache.get(("k",)) is None
        assert ("k",) not in cache
        assert len(cache) == 0

    def test_shared_instance_is_null(self):
        assert isinstance(NULL_CACHE, NullCache)


class TestDefaultCache:
    @pytest.fixture(autouse=True)
    def _isolate_default(self):
        set_default_cache(None)
        yield
        set_default_cache(None)

    def test_lazy_singleton(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        first = default_cache()
        assert first is default_cache()
        assert first.directory is None

    def test_env_enables_disk_layer(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        assert default_cache().directory == tmp_path / "cache"

    def test_set_default_cache(self):
        mine = SimulationCache()
        set_default_cache(mine)
        assert default_cache() is mine

    def test_env_configures_cap_and_network_layer(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "5")
        monkeypatch.setenv(CACHE_URL_ENV, "127.0.0.1:1")
        cache = default_cache()
        assert cache.max_mb == 5.0
        assert cache._client is not None
        assert cache._client.url == "127.0.0.1:1"
        cache.close()
