"""Unit tests for the Channel record and the error hierarchy."""

import pytest

from repro.channels import CPU, DRAM, Channel
from repro.errors import (
    ConfigurationError,
    ExplorationError,
    LibraryError,
    ReproError,
    SimulationError,
    TraceError,
)


class TestChannel:
    def test_name(self):
        assert Channel("cpu", "cache").name == "cpu->cache"

    def test_crossing_detection(self):
        assert Channel("cache", DRAM).crosses_chip
        assert Channel(DRAM, "cache").crosses_chip
        assert not Channel(CPU, "cache").crosses_chip

    def test_endpoints(self):
        assert Channel("a", "b").endpoints() == ("a", "b")

    def test_hashable_and_equal(self):
        assert Channel("cpu", "cache") == Channel("cpu", "cache")
        assert len({Channel("cpu", "cache"), Channel("cpu", "cache")}) == 1
        assert Channel("cpu", "cache") != Channel("cache", "cpu")

    def test_constants(self):
        assert CPU == "cpu"
        assert DRAM == "dram"


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            ConfigurationError,
            ExplorationError,
            LibraryError,
            SimulationError,
            TraceError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, ReproError)
        with pytest.raises(ReproError):
            raise subclass("boom")

    def test_catchable_individually(self):
        with pytest.raises(TraceError):
            raise TraceError("x")

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)
