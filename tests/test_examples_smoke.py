"""Smoke tests: every example compiles and exposes a main()."""

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLE_FILES) >= 6


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
class TestEveryExample:
    def test_parses(self, path):
        tree = ast.parse(path.read_text())
        assert tree.body

    def test_has_module_docstring_with_run_line(self, path):
        tree = ast.parse(path.read_text())
        docstring = ast.get_docstring(tree)
        assert docstring, f"{path.name} lacks a docstring"
        assert "Run:" in docstring

    def test_defines_main_and_guard(self, path):
        source = path.read_text()
        tree = ast.parse(source)
        functions = {
            node.name
            for node in tree.body
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions
        assert '__name__ == "__main__"' in source

    def test_imports_resolve(self, path):
        """Importing must succeed (no missing symbols at module level)."""
        spec = importlib.util.spec_from_file_location(
            f"example_{path.stem}", path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)
