"""Tests for the parallel evaluation engine (repro.exec.engine).

The determinism contract — parallel results bit-identical to serial,
ordered by job index — and the cache integration (batch dedup, second
runs free) are the load-bearing guarantees here.
"""

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.conex.estimator import estimate_design
from repro.errors import ExplorationError
from repro.exec.cache import NullCache, SimulationCache
from repro.exec.engine import (
    WORKERS_ENV,
    EstimateJob,
    SimulationJob,
    estimate_many,
    resolve_workers,
    simulate_many,
)

from .conftest import simple_connectivity

_PRESETS = (
    "cache_4k_16b_1w",
    "cache_8k_32b_1w",
    "cache_8k_32b_2w",
    "cache_16k_32b_2w",
)


def _arch(mem_library, preset: str, name: str) -> MemoryArchitecture:
    cache = mem_library.get(preset).instantiate("cache")
    dram = mem_library.get("dram").instantiate()
    return MemoryArchitecture(name, [cache], dram, {}, "cache")


def _jobs(mem_library) -> list[SimulationJob]:
    return [
        SimulationJob(memory=_arch(mem_library, preset, f"m{i}"))
        for i, preset in enumerate(_PRESETS)
    ]


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ExplorationError):
            resolve_workers()

    def test_nonpositive_rejected(self):
        with pytest.raises(ExplorationError):
            resolve_workers(0)


class TestSerialParallelEquivalence:
    def test_parallel_matches_serial_bit_identically(
        self, tiny_trace, mem_library
    ):
        jobs = _jobs(mem_library)
        serial = simulate_many(
            tiny_trace, jobs, workers=1, cache=NullCache()
        )
        parallel = simulate_many(
            tiny_trace, jobs, workers=4, cache=NullCache()
        )
        assert serial.workers == 1
        assert parallel.workers == 4
        assert serial.results == parallel.results

    def test_results_ordered_by_job_index(self, tiny_trace, mem_library):
        jobs = _jobs(mem_library)
        report = simulate_many(
            tiny_trace, jobs, workers=4, cache=NullCache()
        )
        for job, result in zip(jobs, report.results):
            assert result.memory_name == job.memory.name

    def test_empty_batch(self, tiny_trace):
        report = simulate_many(tiny_trace, [], workers=4)
        assert report.results == ()
        assert report.cache_hits == report.cache_misses == 0


class TestEngineCaching:
    def test_second_batch_is_all_hits(self, tiny_trace, mem_library):
        jobs = _jobs(mem_library)
        cache = SimulationCache()
        first = simulate_many(tiny_trace, jobs, cache=cache)
        assert first.cache_misses == len(jobs)
        assert first.cache_hits == 0
        second = simulate_many(tiny_trace, jobs, cache=cache)
        assert second.cache_hits == len(jobs)
        assert second.cache_misses == 0
        assert second.results == first.results

    def test_duplicate_jobs_simulate_once(self, tiny_trace, mem_library):
        job = SimulationJob(
            memory=_arch(mem_library, "cache_8k_32b_2w", "m")
        )
        cache = SimulationCache()
        report = simulate_many(tiny_trace, [job, job, job], cache=cache)
        assert len(cache) == 1
        assert report.results[0] == report.results[1] == report.results[2]
        # Only one simulation actually ran; the in-batch duplicates are
        # accounted separately instead of inflating cache_misses.
        assert report.cache_misses == 1
        assert report.deduplicated == 2
        assert report.cache_hits == 0

    def test_content_shared_results_are_relabelled(
        self, tiny_trace, mem_library
    ):
        """A hit from a same-config arch must not leak the other name."""
        alpha = SimulationJob(
            memory=_arch(mem_library, "cache_8k_32b_2w", "alpha")
        )
        beta = SimulationJob(
            memory=_arch(mem_library, "cache_8k_32b_2w", "beta")
        )
        cache = SimulationCache()
        report = simulate_many(tiny_trace, [alpha, beta], cache=cache)
        assert len(cache) == 1  # one simulation served both
        assert report.results[0].memory_name == "alpha"
        assert report.results[1].memory_name == "beta"
        # Same across separate batches (the cache-hit path).
        rerun = simulate_many(tiny_trace, [beta], cache=cache)
        assert rerun.cache_hits == 1
        assert rerun.results[0].memory_name == "beta"

    def test_null_cache_forces_fresh_runs(self, tiny_trace, mem_library):
        jobs = _jobs(mem_library)[:2]
        cache = NullCache()
        simulate_many(tiny_trace, jobs, cache=cache)
        again = simulate_many(tiny_trace, jobs, cache=cache)
        assert again.cache_hits == 0
        assert again.cache_misses == len(jobs)


class TestEstimateMany:
    def test_matches_direct_estimates_in_order(
        self, tiny_trace, mem_library, conn_library
    ):
        arch = _arch(mem_library, "cache_8k_32b_2w", "m")
        profile = simulate_many(
            tiny_trace,
            [SimulationJob(memory=arch)],
            cache=NullCache(),
        ).results[0]
        connectivities = [
            simple_connectivity(arch, tiny_trace, conn_library, cpu)
            for cpu in ("ahb", "mux", "asb")
        ]
        jobs = [
            EstimateJob(memory=arch, connectivity=c, profile=profile)
            for c in connectivities
        ]
        report = estimate_many(jobs)
        assert len(report.results) == len(jobs)
        for connectivity, estimate in zip(connectivities, report.results):
            assert estimate == estimate_design(arch, connectivity, profile)


class TestExplorerIntegration:
    @pytest.fixture(scope="class")
    def exploration_inputs(self, compress_workload, mem_library):
        from repro.apex.explorer import ApexConfig, explore_memory_architectures

        trace = compress_workload.trace()
        apex = explore_memory_architectures(
            trace,
            mem_library,
            ApexConfig(
                cache_options=(None, "cache_4k_16b_1w", "cache_16k_32b_2w"),
                stream_buffer_options=(None, "stream_buffer_4"),
                dma_options=(None,),
                map_indexed_to_sram=(False,),
                select_count=3,
            ),
            hints=compress_workload.pattern_hints,
        )
        return trace, apex

    def test_repeat_exploration_is_all_phase2_hits(
        self, exploration_inputs, conn_library
    ):
        """Acceptance check: a second identical exploration simulates
        nothing new in Phase II."""
        from repro.conex.explorer import ConExConfig, explore_connectivity

        trace, apex = exploration_inputs
        config = ConExConfig(
            max_logical_connections=3,
            max_assignments_per_level=8,
            phase1_keep=3,
        )
        cache = SimulationCache()
        first = explore_connectivity(
            trace, apex.selected, conn_library, config, cache=cache
        )
        assert first.phase2.cache_misses == len(first.simulated)
        assert first.phase2.cache_hits == 0
        second = explore_connectivity(
            trace, apex.selected, conn_library, config, cache=cache
        )
        assert second.phase2.cache_hits == len(second.simulated)
        assert second.phase2.cache_misses == 0
        assert [p.simulated_objectives for p in second.simulated] == [
            p.simulated_objectives for p in first.simulated
        ]
        assert second.phase2_seconds < first.phase2_seconds

    def test_parallel_exploration_matches_serial(
        self, exploration_inputs, conn_library
    ):
        """The pareto set is workers-invariant (acceptance criterion)."""
        from repro.conex.explorer import ConExConfig, explore_connectivity

        trace, apex = exploration_inputs
        config = ConExConfig(
            max_logical_connections=3,
            max_assignments_per_level=8,
            phase1_keep=3,
        )
        serial = explore_connectivity(
            trace, apex.selected, conn_library, config,
            workers=1, cache=NullCache(),
        )
        parallel = explore_connectivity(
            trace, apex.selected, conn_library, config,
            workers=4, cache=NullCache(),
        )
        assert parallel.workers == 4
        assert [p.simulated_objectives for p in parallel.selected] == [
            p.simulated_objectives for p in serial.selected
        ]
