"""Columnar Phase-I equivalence, plan consistency, and explorer edges.

The refactor's contract: assignment plans enumerate exactly what the
eager enumeration did (names, signatures, thinning), the columnar
estimator returns bit-identical estimates to the scalar path, and
``explore_connectivity`` is invariant to the estimator implementation
and to dispatching through a persistent runtime.
"""

import pytest

from repro.apex.explorer import ApexConfig, explore_memory_architectures
from repro.conex.allocation import enumerate_assignments, plan_assignments
from repro.conex.brg import build_brg
from repro.conex.clustering import clustering_levels
from repro.conex.estimator import (
    REFERENCE_ESTIMATOR_ENV,
    ConnectivityEstimate,
    estimate_design,
    estimate_plan,
)
from repro.conex.explorer import (
    ConExConfig,
    ConnectivityDesignPoint,
    _thin_by_latency,
    explore_connectivity,
)
from repro.errors import ExplorationError
from repro.exec.cache import NullCache
from repro.exec.runtime import ExecutionRuntime

APEX_CONFIG = ApexConfig(
    cache_options=(None, "cache_4k_16b_1w", "cache_16k_32b_2w"),
    stream_buffer_options=(None, "stream_buffer_4"),
    dma_options=(None,),
    map_indexed_to_sram=(False,),
    select_count=3,
)

CONEX_CONFIG = ConExConfig(
    max_logical_connections=3,
    max_assignments_per_level=24,
    phase1_keep=3,
)


@pytest.fixture(scope="module")
def apex(compress_trace, mem_library):
    return explore_memory_architectures(
        compress_trace, mem_library, APEX_CONFIG
    )


class TestPlanMatchesEagerEnumeration:
    def test_names_signatures_and_estimates_agree(
        self, apex, conn_library
    ):
        checked = 0
        for memory_eval in apex.selected:
            memory = memory_eval.architecture
            profile = memory_eval.result
            brg = build_brg(memory, profile)
            for level in clustering_levels(brg):
                plan = plan_assignments(
                    level, conn_library, name_prefix=memory.name,
                    max_assignments=64,
                )
                eager = enumerate_assignments(
                    level, conn_library, name_prefix=memory.name,
                    max_assignments=64,
                )
                assert len(plan) == len(eager)
                estimates = estimate_plan(memory, plan, profile)
                for index, connectivity in enumerate(eager):
                    assert plan.name(index) == connectivity.name
                    assert (
                        plan.preset_signature(index)
                        == connectivity.preset_signature()
                    )
                    reference = estimate_design(
                        memory, connectivity, profile
                    )
                    assert estimates[index] == reference
                    checked += 1
        assert checked > 0

    def test_materialize_equals_eager_architecture(
        self, apex, conn_library
    ):
        memory_eval = apex.selected[0]
        memory = memory_eval.architecture
        brg = build_brg(memory, memory_eval.result)
        level = clustering_levels(brg)[0]
        plan = plan_assignments(
            level, conn_library, name_prefix=memory.name, max_assignments=16
        )
        eager = enumerate_assignments(
            level, conn_library, name_prefix=memory.name, max_assignments=16
        )
        for index, expected in enumerate(eager):
            built = plan.materialize(index)
            assert built.name == expected.name
            assert built.full_signature() == expected.full_signature()

    def test_estimate_plan_subset_indices(self, apex, conn_library):
        memory_eval = apex.selected[0]
        memory = memory_eval.architecture
        profile = memory_eval.result
        brg = build_brg(memory, profile)
        level = clustering_levels(brg)[0]
        plan = plan_assignments(
            level, conn_library, name_prefix=memory.name, max_assignments=16
        )
        subset = list(range(len(plan)))[::2]
        estimates = estimate_plan(memory, plan, profile, subset)
        assert len(estimates) == len(subset)
        for index, estimate in zip(subset, estimates):
            assert estimate == estimate_design(
                memory, plan.materialize(index), profile
            )

    def test_wrong_profile_rejected(self, apex, conn_library):
        first, second = apex.selected[0], apex.selected[1]
        memory = first.architecture
        brg = build_brg(memory, first.result)
        plan = plan_assignments(
            clustering_levels(brg)[0], conn_library,
            name_prefix=memory.name, max_assignments=4,
        )
        with pytest.raises(ExplorationError):
            estimate_plan(memory, plan, second.result)


class TestExplorerEquivalence:
    def _explore(self, trace, apex, conn_library, **kwargs):
        result = explore_connectivity(
            trace, apex.selected, conn_library, CONEX_CONFIG,
            cache=NullCache(), **kwargs,
        )
        return (
            [(p.label(),) + p.estimated_objectives for p in result.estimated],
            [(p.label(),) + p.simulated_objectives for p in result.simulated],
            [(p.label(),) + p.simulated_objectives for p in result.selected],
        )

    def test_columnar_matches_reference_estimator(
        self, compress_trace, apex, conn_library, monkeypatch
    ):
        columnar = self._explore(compress_trace, apex, conn_library)
        monkeypatch.setenv(REFERENCE_ESTIMATOR_ENV, "1")
        reference = self._explore(compress_trace, apex, conn_library)
        assert columnar == reference

    def test_runtime_dispatch_matches_serial(
        self, compress_trace, apex, conn_library
    ):
        serial = self._explore(
            compress_trace, apex, conn_library, workers=1
        )
        with ExecutionRuntime(workers=2) as runtime:
            pooled = self._explore(
                compress_trace, apex, conn_library, workers=2,
                runtime=runtime,
            )
        assert serial == pooled

    def test_repeated_explorations_reuse_one_runtime(
        self, compress_trace, apex, conn_library
    ):
        with ExecutionRuntime(workers=2) as runtime:
            first = self._explore(
                compress_trace, apex, conn_library, runtime=runtime
            )
            pool = runtime._pool
            second = self._explore(
                compress_trace, apex, conn_library, runtime=runtime
            )
            assert runtime._pool is pool
            assert len(runtime._exports) == 1
        assert first == second

    def test_lazy_points_materialize_on_access(
        self, compress_trace, apex, conn_library
    ):
        result = explore_connectivity(
            compress_trace, apex.selected, conn_library, CONEX_CONFIG,
            cache=NullCache(),
        )
        # Phase II materializes the carried survivors; the pruned bulk
        # of Phase I must still be unbuilt.
        unbuilt = [p for p in result.estimated if p._connectivity is None]
        assert len(unbuilt) >= len(result.estimated) - len(result.simulated)
        assert unbuilt
        point = unbuilt[0]
        built = point.connectivity
        assert built.name == point.estimate.connectivity_name
        assert point.connectivity is built


def _point(latency: float, name: str) -> ConnectivityDesignPoint:
    estimate = ConnectivityEstimate(
        memory_name="m",
        connectivity_name=name,
        cost_gates=1.0,
        avg_latency=latency,
        avg_energy_nj=1.0,
        channel_waits={},
    )
    return ConnectivityDesignPoint(
        memory_eval=None, estimate=estimate, builder=lambda: None
    )


class TestThinByLatency:
    def test_count_one_keeps_lowest_latency(self):
        front = [_point(5.0, "a"), _point(1.0, "b"), _point(3.0, "c")]
        thinned = _thin_by_latency(front, 1)
        assert [p.estimate.connectivity_name for p in thinned] == ["b"]

    def test_exact_fit_returns_everything_sorted(self):
        front = [_point(5.0, "a"), _point(1.0, "b"), _point(3.0, "c")]
        thinned = _thin_by_latency(front, 3)
        assert [p.estimate.connectivity_name for p in thinned] == [
            "b", "c", "a",
        ]

    def test_latency_ties_are_stable(self):
        front = [_point(2.0, "a"), _point(2.0, "b"), _point(2.0, "c")]
        thinned = _thin_by_latency(front, 2)
        # sorted() is stable, so ties keep input order; endpoints picked.
        assert [p.estimate.connectivity_name for p in thinned] == ["a", "c"]

    def test_spread_keeps_endpoints(self):
        front = [_point(float(i), str(i)) for i in range(10)]
        thinned = _thin_by_latency(front, 4)
        names = [p.estimate.connectivity_name for p in thinned]
        assert names[0] == "0"
        assert names[-1] == "9"
        assert len(names) == 4

    def test_design_point_requires_exactly_one_source(self):
        with pytest.raises(ExplorationError):
            ConnectivityDesignPoint(memory_eval=None)
        with pytest.raises(ExplorationError):
            ConnectivityDesignPoint(
                memory_eval=None,
                connectivity=object(),
                builder=lambda: None,
            )
