"""Observability layer and typed configuration.

Covers the ``repro.obs`` contract: hierarchical span paths with
monotonic timing, the disabled-mode zero-allocation guarantee, counter
merge from pool workers (including across a fault-forced pool rebuild),
the exporters, the :class:`repro.config.Settings` snapshot (env
precedence, round-trip, historical error types), and the deprecated
flat stats attributes on the explorer results.
"""

import json
import threading
import time

import pytest

from repro import obs
from repro.apex.explorer import ApexResult
from repro.conex.explorer import ConExResult
from repro.config import (
    JOB_TIMEOUT_ENV,
    OBS_ENV,
    WORKERS_ENV,
    Settings,
    current_settings,
    set_settings,
    use_settings,
)
from repro.errors import ExecutionError, ExplorationError
from repro.exec.cache import NullCache, SimulationCache
from repro.exec.engine import SimulationJob, simulate_many
from repro.exec.runtime import FAULT_INJECT_ENV, ExecutionRuntime, RuntimeStats
from repro.obs.registry import ObsSnapshot
from repro.stats import BatchStats

from .test_exec_faults import _jobs


@pytest.fixture
def obs_on():
    """Recording on, registry clean, with guaranteed restore."""
    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    try:
        yield
    finally:
        if not was_enabled:
            obs.disable()
        obs.reset()


class TestSpans:
    def test_nested_paths_and_monotonic_timing(self, obs_on):
        with obs.span("outer"):
            with obs.span("inner"):
                time.sleep(0.02)
        snap = obs.snapshot()
        assert set(snap.spans) == {"outer", "outer/inner"}
        outer_count, outer_wall, outer_cpu = snap.spans["outer"]
        inner_count, inner_wall, inner_cpu = snap.spans["outer/inner"]
        assert outer_count == inner_count == 1
        # The parent encloses the child: its wall clock must dominate,
        # and both must have actually measured the sleep.
        assert outer_wall >= inner_wall >= 0.015
        assert outer_cpu >= inner_cpu >= 0.0

    def test_sibling_spans_share_the_parent_prefix(self, obs_on):
        with obs.span("parent"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        snap = obs.snapshot()
        assert "parent/a" in snap.spans
        assert "parent/b" in snap.spans

    def test_repeated_spans_aggregate(self, obs_on):
        for _ in range(3):
            with obs.span("again"):
                pass
        count, wall, _ = obs.snapshot().spans["again"]
        assert count == 3
        assert wall >= 0.0

    def test_incr_is_thread_safe(self, obs_on):
        def bump():
            for _ in range(1000):
                obs.incr("threads.x")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert obs.snapshot().counters["threads.x"] == 4000


class TestDisabledMode:
    @pytest.fixture(autouse=True)
    def obs_off(self):
        """Force disabled mode (the suite may run under REPRO_OBS=1)."""
        was_enabled = obs.enabled()
        obs.disable()
        obs.reset()
        try:
            yield
        finally:
            obs.reset()
            if was_enabled:
                obs.enable()

    def test_disabled_span_is_a_shared_singleton(self):
        """The zero-allocation guard: while disabled, every span() call
        returns the same no-op object."""
        assert not obs.enabled()
        assert obs.span("a") is obs.span("b")

    def test_disabled_incr_and_gauge_record_nothing(self):
        assert not obs.enabled()
        obs.incr("never", 5)
        obs.gauge("never.g", 1.0)
        with obs.span("never.span"):
            pass
        snap = obs.snapshot()
        assert snap.empty

    def test_enable_disable_roundtrip(self):
        assert not obs.enabled()
        obs.enable()
        try:
            assert obs.enabled()
            assert obs.span("live") is not obs.span("live")
        finally:
            obs.disable()
        assert not obs.enabled()


class TestSnapshotMerge:
    def test_subtract_yields_the_delta(self, obs_on):
        obs.incr("c.x", 2)
        with obs.span("s"):
            pass
        baseline = obs.snapshot()
        obs.incr("c.x", 3)
        obs.incr("c.fresh")
        with obs.span("s"):
            pass
        delta = obs.snapshot().subtract(baseline)
        assert delta.counters["c.x"] == 3
        assert delta.counters["c.fresh"] == 1
        count, _, _ = delta.spans["s"]
        assert count == 1

    def test_merge_folds_a_delta_into_the_registry(self, obs_on):
        obs.incr("m.x", 1)
        delta = ObsSnapshot(
            spans={"w": (2, 0.5, 0.25)},
            counters={"m.x": 4},
            gauges={"m.g": 7.0},
        )
        obs.merge_snapshot(delta)
        snap = obs.snapshot()
        assert snap.counters["m.x"] == 5
        assert snap.spans["w"] == (2, 0.5, 0.25)
        assert snap.gauges["m.g"] == 7.0

    def test_merge_none_is_a_no_op(self, obs_on):
        before = obs.snapshot()
        obs.merge_snapshot(None)
        assert obs.snapshot() == before


class TestWorkerMerge:
    def test_pool_worker_counters_merge_into_parent(
        self, tiny_trace, mem_library, obs_on
    ):
        jobs = _jobs(mem_library)
        with ExecutionRuntime(workers=2) as runtime:
            report = simulate_many(
                tiny_trace, jobs, cache=NullCache(), runtime=runtime
            )
        assert len(report.results) == len(jobs)
        snap = obs.snapshot()
        # Worker-side recordings travelled back through the job-result
        # channel: each job ran exactly one simulation in some worker.
        assert snap.counters["sim.runs"] == len(jobs)
        assert snap.counters["sim.accesses"] == len(jobs) * len(tiny_trace)
        assert "sim.run" in snap.spans
        assert snap.spans["sim.run"][0] == len(jobs)
        # Engine-side accounting was recorded in the parent.
        assert snap.counters["exec.jobs"] == len(jobs)
        assert snap.counters["runtime.dispatches"] >= 1
        assert snap.counters["runtime.jobs"] == len(jobs)

    def test_worker_counters_survive_a_pool_rebuild(
        self, tiny_trace, mem_library, obs_on, monkeypatch, tmp_path
    ):
        """A SIGKILLed worker's chunk is re-dispatched; the merged
        counters must cover every job exactly once."""
        jobs = _jobs(mem_library)
        monkeypatch.setenv(
            FAULT_INJECT_ENV, f"once:{tmp_path / 'obs.marker'}"
        )
        with ExecutionRuntime(workers=2) as runtime:
            report = simulate_many(
                tiny_trace, jobs, cache=NullCache(), runtime=runtime
            )
            assert runtime.stats.pool_rebuilds >= 1
        assert (tmp_path / "obs.marker").exists(), "no fault was injected"
        assert len(report.results) == len(jobs)
        snap = obs.snapshot()
        assert snap.counters["sim.runs"] == len(jobs)
        assert snap.counters["runtime.pool_rebuilds"] >= 1
        assert snap.counters["runtime.retries"] >= 1

    def test_serial_path_records_in_process(self, tiny_trace, mem_library, obs_on):
        jobs = _jobs(mem_library)
        report = simulate_many(tiny_trace, jobs, workers=1, cache=NullCache())
        assert len(report.results) == len(jobs)
        snap = obs.snapshot()
        assert snap.counters["sim.runs"] == len(jobs)
        assert snap.counters["exec.cache_misses"] == len(jobs)
        assert snap.counters["exec.cache_hits"] == 0

    def test_cache_hits_are_counted(self, tiny_trace, mem_library, obs_on):
        jobs = _jobs(mem_library)
        cache = SimulationCache()
        simulate_many(tiny_trace, jobs, workers=1, cache=cache)
        first = obs.snapshot()
        assert first.counters["exec.cache_misses"] == len(jobs)
        simulate_many(tiny_trace, jobs, workers=1, cache=cache)
        second = obs.snapshot()
        assert (
            second.counters["exec.cache_hits"]
            - first.counters["exec.cache_hits"]
            == len(jobs)
        )
        assert second.counters["cache.hits"] >= len(jobs)


class TestExport:
    def test_as_dict_shape(self, obs_on):
        obs.incr("e.count", 2)
        obs.gauge("e.gauge", 1.5)
        with obs.span("e.span"):
            pass
        document = obs.as_dict(extra={"runtime": {"batches": 1}})
        assert set(document["settings"]) >= {"workers", "obs", "cache_dir"}
        assert document["counters"]["e.count"] == 2
        assert document["gauges"]["e.gauge"] == 1.5
        assert document["spans"]["e.span"]["count"] == 1
        assert document["runtime"] == {"batches": 1}

    def test_export_json_writes_the_document(self, obs_on, tmp_path):
        obs.incr("j.x")
        path = obs.export_json(tmp_path / "metrics.json")
        payload = json.loads(path.read_text())
        assert payload["counters"]["j.x"] == 1

    def test_render_text_lists_spans_and_counters(self, obs_on):
        with obs.span("t.span"):
            pass
        obs.incr("t.count", 3)
        text = obs.render_text()
        assert "== observability ==" in text
        assert "t.span" in text
        assert "t.count" in text

    def test_render_text_empty_registry(self, obs_on):
        assert "(nothing recorded)" in obs.render_text()


class TestSettings:
    def test_defaults(self):
        settings = Settings.from_env({})
        assert settings == Settings()
        assert settings.workers == 1
        assert settings.persistent_runtime is True
        assert settings.job_timeout is None
        assert settings.max_retries == 2
        assert settings.obs is False

    def test_env_precedence_is_dynamic(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert current_settings().workers == 3
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert current_settings().workers == 5

    def test_installed_settings_override_the_environment(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        with use_settings(Settings(workers=7)) as installed:
            assert current_settings() is installed
            assert current_settings().workers == 7
        assert current_settings().workers == 3

    def test_set_settings_returns_the_previous_override(self):
        explicit = Settings(workers=2)
        assert set_settings(explicit) is None
        try:
            assert current_settings() is explicit
        finally:
            assert set_settings(None) is explicit

    def test_as_env_round_trips(self):
        settings = Settings(
            workers=4,
            persistent_runtime=False,
            job_timeout=2.5,
            max_retries=0,
            cache_dir="/tmp/cache",
            fault_inject="always",
            reference_sim=True,
            obs=True,
            shm_manifest_dir="/tmp/shm",
        )
        assert Settings.from_env(settings.as_env()) == settings

    def test_historical_error_types(self):
        with pytest.raises(ExplorationError):
            Settings.from_env({WORKERS_ENV: "many"})
        with pytest.raises(ExplorationError):
            Settings(workers=0)
        with pytest.raises(ExecutionError):
            Settings.from_env({JOB_TIMEOUT_ENV: "soon"})
        with pytest.raises(ExecutionError):
            Settings(job_timeout=-1.0)
        with pytest.raises(ExecutionError):
            Settings(max_retries=-1)

    def test_obs_env_parses_truthily(self):
        assert Settings.from_env({OBS_ENV: "1"}).obs is True
        assert Settings.from_env({OBS_ENV: "true"}).obs is True
        assert Settings.from_env({OBS_ENV: "0"}).obs is False

    def test_as_dict_mirrors_fields(self):
        as_dict = Settings(workers=2).as_dict()
        assert as_dict["workers"] == 2
        assert "shm_manifest_dir" in as_dict


class TestDeprecatedStats:
    def test_apex_flat_names_warn_and_resolve(self):
        result = ApexResult(
            trace_name="t",
            evaluated=(),
            selected=(),
            stats=BatchStats(pool_rebuilds=2, degraded=True),
        )
        with pytest.warns(DeprecationWarning, match="ApexResult.pool_rebuilds"):
            assert result.pool_rebuilds == 2
        with pytest.warns(DeprecationWarning, match="ApexResult.degraded"):
            assert result.degraded is True

    def test_conex_flat_names_warn_and_resolve(self):
        result = ConExResult(
            trace_name="t",
            estimated=(),
            simulated=(),
            selected=(),
            brgs={},
            phase2=BatchStats(cache_hits=3, cache_misses=1, deduplicated=2),
        )
        with pytest.warns(
            DeprecationWarning, match="ConExResult.phase2_cache_hits"
        ):
            assert result.phase2_cache_hits == 3
        with pytest.warns(DeprecationWarning):
            assert result.phase2_cache_misses == 1
        with pytest.warns(DeprecationWarning):
            assert result.phase2_deduplicated == 2
        with pytest.warns(DeprecationWarning):
            assert result.phase2_pool_rebuilds == 0
        with pytest.warns(DeprecationWarning):
            assert result.phase2_degraded is False

    def test_as_dict_skips_bulky_payloads(self):
        result = ApexResult(trace_name="t", evaluated=(), selected=())
        as_dict = result.as_dict()
        assert "evaluated" not in as_dict
        assert as_dict["stats"]["pool_rebuilds"] == 0

    def test_runtime_fault_summary(self):
        assert RuntimeStats().fault_summary() is None
        stats = RuntimeStats(
            batches=1, retries=2, pool_rebuilds=1, timeouts=1,
            degraded_batches=1,
        )
        summary = stats.fault_summary()
        assert "1 pool rebuild(s)" in summary
        assert "2 retry round(s)" in summary
        assert "1 timeout(s)" in summary
        assert "degraded to serial" in summary


class TestCliMetrics:
    def test_explore_metrics_json_covers_the_stack(self, tmp_path):
        """Acceptance: ``repro explore --metrics-json`` emits spans and
        counters spanning both ConEx phases, the engine cache, and the
        runtime."""
        from repro.cli import main

        path = tmp_path / "metrics.json"
        was_enabled = obs.enabled()
        try:
            code = main(
                [
                    "explore",
                    "vocoder",
                    "--scale",
                    "0.3",
                    "--select",
                    "2",
                    "--keep",
                    "3",
                    "--metrics-json",
                    str(path),
                ]
            )
        finally:
            if not was_enabled:
                obs.disable()
            obs.reset()
        assert code == 0
        payload = json.loads(path.read_text())
        spans = payload["spans"]
        counters = payload["counters"]
        assert any(name.endswith("conex.phase1") for name in spans)
        assert any(name.endswith("conex.phase2") for name in spans)
        assert any("apex.evaluate" in name for name in spans)
        # Candidate evaluation routes through the batch evaluator, so
        # the simulation layer shows up as signature-group spans (a
        # plain ``sim.run`` span appears only on batch-ineligible runs).
        assert any(
            "sim.batch.group" in name or "sim.run" in name for name in spans
        )
        assert counters["exec.batch_groups"] >= 1
        assert counters["sim.batch.delta_pass_candidates"] >= 1
        assert counters["exec.jobs"] > 0
        assert "exec.cache_hits" in counters
        assert "exec.cache_misses" in counters
        assert "exec.deduplicated" in counters
        assert "runtime.retries" in counters
        assert "runtime.pool_rebuilds" in counters
        assert counters["conex.pareto_survivors"] >= 1
        # Serial run: the persistent runtime never dispatches, but its
        # stats still export through the unified report channel.
        assert payload["runtime"]["batches"] >= 0
        assert payload["settings"]["workers"] == 1
