"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import Cache
from repro.timing.reservation import ReservationTable
from repro.trace.events import AccessKind
from repro.util.pareto import dominates, pareto_front, pareto_indices
from repro.util.stats import RunningStats

points_2d = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)

points_3d = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)


class TestParetoProperties:
    @given(points_2d)
    def test_front_is_nonempty_and_subset(self, points):
        front = pareto_front(points, key=lambda p: p)
        assert front
        assert all(p in points for p in front)

    @given(points_2d)
    def test_no_front_point_dominated_by_any_point(self, points):
        front = pareto_front(points, key=lambda p: p)
        for candidate in front:
            assert not any(dominates(other, candidate) for other in points)

    @given(points_2d)
    def test_every_excluded_point_is_dominated(self, points):
        front_indices = set(pareto_indices(points))
        for i, point in enumerate(points):
            if i not in front_indices:
                assert any(
                    dominates(q, point)
                    for j, q in enumerate(points)
                    if j != i
                )

    @given(points_3d)
    def test_front_idempotent(self, points):
        front = pareto_front(points, key=lambda p: p)
        again = pareto_front(front, key=lambda p: p)
        assert front == again

    @given(points_2d)
    def test_dominance_is_irreflexive_and_antisymmetric(self, points):
        for p in points:
            assert not dominates(p, p)
        for p in points:
            for q in points:
                if dominates(p, q):
                    assert not dominates(q, p)

    @given(
        points_2d,
        st.tuples(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        ),
    )
    def test_adding_dominated_point_preserves_front(self, points, extra):
        front = pareto_front(points, key=lambda p: p)
        dominated = (extra[0] + front[0][0] + 1.0, extra[1] + front[0][1] + 1.0)
        new_front = pareto_front(points + [dominated], key=lambda p: p)
        assert set(new_front) == set(front)


class TestRunningStatsProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    def test_matches_batch_computation(self, values):
        stats = RunningStats()
        stats.extend(values)
        mean = sum(values) / len(values)
        assert abs(stats.mean - mean) < 1e-6 * max(1.0, abs(mean))
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)
        assert stats.count == len(values)
        assert stats.variance >= 0.0

    @given(
        st.lists(
            st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        st.lists(
            st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
    )
    def test_merge_associativity(self, first, second):
        a, b, combined = RunningStats(), RunningStats(), RunningStats()
        a.extend(first)
        b.extend(second)
        combined.extend(first + second)
        merged = a.merge(b)
        assert merged.count == combined.count
        assert abs(merged.mean - combined.mean) < 1e-6 * max(
            1.0, abs(combined.mean)
        )
        assert abs(merged.variance - combined.variance) <= 1e-5 * max(
            1.0, combined.variance
        )


usage_strategy = st.dictionaries(
    st.sampled_from(["bus", "arb", "data", "dram"]),
    st.sets(st.integers(min_value=0, max_value=12), min_size=1, max_size=6),
    min_size=1,
    max_size=4,
)


class TestReservationTableProperties:
    @given(usage_strategy)
    def test_mii_within_bounds(self, usage):
        table = ReservationTable(usage)
        mii = table.min_initiation_interval()
        assert 1 <= mii <= table.length

    @given(usage_strategy)
    def test_mii_is_conflict_free(self, usage):
        table = ReservationTable(usage)
        mii = table.min_initiation_interval()
        assert not table.conflicts_with(table, mii)

    @given(usage_strategy)
    def test_conflict_symmetry(self, usage):
        table = ReservationTable(usage)
        for offset in range(1, table.length + 1):
            assert table.conflicts_with(table, offset) == table.conflicts_with(
                table, -offset
            )

    @given(usage_strategy, st.integers(min_value=0, max_value=8))
    def test_shift_preserves_structure(self, usage, offset):
        table = ReservationTable(usage)
        shifted = table.shifted(offset)
        assert shifted.length == table.length + offset
        assert shifted.resources == table.resources


@st.composite
def cache_accesses(draw):
    capacity = draw(st.sampled_from([256, 1024, 4096]))
    line = draw(st.sampled_from([16, 32]))
    ways = draw(st.sampled_from([1, 2, 4]))
    addresses = draw(
        st.lists(
            st.integers(min_value=0, max_value=1 << 16),
            min_size=1,
            max_size=150,
        )
    )
    return capacity, line, ways, addresses


class TestCacheProperties:
    @settings(max_examples=40)
    @given(cache_accesses())
    def test_counts_consistent(self, setup):
        capacity, line, ways, addresses = setup
        cache = Cache("c", capacity, line, ways)
        for tick, address in enumerate(addresses):
            response = cache.access(address, 4, AccessKind.READ, tick)
            assert response.latency >= 1
            assert response.refill_bytes in (0, line)
        assert cache.hits + cache.misses == len(addresses)
        assert 0.0 <= cache.miss_ratio <= 1.0

    @settings(max_examples=40)
    @given(cache_accesses())
    def test_repeat_access_hits(self, setup):
        capacity, line, ways, addresses = setup
        cache = Cache("c", capacity, line, ways)
        for tick, address in enumerate(addresses):
            cache.access(address, 4, AccessKind.READ, tick)
            # An immediate repeat of the same address always hits.
            assert cache.access(address, 4, AccessKind.READ, tick).hit

    @settings(max_examples=30)
    @given(cache_accesses())
    def test_determinism(self, setup):
        capacity, line, ways, addresses = setup
        a = Cache("a", capacity, line, ways)
        b = Cache("b", capacity, line, ways)
        for tick, address in enumerate(addresses):
            ra = a.access(address, 4, AccessKind.READ, tick)
            rb = b.access(address, 4, AccessKind.READ, tick)
            assert ra.hit == rb.hit
            assert ra.refill_bytes == rb.refill_bytes
