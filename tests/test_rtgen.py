"""Unit tests for RTGEN-style table generation."""

import pytest

from repro.connectivity.amba import AhbBus, ApbBus, AsbBus
from repro.errors import ConfigurationError
from repro.timing.rtgen import (
    OperationDescription,
    Stage,
    bus_transfer_description,
    compose_operation_tables,
    generate_table,
    memory_access_description,
)
from repro.timing.reservation import ReservationTable


class TestStageValidation:
    def test_no_resources_rejected(self):
        with pytest.raises(ConfigurationError):
            Stage("s", (), 1)

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Stage("s", ("r",), 0)

    def test_negative_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            Stage("s", ("r",), 1, overlap=-1)

    def test_empty_operation_rejected(self):
        with pytest.raises(ConfigurationError):
            OperationDescription("op", ())

    def test_first_stage_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            OperationDescription("op", (Stage("s", ("r",), 1, overlap=1),))


class TestGenerateTable:
    def test_sequential_stages(self):
        operation = OperationDescription(
            "op",
            (
                Stage("a", ("bus",), 2),
                Stage("b", ("mem",), 3),
            ),
        )
        table = generate_table(operation)
        assert table.cycles("bus") == frozenset({0, 1})
        assert table.cycles("mem") == frozenset({2, 3, 4})
        assert table.length == 5

    def test_overlapping_stages(self):
        operation = OperationDescription(
            "op",
            (
                Stage("a", ("bus",), 3),
                Stage("b", ("mem",), 3, overlap=2),
            ),
        )
        table = generate_table(operation)
        assert table.cycles("mem") == frozenset({1, 2, 3})

    def test_same_resource_conflict_rejected(self):
        operation = OperationDescription(
            "op",
            (
                Stage("a", ("bus",), 3),
                Stage("b", ("bus",), 2, overlap=1),
            ),
        )
        with pytest.raises(ConfigurationError):
            generate_table(operation)

    def test_same_resource_sequential_allowed(self):
        operation = OperationDescription(
            "op",
            (
                Stage("a", ("bus",), 2),
                Stage("wait", ("mem",), 4),
                Stage("return", ("bus",), 2),
            ),
        )
        table = generate_table(operation)
        assert table.cycles("bus") == frozenset({0, 1, 6, 7})

    def test_excessive_overlap_rejected(self):
        operation = OperationDescription(
            "op",
            (
                Stage("a", ("x",), 1),
                Stage("b", ("y",), 1, overlap=5),
            ),
        )
        with pytest.raises(ConfigurationError):
            generate_table(operation)


class TestGeneratorMatchesComponents:
    """The hand-specialized component tables are instances of the
    generic descriptions — cross-check them."""

    @pytest.mark.parametrize("size", [4, 16, 32])
    def test_ahb(self, size):
        ahb = AhbBus()
        generated = generate_table(
            bus_transfer_description(
                "ahb",
                beats=ahb.beats(size),
                base_latency=ahb.base_latency,
                cycles_per_beat=ahb.cycles_per_beat,
                pipelined=True,
            )
        )
        assert generated == ahb.reservation_table(size)

    @pytest.mark.parametrize("size", [4, 16, 32])
    def test_asb(self, size):
        asb = AsbBus()
        generated = generate_table(
            bus_transfer_description(
                "asb",
                beats=asb.beats(size),
                base_latency=asb.base_latency,
                cycles_per_beat=asb.cycles_per_beat,
                pipelined=False,
            )
        )
        assert generated == asb.reservation_table(size)

    @pytest.mark.parametrize("size", [4, 8])
    def test_apb(self, size):
        apb = ApbBus()
        generated = generate_table(
            bus_transfer_description(
                "apb",
                beats=apb.beats(size),
                base_latency=apb.base_latency,
                cycles_per_beat=apb.cycles_per_beat,
                pipelined=False,
            )
        )
        assert generated == apb.reservation_table(size)


class TestMemoryAccessDescription:
    def test_port_released_during_array(self):
        table = generate_table(
            memory_access_description("cache", port_cycles=1, array_cycles=2)
        )
        assert table.cycles("cache.port") == frozenset({0})
        assert table.cycles("cache.array") == frozenset({1, 2})
        # Initiation interval limited by the array, not the port.
        assert table.min_initiation_interval() == 2

    def test_multiple_ports(self):
        table = generate_table(
            memory_access_description(
                "sram", port_cycles=1, array_cycles=1, ports=("rd", "wr")
            )
        )
        assert "sram.rd" in table.resources
        assert "sram.wr" in table.resources


class TestComposeOperationTables:
    def test_end_to_end_chain(self):
        tables = {
            "cpu_bus": ReservationTable({"ahb.bus": range(3)}),
            "cache": ReservationTable({"cache.port": [0]}),
            "offchip": ReservationTable({"pad.bus": range(8)}),
        }
        composed = compose_operation_tables(
            tables, order=("cpu_bus", "cache", "offchip")
        )
        assert composed.cycles("cache.port") == frozenset({3})
        assert composed.cycles("pad.bus") == frozenset(range(4, 12))
        assert composed.length == 12

    def test_gaps(self):
        tables = {
            "a": ReservationTable({"x": [0]}),
            "b": ReservationTable({"y": [0]}),
        }
        composed = compose_operation_tables(
            tables, order=("a", "b"), gaps={"b": 2}
        )
        assert composed.cycles("y") == frozenset({3})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            compose_operation_tables({}, order=("ghost",))
