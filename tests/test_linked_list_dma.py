"""Unit tests for the chain-following linked-list DMA."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.dma import SelfIndirectDma
from repro.memory.linked_list_dma import LinkedListDma
from repro.trace.events import AccessKind

R = AccessKind.READ

CHAIN = [0x1000 + i * 0x40 for i in range(6)]
EVICT = [0x80000 + i * 16 for i in range(64)]

#: Two traversals of the chain separated by eviction traffic — the
#: chain's pointers are stable across traversals, the eviction
#: addresses are visited once.
SEQUENCE = CHAIN + EVICT + CHAIN


def run(dma, addresses, start_tick, gap=5):
    tick = start_tick
    responses = []
    for address in addresses:
        responses.append(dma.access(address, 8, R, tick))
        tick += gap
    return responses, tick


class TestValidation:
    def test_bad_max_chain(self):
        with pytest.raises(ConfigurationError):
            LinkedListDma("d", max_chain=1)


class TestPointerRecovery:
    def make(self, sequence=SEQUENCE):
        dma = LinkedListDma(
            "ll", entries=16, node_size=16, lookahead=0, max_chain=32
        )
        dma.backing_latency_hint = 30
        dma.prime(sequence)
        return dma

    def test_stable_pointers_recovered(self):
        dma = self.make()
        chunks = [a // 16 for a in CHAIN]
        for current, nxt in zip(chunks, chunks[1:]):
            assert dma._stable_next[current] == nxt

    def test_single_visit_nodes_have_no_pointer(self):
        dma = self.make()
        for address in EVICT:
            assert address // 16 not in dma._stable_next

    def test_varying_successor_not_stable(self):
        # A hash-probe-like node followed by different nodes each time.
        sequence = [0x100, 0x200, 0x500, 0x100, 0x300, 0x500]
        dma = self.make(sequence)
        assert 0x100 // 16 not in dma._stable_next

    def test_unprimed_never_bursts(self):
        dma = LinkedListDma("ll", entries=16, node_size=16, lookahead=0)
        run(dma, CHAIN * 2, 0)
        assert dma.burst_prefetches == 0


class TestBurstBehaviour:
    def make(self):
        dma = LinkedListDma(
            "ll", entries=16, node_size=16, lookahead=0, max_chain=32
        )
        dma.backing_latency_hint = 30
        dma.prime(SEQUENCE)
        return dma

    def test_first_traversal_bursts_from_head(self):
        dma = self.make()
        responses, _ = run(dma, CHAIN, 0, gap=40)
        # The head access finds the stable chain and bursts it; the
        # remaining accesses hit the bursted nodes.
        assert dma.burst_prefetches >= 1
        assert all(r.hit for r in responses[1:])

    def test_burst_moves_whole_chain(self):
        dma = self.make()
        responses, _ = run(dma, CHAIN, 0, gap=40)
        assert responses[0].prefetch_bytes >= len(CHAIN) * 16

    def test_retraversal_after_eviction_bursts_again(self):
        dma = self.make()
        _, tick = run(dma, CHAIN, 0, gap=40)
        bursts = dma.burst_prefetches
        _, tick = run(dma, EVICT, tick)  # wipes the 16-entry buffer
        responses, _ = run(dma, CHAIN, tick, gap=40)
        assert dma.burst_prefetches > bursts
        assert all(r.hit for r in responses[1:])

    def test_chain_members_stagger_behind_one_round_trip(self):
        dma = self.make()
        responses, _ = run(dma, CHAIN, 0, gap=1)
        # Chasing at 1 cycle/hop: the burst means stalls stay near the
        # single round trip instead of one round trip per hop.
        tail_latencies = [r.latency for r in responses[1:]]
        assert max(tail_latencies) <= 40

    def test_beats_plain_self_indirect_on_fast_chase(self):
        plain = SelfIndirectDma("si", entries=16, node_size=16, lookahead=1)
        plain.backing_latency_hint = 30
        memo = self.make()
        plain.prime(SEQUENCE)
        plain_responses, _ = run(plain, CHAIN, 0, gap=2)
        memo_responses, _ = run(memo, CHAIN, 0, gap=2)
        # Module latency covers stalls only; each miss additionally
        # costs a backing round trip in the full system. Compare total
        # penalties with that round trip charged per miss.
        round_trip = 30
        plain_total = (
            sum(r.latency for r in plain_responses)
            + plain.misses * round_trip
        )
        memo_total = (
            sum(r.latency for r in memo_responses)
            + memo.misses * round_trip
        )
        assert memo_total < plain_total

    def test_max_chain_caps_burst(self):
        dma = LinkedListDma(
            "ll", entries=64, node_size=16, lookahead=0, max_chain=3
        )
        dma.backing_latency_hint = 10
        long_chain = [0x1000 + i * 0x40 for i in range(10)]
        dma.prime(long_chain + long_chain)
        response = dma.access(long_chain[0], 8, R, 0)
        assert response.prefetch_bytes <= 3 * 16

    def test_cyclic_chain_terminates(self):
        dma = LinkedListDma(
            "ll", entries=16, node_size=16, lookahead=0, max_chain=32
        )
        dma.backing_latency_hint = 10
        cycle = [0x100, 0x200, 0x300]
        dma.prime(cycle * 4)
        response = dma.access(cycle[0], 8, R, 0)
        assert response.prefetch_bytes <= 3 * 16

    def test_reset_keeps_pointers_but_clears_counters(self):
        dma = self.make()
        run(dma, CHAIN, 0, gap=40)
        dma.reset()
        assert dma.burst_prefetches == 0
        # Pointers come from priming, which reset() does not undo.
        assert dma._stable_next


class TestModels:
    def test_area_exceeds_plain_dma(self):
        plain = SelfIndirectDma("si", entries=32, node_size=16)
        memo = LinkedListDma("ll", entries=32, node_size=16)
        assert memo.area_gates > plain.area_gates

    def test_library_presets(self, mem_library):
        for name in ("ll_dma_32", "ll_dma_64"):
            module = mem_library.get(name).instantiate()
            assert isinstance(module, LinkedListDma)

    def test_apex_accepts_ll_dma_option(
        self, compress_trace, compress_workload, mem_library
    ):
        from repro.apex.explorer import ApexConfig, explore_memory_architectures

        config = ApexConfig(
            cache_options=("cache_4k_16b_1w",),
            stream_buffer_options=(None,),
            dma_options=("ll_dma_32",),
            map_indexed_to_sram=(False,),
            select_count=2,
        )
        result = explore_memory_architectures(
            compress_trace, mem_library, config,
            hints=compress_workload.pattern_hints,
        )
        kinds = {
            m.kind
            for e in result.evaluated
            for m in e.architecture.modules.values()
        }
        assert "linked_list_dma" in kinds
