"""Unit tests for the analytic area and energy models and the library."""

import pytest

from repro.errors import ConfigurationError, LibraryError
from repro.memory.area import (
    cache_area_gates,
    controller_area_gates,
    prefetch_buffer_area_gates,
    sram_area_gates,
)
from repro.memory.energy import (
    cache_access_energy_nj,
    dram_access_energy_nj,
    dram_transaction_energy_nj,
    sram_access_energy_nj,
)
from repro.memory.library import MemoryLibrary, ModulePreset, default_memory_library
from repro.memory.sram import Sram


class TestAreaModels:
    def test_sram_area_scales_with_bits(self):
        assert sram_area_gates(8192) > 1.9 * sram_area_gates(4096)

    def test_cache_area_exceeds_equal_sram(self):
        # Tags and way control make a cache bigger than a plain SRAM.
        assert cache_area_gates(8192, 32, 2) > sram_area_gates(8192)

    def test_cache_area_in_paper_range(self):
        # The paper's compress designs sit around 0.48-0.9 M gates;
        # a 32 KiB cache should dominate such a budget.
        area = cache_area_gates(32768, 32, 2)
        assert 300_000 < area < 700_000

    def test_associativity_increases_area(self):
        assert cache_area_gates(8192, 32, 4) > cache_area_gates(8192, 32, 1)

    def test_bad_cache_geometry(self):
        with pytest.raises(ConfigurationError):
            cache_area_gates(64, 32, 4)
        with pytest.raises(ConfigurationError):
            cache_area_gates(0, 32, 1)

    def test_controller_complexity(self):
        simple = controller_area_gates(4, complexity=0.3)
        complex_ = controller_area_gates(4, complexity=1.8)
        assert complex_ > 4 * simple

    def test_controller_ports(self):
        assert controller_area_gates(8) > controller_area_gates(2)

    def test_prefetch_buffer(self):
        assert prefetch_buffer_area_gates(32, 16) > prefetch_buffer_area_gates(8, 16)
        with pytest.raises(ConfigurationError):
            prefetch_buffer_area_gates(0, 16)


class TestEnergyModels:
    def test_sram_energy_sublinear(self):
        e1 = sram_access_energy_nj(1024)
        e16 = sram_access_energy_nj(16384)
        assert e16 > e1
        assert e16 < 16 * e1

    def test_cache_energy_adds_tag_ways(self):
        assert (
            cache_access_energy_nj(8192, 4)
            > cache_access_energy_nj(8192, 1)
        )

    def test_dram_page_hit_cheaper(self):
        hit = dram_transaction_energy_nj(32, page_hit=True)
        miss = dram_transaction_energy_nj(32, page_hit=False)
        assert miss > 2 * hit

    def test_dram_dominates_sram(self):
        # The paper: connectivity/memory-module power is small next to
        # off-chip accesses.
        assert dram_access_energy_nj(32) > 10 * sram_access_energy_nj(8192)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sram_access_energy_nj(0)
        with pytest.raises(ConfigurationError):
            dram_transaction_energy_nj(0, True)


class TestMemoryLibrary:
    def test_default_population(self, mem_library):
        assert len(mem_library.of_kind("cache")) >= 6
        assert len(mem_library.of_kind("sram")) >= 4
        assert len(mem_library.of_kind("stream_buffer")) >= 2
        assert len(mem_library.of_kind("self_indirect_dma")) >= 2
        assert "dram" in mem_library

    def test_instantiate_is_fresh(self, mem_library):
        a = mem_library.get("cache_8k_32b_2w").instantiate()
        b = mem_library.get("cache_8k_32b_2w").instantiate()
        assert a is not b

    def test_instantiate_renames(self, mem_library):
        module = mem_library.get("sram_4k").instantiate("my_sram")
        assert module.name == "my_sram"

    def test_unknown_preset_raises(self, mem_library):
        with pytest.raises(LibraryError):
            mem_library.get("cache_1g")

    def test_duplicate_rejected(self):
        library = MemoryLibrary()
        preset = ModulePreset("x", "sram", lambda: Sram("x", 1024))
        library.add(preset)
        with pytest.raises(LibraryError):
            library.add(preset)

    def test_names_order_stable(self):
        assert default_memory_library().names() == default_memory_library().names()

    def test_cache_presets_have_increasing_cost(self, mem_library):
        small = mem_library.get("cache_4k_16b_1w").instantiate()
        large = mem_library.get("cache_32k_32b_2w").instantiate()
        assert large.area_gates > 4 * small.area_gates
